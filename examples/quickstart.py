#!/usr/bin/env python3
"""Quickstart: run a managed I/O pipeline and watch the containers work.

Builds the paper's Figure 7 configuration — a LAMMPS-scale simulation on 256
nodes streaming into a Helper -> Bonds -> CSym analysis pipeline on 13
staging nodes — and lets the container runtime manage it.  Bonds cannot keep
up with its initial allocation; the global manager detects the bottleneck,
steals a node from the over-provisioned Helper, and the pipeline stabilizes.

Run:  python examples/quickstart.py
"""

from repro import Environment, PipelineBuilder, WeakScalingWorkload


def main() -> None:
    env = Environment()
    workload = WeakScalingWorkload(
        sim_nodes=256,          # simulation partition (Table II row 1)
        staging_nodes=13,       # staging partition, fully allocated
        spare_staging_nodes=0,  # no spares: management must *steal*
        output_interval=15.0,   # the paper's stressed output cadence
        total_steps=40,
    )
    pipe = PipelineBuilder(env, workload, seed=1).build()

    print(f"Simulating {workload.natoms:,} atoms "
          f"({workload.bytes_per_step / 2**20:.0f} MiB per output step) ...")
    pipe.run(settle=120)

    print("\nManagement actions taken by the global manager:")
    for t, label in pipe.telemetry.events:
        print(f"  t={t:7.1f}s  {label}")

    print("\nFinal container allocations:")
    for name, container in pipe.containers.items():
        state = "offline" if container.offline else (
            "active" if container.active else "standby")
        latency = container.latency.mean()
        latency_str = f"{latency:6.1f}s" if latency is not None else "   n/a"
        print(f"  {name:8s} {state:8s} nodes={container.units:2d} "
              f"completed={container.completions:3d} avg latency={latency_str}")

    series = pipe.telemetry.get("bonds", "latency_by_step")
    print("\nBonds container latency by timestep (s):")
    print("  " + " ".join(f"{v:.0f}" for v in series.values))

    print(f"\nTimesteps through the full pipeline: {len(pipe.end_to_end)}"
          f" / {workload.total_steps}")
    print(f"Application time lost to blocked I/O: {pipe.driver.blocked_time:.2f}s")


if __name__ == "__main__":
    main()
