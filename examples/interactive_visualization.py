#!/usr/bin/env python3
"""Interactive visualization: launch a container mid-run, then get squeezed.

The paper's introduction scenario: "running online I/O data visualization
with ParaView in one container while running analytics using VTK in another
container.  In this scenario, a dynamic requirement for additional resources
to run the analytics can be met by 'stealing' resources from the
visualization container, if it does not need them."

Timeline of this demo:

  t=20s   the scientist launches a viz container on the 4 spare staging
          nodes, reading the Bonds output ("add this filter now while I'm
          looking at the output")
  t~60s   the Bonds analytics container falls behind its SLA; no spares
          remain; the global manager steals a node from the visualization
          container — which has headroom — and Bonds recovers
  end     both containers are healthy: analytics at full rate, viz still
          fast enough for its own needs

Run:  python examples/interactive_visualization.py
"""

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.containers.pipeline import StageConfig
from repro.smartpointer.component import VIZ_COMPONENT
from repro.smartpointer.costs import ComputeModel


def main() -> None:
    env = Environment()
    workload = WeakScalingWorkload(
        sim_nodes=256, staging_nodes=13, spare_staging_nodes=4,
        output_interval=15.0, total_steps=30,
    )
    stages = [
        StageConfig("helper", 2, ComputeModel.TREE, upstream=None),
        StageConfig("bonds", 4, ComputeModel.ROUND_ROBIN, upstream="helper"),
        StageConfig("csym", 3, ComputeModel.ROUND_ROBIN, upstream="bonds"),
    ]
    pipe = PipelineBuilder(env, workload, stages=stages, seed=0).build()

    def user(env):
        yield env.timeout(20)
        print("t=20s  [user] launching ParaView-style viz on the spare nodes ...")
        yield pipe.launch_stage(VIZ_COMPONENT, units=4, upstream="bonds",
                                name="viz")
        print(f"t={env.now:.0f}s  [user] viz running on "
              f"{pipe.containers['viz'].units} nodes, reading Bonds output")

    env.process(user(env))
    pipe.run(settle=300)

    print("\nGlobal manager timeline:")
    for t, label in pipe.telemetry.events:
        print(f"  t={t:7.1f}s  {label}")

    print("\nFinal state:")
    for name in ("helper", "bonds", "csym", "viz"):
        container = pipe.containers[name]
        manager = pipe.managers[name]
        sustained = "sustains rate" if manager.shortfall(15.0) == 0 else "BEHIND"
        print(f"  {name:7s} nodes={container.units}  "
              f"rendered/analyzed={container.completions:3d}  {sustained}")

    frames = pipe.containers["viz"].completions
    print(f"\nThe scientist saw {frames} rendered frames; the analytics "
          f"pipeline analyzed all {workload.total_steps} timesteps; "
          f"application blocked {pipe.driver.blocked_time:.2f}s.")


if __name__ == "__main__":
    main()
