#!/usr/bin/env python3
"""Resource stealing and the dynamic branch, narrated.

Runs the Figure 7 configuration with a crack event injected at timestep 12.
Two management behaviours compose during the run:

1. **Stealing** — Bonds is the bottleneck and there are no spares, so the
   global manager shrinks the over-provisioned Helper and grows Bonds.
2. **Dynamic branching** — when CSym sees the crack marker it retires, CNA
   activates on Bonds' output, and the freed CSym nodes let the manager
   grow CNA to the rate it needs (CNA is the most expensive action in
   Table I, which is exactly why it only runs after a crack).

Run:  python examples/resource_stealing_demo.py
"""

from repro import Environment, PipelineBuilder, WeakScalingWorkload


def main() -> None:
    env = Environment()
    workload = WeakScalingWorkload(
        sim_nodes=256, staging_nodes=13, spare_staging_nodes=0,
        output_interval=15.0, total_steps=30,
    )
    pipe = PipelineBuilder(env, workload, seed=2, crack_step=12).build()
    print("Running 30 output steps; crack forms at step 12 ...\n")
    pipe.run(settle=300)

    print("Global manager timeline:")
    for t, label in pipe.telemetry.events:
        print(f"  t={t:7.1f}s  {label}")

    print("\nPer-container unit history (from monitoring):")
    for name in ("helper", "bonds", "csym", "cna"):
        series = pipe.telemetry.get(name, "units")
        if series is None:
            continue
        changes = [(series.times[0], series.values[0])]
        for t, v in zip(series.times, series.values):
            if v != changes[-1][1]:
                changes.append((t, v))
        history = " -> ".join(f"{int(v)}@{t:.0f}s" for t, v in changes)
        print(f"  {name:8s} {history}")

    print("\nAnalysis coverage:")
    csym_done = pipe.containers["csym"].completions
    cna_done = pipe.containers["cna"].completions
    print(f"  CSym analyzed {csym_done} pre-crack timesteps, then retired")
    print(f"  CNA analyzed {cna_done} post-crack timesteps "
          f"on {pipe.containers['cna'].units} nodes")

    cna_files = [f for f in pipe.fs.files if f.name.startswith("cna.ts")]
    if cna_files:
        print(f"  first CNA output: {cna_files[0].name} "
              f"provenance={cna_files[0].attributes['provenance']}")

    print(f"\nApplication blocked time: {pipe.driver.blocked_time:.2f}s")


if __name__ == "__main__":
    main()
