#!/usr/bin/env python3
"""Crack detection on real physics: the SmartPointer pipeline end to end.

This is the paper's running example with *actual data*: a notched
Lennard-Jones plate is pulled apart by molecular dynamics; every output
epoch flows through the real SmartPointer kernels —

    LAMMPS Helper  (merge the per-writer fragments)
        -> Bonds   (compute the bonded-pair adjacency list)
        -> CSym    (central symmetry + break detection vs the reference)
        -> CNA     (structural labeling, started after the break: the
                    pipeline's dynamic branch)

Results land in BP-lite files with provenance attributes, exactly like the
offline path of the containers runtime.

Run:  python examples/crack_detection_pipeline.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import write_bp
from repro.lammps import CrackExperiment
from repro.lammps.crack import BOND_CUTOFF
from repro.smartpointer import (
    bonds_adjacency,
    central_symmetry,
    common_neighbor_analysis,
    detect_break,
    helper_merge,
)
from repro.smartpointer.cna import CNA_TRIANGULAR
from repro.smartpointer.helper import partition_atoms

NUM_WRITERS = 4  # parallel simulation's I/O aggregators


def main(out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    print("Building notched plate and applying tension ...")
    experiment = CrackExperiment(nx=40, ny=24, md_steps_per_epoch=50, seed=7)
    reference = experiment.reference
    print(f"  {experiment.system.natoms} atoms, "
          f"{len(reference)} reference bonds")

    branch_fired = False
    for epoch in range(40):
        frame = experiment.run_epoch()
        positions = frame.snapshot.positions

        # --- the parallel simulation emits fragments; Helper merges them ---
        data = {
            "id": np.arange(len(positions), dtype=np.uint32),
            "x": positions[:, 0],
            "y": positions[:, 1],
        }
        fragments = partition_atoms(data, NUM_WRITERS)
        merged = helper_merge(fragments)
        provenance = ["helper"]

        # --- Bonds: adjacency list of currently bonded pairs ---
        pos = np.column_stack([merged["x"], merged["y"]])
        pairs = bonds_adjacency(pos, BOND_CUTOFF, method="celllist")
        provenance.append("bonds")

        if not branch_fired:
            # --- CSym: has any reference bond broken? ---
            csp = central_symmetry(pos, num_neighbors=6, cutoff=1.5)
            broke, broken_mask = detect_break(pos, reference, BOND_CUTOFF)
            provenance.append("csym")
            print(f"  epoch {epoch:2d}  strain={frame.strain:5.3f}  "
                  f"bonds={len(pairs):5d}  max CSP={np.nanmax(csp[np.isfinite(csp)]):6.2f}  "
                  f"broken={int(broken_mask.sum()):3d}")
            write_bp(
                out_dir / f"csym.ts{epoch:04d}.bp",
                {"csp": csp, "bonds": pairs.astype(np.int64)},
                {"provenance": provenance, "timestep": epoch,
                 "strain": frame.strain},
            )
            if broke:
                branch_fired = True
                print(f"  *** break detected at epoch {epoch}: "
                      f"CSym retires, CNA starts reading from Bonds ***")
        else:
            # --- CNA: structural labeling of the cracked material ---
            labels = common_neighbor_analysis(pairs, len(pos))
            crystalline = float((labels == CNA_TRIANGULAR).mean())
            provenance.append("cna")
            print(f"  epoch {epoch:2d}  strain={frame.strain:5.3f}  "
                  f"bonds={len(pairs):5d}  crystalline fraction={crystalline:.3f}")
            write_bp(
                out_dir / f"cna.ts{epoch:04d}.bp",
                {"labels": labels, "bonds": pairs.astype(np.int64)},
                {"provenance": provenance, "timestep": epoch,
                 "strain": frame.strain},
            )
        if branch_fired and frame.broken_fraction > 0.05:
            print(f"\nCrack fully developed at strain {frame.strain:.3f} "
                  f"({frame.broken_fraction:.1%} of reference bonds broken).")
            break

    files = sorted(out_dir.glob("*.bp"))
    print(f"\nWrote {len(files)} BP-lite files to {out_dir}")
    print("Pre-branch analyses:", sum(1 for f in files if f.name.startswith("csym")))
    print("Post-branch analyses:", sum(1 for f in files if f.name.startswith("cna")))


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="crack_pipeline_"))
    main(target)
