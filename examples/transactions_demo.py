#!/usr/bin/env python3
"""D2T control transactions: resilient management under failures.

Demonstrates the paper's Figure 6 machinery and its integration with the
container runtime:

1. a doubly distributed transaction across a 512-writer / 4-reader group
   pair commits in protocol time;
2. injected faults (abort votes, crashed participants) abort cleanly via
   presumed-abort timeouts;
3. a resource trade between containers runs transactionally: when the
   increase half fails mid-trade, compensation returns the nodes to the
   spare pool — the resource is never lost.

Run:  python examples/transactions_demo.py
"""

from repro import Environment, PipelineBuilder, TransactionManager, WeakScalingWorkload
from repro.cluster import redsky
from repro.evpath import Messenger
from repro.transactions import FailureInjector
import repro.transactions.coordinator as coordinator_module


def demo_commit_and_scale() -> None:
    print("=== 1. D2T two-phase commit across writer/reader groups ===")
    for writers, readers in [(64, 2), (512, 4), (2048, 8)]:
        env = Environment()
        machine = redsky(env, num_nodes=writers + readers + 1)
        messenger = Messenger(env, machine.network)
        tm = TransactionManager(env, messenger, machine.nodes[-1])
        wg = tm.build_group("writers", machine.nodes[:writers], fanout=8)
        rg = tm.build_group("readers", machine.nodes[writers:writers + readers])
        outcomes = []

        def txn(env):
            out = yield tm.run([wg, rg])
            outcomes.append(out)

        env.process(txn(env))
        env.run(until=60)
        out = outcomes[0]
        print(f"  {writers:5d}:{readers}  committed={out.committed}  "
              f"time={out.total * 1000:7.3f} ms  "
              f"(vote phase {out.vote_phase * 1000:.3f} ms, "
              f"tree depth {wg.depth()})")


def demo_failure_handling() -> None:
    print("\n=== 2. Fault injection: abort votes and crashed participants ===")
    for behaviour in ("abort", "crash"):
        env = Environment()
        machine = redsky(env, num_nodes=20)
        messenger = Messenger(env, machine.network)
        injector = FailureInjector()
        tm = TransactionManager(env, messenger, machine.nodes[-1],
                                injector=injector, vote_timeout=1.0)
        group = tm.build_group("g", machine.nodes[:8], fanout=2)
        probe = next(coordinator_module._TXN_IDS)
        coordinator_module._TXN_IDS = iter(range(probe + 1, probe + 50))
        injector.inject("g-p3", probe + 1, behaviour)
        outcomes = []

        def txn(env):
            out = yield tm.run([group])
            outcomes.append(out)

        env.process(txn(env))
        env.run(until=30)
        out = outcomes[0]
        print(f"  fault={behaviour:6s} -> committed={out.committed}  "
              f"timed_out={out.timed_out_groups}  "
              f"vote phase={out.vote_phase:.3f}s")


def demo_transactional_trade() -> None:
    print("\n=== 3. Transactional resource trade between containers ===")
    env = Environment()
    workload = WeakScalingWorkload(sim_nodes=256, staging_nodes=13,
                                   output_interval=15.0, total_steps=8)
    pipe = PipelineBuilder(env, workload, seed=0, control_interval=10_000).build()
    tm = TransactionManager(env, pipe.messenger, pipe.machine.nodes[0])
    pipe.global_manager.transaction_manager = tm

    def total_nodes():
        held = sum(c.units for c in pipe.containers.values())
        held += sum(len(c.standby_nodes) for c in pipe.containers.values()
                    if not c.active)
        return held + pipe.scheduler.free_nodes

    before = total_nodes()
    tm.trade_faults.append("increase")  # make the second half of the trade fail

    def ctl(env):
        yield env.timeout(1)
        yield pipe.global_manager.steal("helper", "bonds", 1)
        # The failed trade compensated; retry succeeds using the spare node.
        yield pipe.global_manager.increase("bonds", 1)

    env.process(ctl(env))
    pipe.run(settle=120)

    print(f"  trades committed={tm.trades_committed} "
          f"aborted={tm.trades_aborted} compensated={tm.trades_compensated}")
    for entry in pipe.global_manager.actions_taken:
        print(f"    {entry}")
    print(f"  node conservation: {before} before, {total_nodes()} after "
          f"({'OK' if before == total_nodes() else 'LOST NODES'})")
    print(f"  final: helper={pipe.containers['helper'].units} "
          f"bonds={pipe.containers['bonds'].units} "
          f"spare={pipe.scheduler.free_nodes}")


if __name__ == "__main__":
    demo_commit_and_scale()
    demo_failure_handling()
    demo_transactional_trade()
