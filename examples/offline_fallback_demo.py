#!/usr/bin/env python3
"""Offline fallback: when no resources can save the pipeline, prune it.

The Figure 9 scenario: 1024 simulation nodes produce 269 MiB every 15
seconds and the Bonds analysis cannot keep up with any possible staging
allocation.  Watch the runtime: it grants the spare nodes, observes the
upstream buffers filling, predicts the overflow that would block the
simulation, and takes Bonds — and its dependents CSym and CNA — offline.
The Helper keeps aggregating and writes raw data to the parallel file
system labeled with its processing provenance, so the pruned analyses can
run post-hoc.

Run:  python examples/offline_fallback_demo.py
"""

from collections import Counter

from repro import Environment, PipelineBuilder, WeakScalingWorkload


def main() -> None:
    env = Environment()
    workload = WeakScalingWorkload(
        sim_nodes=1024, staging_nodes=24, spare_staging_nodes=4,
        output_interval=15.0, total_steps=60,
    )
    pipe = PipelineBuilder(env, workload, seed=1).build()
    print(f"1024-node run: {workload.bytes_per_step / 2**20:.0f} MiB per step, "
          f"24 staging nodes (4 spare)\n")
    pipe.run(settle=300)

    print("Timeline of management decisions:")
    for t, label in pipe.telemetry.events:
        print(f"  t={t:7.1f}s  {label}")

    print("\nContainer fates:")
    for name, container in pipe.containers.items():
        fate = "OFFLINE" if container.offline else "online"
        print(f"  {name:8s} {fate:8s} processed {container.completions} timesteps")

    occ = pipe.telemetry.get("bonds", "buffer_occupancy")
    print("\nUpstream buffer occupancy feeding Bonds (the overflow signal):")
    print("  " + " ".join(f"{t:.0f}s:{v:.0%}" for t, v in
                          zip(occ.times[::3], occ.values[::3])))

    e2e = pipe.telemetry.get("pipeline", "end_to_end")
    print("\nEnd-to-end latency per exiting timestep (Figure 10):")
    print("  " + " ".join(f"{v:.0f}" for v in e2e.values))

    kinds = Counter(f.name.split(".")[0] + ("(flush)" if ".flush." in f.name else
                                            "(stranded)" if ".stranded." in f.name else "")
                    for f in pipe.fs.files)
    print(f"\n{len(pipe.fs.files)} files on the parallel file system:")
    for kind, count in sorted(kinds.items()):
        print(f"  {kind:20s} x{count}")

    sample = next(f for f in pipe.fs.files if f.name.startswith("helper.ts"))
    print(f"\nProvenance on {sample.name}: {sample.attributes['provenance']} "
          f"(incomplete_pipeline={sample.attributes['incomplete_pipeline']})")

    from repro.postprocess import analysis_backlog

    backlog = analysis_backlog(pipe.fs.files)
    todo = [entry for entry in backlog if entry.remaining]
    print(f"\nPost-processing backlog: {len(todo)} timesteps still need "
          f"analysis; e.g. timestep {todo[0].timestep} needs "
          f"{todo[0].remaining} (provenance was {todo[0].provenance}).")

    print(f"\nApplication blocking avoided: driver blocked "
          f"{pipe.driver.blocked_time:.2f}s out of a "
          f"{workload.total_steps * workload.output_interval:.0f}s run.")


if __name__ == "__main__":
    main()
