#!/usr/bin/env python3
"""Flame-front tracking: the S3D combustion workflow on real physics.

The paper's "current work" applies containers to S3D's flame-front tracking
and visualization pipeline.  This example runs the real thing at laptop
scale: a Fisher-KPP reaction front propagates across a 2-D domain; every
output epoch the front-extraction component locates the u=0.5 isoline and
the tracker derives speed and wrinkling — converging on the theoretical
traveling-wave speed 2*sqrt(D*r).

Run:  python examples/flame_front_pipeline.py
"""

import numpy as np

from repro.s3d import FrontTracker, ReactionDiffusion


def main() -> None:
    diffusivity, rate = 1.0, 0.25
    solver = ReactionDiffusion(nx=700, ny=24, dx=0.5,
                               diffusivity=diffusivity, rate=rate)
    solver.ignite_left(10)
    tracker = FrontTracker(dx=0.5)
    print(f"Fisher-KPP front: D={diffusivity}, r={rate}  ->  "
          f"theoretical speed c = 2*sqrt(D*r) = {solver.wave_speed:.3f}\n")
    print(f"{'t':>8} {'front x':>9} {'speed':>7} {'burnt':>7} {'wrinkle':>8}")

    for epoch in range(40):
        solver.step(100)
        sample = tracker.update(solver.time, solver.u)
        speed = f"{sample.speed:.3f}" if sample.speed is not None else "  -"
        print(f"{sample.time:8.1f} {sample.position:9.2f} {speed:>7} "
              f"{sample.burnt_fraction:7.3f} {sample.wrinkling:8.4f}")
        if sample.position > 0.75 * 700 * 0.5:
            break

    from repro.visualize import render_field

    print("\nProgress variable u (burnt @ ... unburnt blank):")
    print(render_field(solver.u, width=72, height=8, vmin=0.0, vmax=1.0))

    measured = tracker.mean_speed(skip=8)
    error = abs(measured - solver.wave_speed) / solver.wave_speed
    print(f"\nMeasured mean front speed: {measured:.3f} "
          f"(theory {solver.wave_speed:.3f}, {error:.1%} off — the discrete "
          f"front relaxes onto the traveling wave from below)")
    print(f"Tracker state (migrates on container resizes): "
          f"{tracker.state_bytes()} bytes over {len(tracker.samples)} samples")


if __name__ == "__main__":
    main()
