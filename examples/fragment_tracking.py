#!/usr/bin/env python3
"""Fragment tracking on real physics: the CTH shock-physics workflow.

The paper's future work: "a data pipeline that turns the raw atomic data
into materials fragments to allow tracking.  By moving this workflow online,
data can be staged and processed, both generating fragments and tracking
them as they evolve in the simulation."

This example runs the whole workflow on real data: the notched plate is
pulled until it fractures; each epoch the bond graph's connected components
become fragments, and the tracker follows their identities — reporting the
split when the crack finally severs the plate.

Run:  python examples/fragment_tracking.py
"""

from repro.lammps import CrackExperiment
from repro.lammps.crack import BOND_CUTOFF
from repro.smartpointer import bonds_adjacency
from repro.smartpointer.fragments import FragmentTracker


def main() -> None:
    print("Pulling a notched plate until it fractures ...\n")
    experiment = CrackExperiment(nx=36, ny=22, md_steps_per_epoch=50, seed=11)
    tracker = FragmentTracker(min_size=10)

    print(f"{'epoch':>5} {'strain':>7} {'bonds':>6} {'fragments':>9}  sizes")
    for epoch in range(35):
        frame = experiment.run_epoch()
        pairs = bonds_adjacency(frame.snapshot.positions, BOND_CUTOFF,
                                method="celllist")
        tracker.update(pairs, frame.snapshot.natoms)
        sizes = sorted(tracker.sizes.values(), reverse=True)
        print(f"{epoch:5d} {frame.strain:7.3f} {len(pairs):6d} "
              f"{tracker.fragment_count:9d}  {sizes[:4]}")
        if tracker.fragment_count >= 2 and frame.broken_fraction > 0.06:
            break

    print("\nFragment identity events:")
    for event in tracker.events:
        if event.kind == "appear" and event.epoch == 0:
            continue  # initial population
        print(f"  epoch {event.epoch:3d}  {event.kind:7s} "
              f"fragments {event.fragment_ids} {event.detail}")

    if tracker.fragment_count >= 2:
        sizes = sorted(tracker.sizes.items(), key=lambda kv: -kv[1])
        print(f"\nThe plate separated into {tracker.fragment_count} tracked "
              f"fragments; the two largest are "
              f"#{sizes[0][0]} ({sizes[0][1]} atoms) and "
              f"#{sizes[1][0]} ({sizes[1][1]} atoms).")

    from repro.visualize import legend, render_atoms

    print("\nFinal configuration, colored by fragment id:")
    print(render_atoms(frame.snapshot.positions, tracker.ids,
                       width=72, height=20))
    print(legend(tracker.ids))
    print(f"\nTracker state that would migrate on a container resize: "
          f"{tracker.state_bytes() / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
