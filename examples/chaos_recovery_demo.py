#!/usr/bin/env python3
"""Chaos recovery: a crack-detection run survives a staging-node crash.

The Figure 7 configuration (256 simulation nodes, Helper -> Bonds -> CSym
with CNA on standby) runs with fault tolerance enabled: replicas hold
heartbeat leases with their local manager, local-manager liveness rides
the monitoring reports to the global manager, and upstream DataTap
writers keep custody of every chunk until its derived output has safely
left the consumer's node.

At t=200s a seeded FaultPlan kills the staging node hosting one Bonds
replica.  Watch the recovery: the silent heartbeat lease convicts the
replica within 5 seconds, the REPLACE protocol respawns it on a spare
node, the upstream writer redelivers the chunks that died with the node,
and the pipeline finishes with every timestep delivered exactly once.

Run:  PYTHONPATH=src python examples/chaos_recovery_demo.py
"""

from repro import Environment, PipelineBuilder, WeakScalingWorkload
from repro.faults import FaultPlan
from repro.perf.registry import REGISTRY


def main() -> None:
    env = Environment()
    workload = WeakScalingWorkload(
        sim_nodes=256, staging_nodes=16, spare_staging_nodes=3,
        output_interval=15.0, total_steps=40,
    )
    pipe = PipelineBuilder(
        env, workload, seed=1, control_interval=30.0,
        fault_tolerance=True, lease_timeout=5.0, heartbeat_interval=1.0,
    ).build()

    victim = pipe.containers["bonds"].replicas[1]
    print(f"armed: node {victim.node.node_id} (hosting {victim.name}) "
          f"will crash at t=200s\n")
    plan = FaultPlan(seed=11)
    plan.node_crash(200.0, victim.node.node_id)
    pipe.arm_faults(plan)

    finished = pipe.run(settle=600)

    print("Timeline of management + recovery decisions:")
    for t, label in pipe.telemetry.events:
        print(f"  t={t:7.1f}s  {label}")

    print("\nRecovery actions:")
    for rec in pipe.recovery.replacements:
        if rec["type"] == "replace":
            mttr = rec["completed_at"] - rec["suspected_at"]
            print(f"  REPLACE {rec['container']}/{rec['replica']} via "
                  f"{rec['method']} -> node {rec['node_id']} "
                  f"(repair {mttr * 1e3:.0f} ms after suspicion, "
                  f"{rec['redelivered']} chunks redelivered)")
        else:
            print(f"  {rec['type'].upper()} {rec['container']}")

    exits = sorted(ts for _, ts, _ in pipe.end_to_end)
    dupes = len(exits) - len(set(exits))
    lost = workload.total_steps - len(set(exits))
    print(f"\nrun finished: {finished}")
    print(f"timesteps delivered: {len(set(exits))}/{workload.total_steps} "
          f"({lost} lost, {dupes} duplicated)")
    print(f"bonds capacity after recovery: "
          f"{pipe.containers['bonds'].units} replicas")

    counters = REGISTRY.snapshot()["counters"]
    print("\nFault-subsystem counters:")
    for name in sorted(counters):
        if name.split(".")[0] in ("faults", "datatap"):
            print(f"  {name:32s} {counters[name]}")


if __name__ == "__main__":
    main()
