"""Setup shim for offline editable installs (`python setup.py develop`).

The environment has no network access and no `wheel` package, so PEP 660
editable installs via pip fail; this shim lets `setup.py develop` work with
the stock setuptools.
"""

from setuptools import setup

setup()
