"""Compile a :class:`~repro.spec.model.PipelineSpec` into a wired Pipeline.

:func:`build` is the single entry point every consumer constructs
pipelines through: validate the spec, materialize the workload and stage
configs, and hand :class:`~repro.containers.pipeline.PipelineBuilder`
exactly the keyword arguments the spec declares — unset keys keep the
builder's defaults, so a spec-built pipeline is byte-identical to the
historical keyword-built one.

Runtime-only objects that cannot live in a serialized spec (a shared
fleet ``Machine``, a tenant name, a concrete ``FaultPlan``, custom
``StageConfig`` lists, policy/aprun/transaction-manager instances) are
passed as keyword overrides: ``build(env, spec, machine=m, tenant="t03")``.
Overrides are applied *after* the spec's builder block, so they win — the
escape hatch the fleet and the ablation benches use.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Optional

from repro.simkernel import Environment
from repro.containers.pipeline import Pipeline, PipelineBuilder
from repro.faults.plan import FaultKind, FaultPlan
from repro.spec.model import PipelineSpec, SpecError

#: bundled spec files: the preset library (fig7 / overload / s3d)
SPEC_DIR = Path(__file__).resolve().parent / "bundled"

#: name -> seeded plan factory ``(seed, pipe) -> FaultPlan``; specs refer
#: to recipes by name so fault schedules can target the concrete nodes
#: stages landed on.  Populated by :func:`register_fault_recipe` at import
#: of the owning modules (see :func:`_ensure_recipes`).
FAULT_RECIPES: Dict[str, Callable] = {}


def register_fault_recipe(name: str):
    """Decorator: register a ``(seed, pipe) -> FaultPlan`` factory."""

    def wrap(fn):
        FAULT_RECIPES[name] = fn
        return fn

    return wrap


def _ensure_recipes() -> None:
    """Import the modules that register the standard recipes."""
    import repro.dst.scenario  # noqa: F401 - registers "smoke"
    import repro.overload.scenario  # noqa: F401 - registers "overload_burst"
    import repro.spec.fuzz  # noqa: F401 - registers "fuzz_chaos"


def build(
    env: Environment,
    spec: PipelineSpec,
    validate: bool = True,
    **overrides,
) -> Pipeline:
    """Compile ``spec`` into a fully wired :class:`Pipeline`.

    ``overrides`` are forwarded verbatim to :class:`PipelineBuilder`
    (after the spec's own builder block) — the runtime escape hatch for
    machines, tenants, custom stage lists, and live fault plans.
    """
    if validate:
        spec.validate()
    if spec.transport not in ("datatap", "sst"):
        raise SpecError(
            f"spec {spec.name!r} selects transport {spec.transport!r}, but "
            f"the pipeline builder currently wires the online 'datatap' "
            f"and 'sst' paths only (the field is the engine-selection hook "
            f"for swappable backends)"
        )
    kwargs = dict(spec.builder)
    stages = spec.stage_configs()
    if stages is not None:
        kwargs["stages"] = stages
    if spec.overload is not None and spec.overload.mode == "predictive":
        kwargs["predictive"] = spec.overload.predictive_kwargs() or True
    if spec.failover is not None:
        fo_kwargs = spec.failover.failover_kwargs()
        if spec.transport == "sst":
            fo_kwargs["live_transport"] = "sst"
        kwargs["failover"] = fo_kwargs or True
        if spec.failover.retry_jitter:
            kwargs["retry_jitter"] = spec.failover.retry_jitter
    kwargs.update(overrides)
    pipe = PipelineBuilder(env, spec.workload.to_workload(), **kwargs).build()
    pipe.spec = spec
    return pipe


def resolve_fault_plan(
    spec: PipelineSpec, seed: Optional[int], pipe: Pipeline
) -> Optional[FaultPlan]:
    """Concrete :class:`FaultPlan` from the spec's fault block (or None).

    Recipe faults are generated against the built pipeline; declarative
    events are resolved from staging-pool indices to the concrete node
    ids of the pipeline's scheduler pool, in allocation order.
    """
    faults = spec.faults
    if faults is None:
        return None
    eff_seed = faults.seed if faults.seed is not None else (seed or 0)
    plan: Optional[FaultPlan] = None
    if faults.recipe is not None:
        _ensure_recipes()
        try:
            factory = FAULT_RECIPES[faults.recipe]
        except KeyError:
            raise SpecError(
                f"unknown fault recipe {faults.recipe!r}; known: "
                f"{sorted(FAULT_RECIPES)}"
            ) from None
        plan = factory(eff_seed, pipe)
    if faults.events:
        if plan is None:
            plan = FaultPlan(seed=eff_seed)
        pool = [n.node_id for n in pipe.scheduler.pool.nodes]
        for ev in faults.events:
            targets = tuple(pool[t] for t in ev.targets)
            plan.add(FaultKind(ev.kind), ev.time, targets,
                     duration=ev.duration, severity=ev.severity)
    return plan


# -- the bundled preset library --------------------------------------------------------


def bundled_spec_path(name: str) -> Path:
    path = SPEC_DIR / f"{name}.yaml"
    if not path.is_file():
        raise SpecError(
            f"no bundled spec {name!r}; available: {bundled_spec_names()}"
        )
    return path


def bundled_spec_names() -> list:
    return sorted(p.stem for p in SPEC_DIR.glob("*.yaml"))


def load_preset(name: str) -> PipelineSpec:
    """Load (and cache) a bundled spec by name (``fig7``/``overload``/``s3d``)."""
    cached = _PRESET_CACHE.get(name)
    if cached is None:
        cached = PipelineSpec.load(bundled_spec_path(name))
        _PRESET_CACHE[name] = cached
    return cached


_PRESET_CACHE: Dict[str, PipelineSpec] = {}
