"""Seeded topology fuzzing: random-but-valid specs for the DST sweep.

:func:`generate_spec` draws a :class:`~repro.spec.model.PipelineSpec`
from a splitmix64 stream — bounded depth/fan-out stage trees over the
SmartPointer component set, mixed compute models, seeded workload
sizing, and optional fault/overload blocks — such that every generated
spec passes validation, builds, and is *recoverable* (crash victims are
never a manager or sole replica, spares always cover the recovery
ladder).  Identical seeds yield identical specs, bit for bit: the
generator touches no global RNG and no wall clock.

:class:`FuzzedTopologyScenario` plugs the generator into :mod:`repro.dst`
— preset ``fuzz`` — so the always-on invariant oracles sweep generated
*shapes*, not just generated fault schedules; :class:`SpecFileScenario`
does the same for a spec loaded from a YAML file (``--spec``).

Generator bounds (documented for DESIGN.md §4i): depth <= 4, fan-out
<= 2, <= 6 stages, 1..4 units per stage (at least the component's
sustain requirement at the drawn workload), sim_nodes in {64, 128},
4..6 timesteps.  Compute models are drawn only from the models that can
sustain the drawn workload with <= 4 units (SERIAL CNA at 128 nodes,
for example, cannot — a spec that validates but can never keep up is a
different test than the invariant sweep wants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.simkernel import Environment, shuffle
from repro.dst.scenario import DSTScenario, repro_command
from repro.faults.plan import FaultPlan
from repro.spec.build import (
    build as build_spec,
    register_fault_recipe,
    resolve_fault_plan,
)
from repro.spec.model import (
    FaultSpec,
    PipelineSpec,
    StageSpec,
    WorkloadSpec,
)

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


class SplitMix64:
    """The splitmix64 stream: tiny, fast, platform-stable (pure ints)."""

    def __init__(self, seed: int):
        self._state = int(seed) & _MASK64

    def next(self) -> int:
        self._state = (self._state + _GOLDEN) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] (inclusive)."""
        return lo + self.next() % (hi - lo + 1)

    def uniform(self, lo: float, hi: float) -> float:
        return lo + (self.next() / float(1 << 64)) * (hi - lo)

    def choice(self, seq):
        return seq[self.next() % len(seq)]

    def chance(self, p: float) -> bool:
        return self.uniform(0.0, 1.0) < p


#: component pool the fuzzer draws non-root stages from; the root stage is
#: always ``helper`` (TREE), the only component that can gather the
#: simulation writers' partial writes
FUZZ_COMPONENTS = ("bonds", "csym", "cna")

#: hard bounds on generated topologies
MAX_DEPTH = 4
MAX_FANOUT = 2
MAX_STAGES = 6
MAX_UNITS = 4


def _sustainable_models(component, natoms: int, interval: float) -> List:
    """Compute models that keep up with the workload using <= MAX_UNITS."""
    return [
        m for m in component.compute_models
        if component.cost.units_to_sustain(natoms, interval, m) <= MAX_UNITS
    ]


def generate_spec(seed: int, steps: Optional[int] = None) -> PipelineSpec:
    """Draw one random-but-valid spec from ``seed`` (deterministically)."""
    from repro.smartpointer.component import SMARTPOINTER_COMPONENTS

    rng = SplitMix64(seed)
    sim_nodes = rng.choice((64, 128))
    interval = 15.0
    steps = steps if steps is not None else rng.randint(4, 6)
    from repro.lammps.workload import atoms_for_nodes

    natoms = atoms_for_nodes(sim_nodes)

    # Stage tree: breadth-first growth under the depth/fan-out/size bounds.
    stages: List[StageSpec] = []
    total_units = 0
    frontier: List[tuple] = [(None, 0)]  # (upstream name, depth)
    while frontier and len(stages) < MAX_STAGES:
        upstream, depth = frontier.pop(0)
        component_name = (
            "helper" if upstream is None else rng.choice(FUZZ_COMPONENTS)
        )
        component = SMARTPOINTER_COMPONENTS[component_name]
        models = _sustainable_models(component, natoms, interval)
        model = rng.choice(models)
        sustain = component.cost.units_to_sustain(natoms, interval, model)
        units = min(MAX_UNITS, sustain + rng.randint(0, 1))
        name = f"{component_name}{len(stages)}"
        stages.append(StageSpec(
            name=name,
            units=units,
            component=component_name,
            model=model.value,
            upstream=upstream,
        ))
        total_units += units
        if depth + 1 < MAX_DEPTH:
            for _ in range(rng.randint(0 if stages else 1, MAX_FANOUT)):
                frontier.append((name, depth + 1))

    spare = 2
    workload = WorkloadSpec(
        sim_nodes=sim_nodes,
        staging_nodes=total_units + spare,
        spare=spare,
        steps=steps,
        output_interval=interval,
    )

    builder = {
        "seed": rng.randint(0, 2**16 - 1),
        "fault_tolerance": True,
        "heartbeat_interval": 1.0,
        "lease_timeout": 5.0,
        "control_interval": 30.0,
    }
    # Optional overload block: credit backpressure on every link.  Buffers
    # stay at the node default — with fault-tolerance custody retention, a
    # tight buffer couples every stage synchronously and the run finishes
    # far outside the DST horizon (that regime belongs to the overload
    # preset, which pairs tight buffers with the brownout ladder).
    if rng.chance(0.4):
        builder["backpressure"] = True

    # Optional fault block: the generic chaos recipe (crash + slowdown
    # against provably recoverable victims), inheriting the scenario seed.
    faults = FaultSpec(recipe="fuzz_chaos") if rng.chance(0.6) else None

    return PipelineSpec(
        name=f"fuzz-{seed}",
        workload=workload,
        stages=tuple(stages),
        builder=builder,
        faults=faults,
    )


@register_fault_recipe("fuzz_chaos")
def fuzz_chaos_plan(seed: int, pipe) -> FaultPlan:
    """Generic recoverable chaos for arbitrary topologies.

    Victims are non-first replicas of multi-replica containers, excluding
    every manager's node and the global manager's node — the same safety
    envelope as the smoke plan, computed structurally instead of by stage
    name.  One crash (only if the scheduler has spare capacity to recover
    with) plus one windowed slowdown.
    """
    wl = pipe.driver.workload
    nominal = wl.total_steps * wl.output_interval
    rng = SplitMix64((seed << 1) ^ 0x5EEDED)
    gm_id = pipe.global_manager.node.node_id
    manager_ids = {m.node.node_id for m in pipe.managers.values()}
    victims = []
    for name in sorted(pipe.containers):
        container = pipe.containers[name]
        for replica in container.replicas[1:]:
            nid = replica.node.node_id
            if nid != gm_id and nid not in manager_ids:
                victims.append(nid)
    plan = FaultPlan(seed=seed)
    if not victims:
        return plan
    if pipe.scheduler.peek_free() and rng.chance(0.7):
        plan.node_crash(rng.uniform(0.3, 0.7) * nominal, rng.choice(victims))
    plan.node_slowdown(
        rng.uniform(0.2, 0.8) * nominal,
        rng.choice(victims),
        factor=rng.uniform(1.5, 3.0),
        duration=0.15 * nominal,
    )
    return plan


@dataclass
class FuzzedTopologyScenario(DSTScenario):
    """DST over generated topologies: the seed picks the *shape* too.

    One seed drives everything — the generated spec, its fault recipe,
    and the schedule tie-breaker — so a violating seed replays the whole
    run (spec included) bit-identically from the one-line repro command.
    """

    name: str = "fuzz"
    preset: str = "fuzz"
    plan: object = None  # resolved from the generated spec's fault block
    steps: Optional[int] = None

    def build(self, seed: Optional[int]):
        env = Environment() if seed is None else Environment(tie_breaker=shuffle(seed))
        spec = generate_spec(seed if seed is not None else 0, steps=self.steps)
        return build_spec(env, spec)

    def resolve_plan(self, seed: Optional[int], pipe):
        return resolve_fault_plan(
            pipe.spec, seed if seed is not None else 0, pipe
        )


@dataclass
class SpecFileScenario(DSTScenario):
    """DST over a user-supplied spec: sweep schedule seeds (and the spec's
    own fault block) against a pipeline loaded from a YAML file."""

    name: str = "spec"
    preset: str = "spec"
    plan: object = None
    path: str = ""

    def _load(self) -> PipelineSpec:
        if not self.path:
            raise ValueError("SpecFileScenario needs a spec file path")
        return PipelineSpec.load(self.path)

    def build(self, seed: Optional[int]):
        env = Environment() if seed is None else Environment(tie_breaker=shuffle(seed))
        return build_spec(env, self._load())

    def resolve_plan(self, seed: Optional[int], pipe):
        return resolve_fault_plan(
            pipe.spec, seed if seed is not None else 0, pipe
        )

    def _repro(self, seed: Optional[int]) -> str:
        return repro_command(seed, "spec") + f" --spec {self.path}"
