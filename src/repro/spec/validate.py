"""Spec validation: reject malformed pipelines before anything is built.

Every check raises :class:`~repro.spec.model.SpecError` with an error
pointed enough to fix the spec from the message alone — naming the stage,
field, and bound involved.  The pass covers:

* workload sizing (positive counts, spares within the staging allocation);
* stage topology (duplicate names, zero-unit stages, dangling upstream
  references, cycles, exactly one simulation-fed root, standby stages
  must branch off a live stage);
* component/model resolution (unknown library, unknown component, a
  compute model the component does not support);
* builder overrides (whitelisted keys only, buffer sizes of at least one
  timestep so the pipeline can always make forward progress);
* fault blocks (kind vocabulary and per-kind argument validation, reusing
  the :class:`~repro.faults.plan.FaultPlan` rules; staging-pool-relative
  target indices in range);
* the tenant/quota block (floor within the tenant's own staging pool —
  the machine capacity it actually has — and floor <= ceiling);
* the transport method name.
"""

from __future__ import annotations

from typing import List

from repro.spec.model import (
    BUILDER_KEYS,
    OVERLOAD_MODES,
    TRANSPORTS,
    FaultSpec,
    PipelineSpec,
    SpecError,
    StageSpec,
    WorkloadSpec,
)

#: builder keys that must be positive numbers when present
_POSITIVE_BUILDER_KEYS = (
    "num_sim_writers",
    "control_interval",
    "monitor_interval",
    "sla_interval",
    "overflow_horizon",
    "heartbeat_interval",
    "lease_timeout",
    "manager_lease_timeout",
)


def validate(spec: PipelineSpec) -> PipelineSpec:
    """Raise :class:`SpecError` on the first problem found; returns spec."""
    if not spec.name or not isinstance(spec.name, str):
        raise SpecError("a pipeline spec needs a non-empty string name")
    _validate_workload(spec.workload)
    _validate_builder(spec)
    if spec.stages is not None:
        _validate_stages(spec)
    if spec.transport not in TRANSPORTS:
        raise SpecError(
            f"unknown transport {spec.transport!r}; known: {list(TRANSPORTS)}"
        )
    if spec.transport == "sst" and spec.failover is None:
        raise SpecError(
            "transport: sst is provided by the failover engine layer; "
            "add a failover block (failover: {}) to enable it"
        )
    if spec.sla is not None and spec.sla <= 0:
        raise SpecError(f"sla must be a positive multiple of the output interval, got {spec.sla}")
    if spec.faults is not None:
        _validate_faults(spec, spec.faults)
    if spec.tenant is not None:
        _validate_tenant(spec)
    if spec.overload is not None:
        _validate_overload(spec)
    if spec.failover is not None:
        _validate_failover(spec)
    return spec


def _validate_workload(wl: WorkloadSpec) -> None:
    if wl.sim_nodes <= 0:
        raise SpecError(f"workload.sim_nodes must be positive, got {wl.sim_nodes}")
    if wl.staging_nodes <= 0:
        raise SpecError(f"workload.staging_nodes must be positive, got {wl.staging_nodes}")
    if wl.spare < 0 or wl.spare > wl.staging_nodes:
        raise SpecError(
            f"workload.spare must be within the staging allocation "
            f"(0..{wl.staging_nodes}), got {wl.spare}"
        )
    if wl.steps <= 0:
        raise SpecError(f"workload.steps must be positive, got {wl.steps}")
    if wl.output_interval <= 0:
        raise SpecError(
            f"workload.output_interval must be positive, got {wl.output_interval}"
        )


def _validate_stages(spec: PipelineSpec) -> None:
    stages = spec.stages
    if not stages:
        raise SpecError("stages, when given, must name at least one stage")
    names: List[str] = [s.name for s in stages]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise SpecError(f"duplicate stage name(s): {dupes}")
    by_name = {s.name: s for s in stages}

    total_units = 0
    for stage in stages:
        if stage.units <= 0:
            raise SpecError(
                f"stage {stage.name!r}: units must be >= 1, got {stage.units} "
                f"(a zero-node stage can never serve its queue)"
            )
        if stage.queue_capacity < 1:
            raise SpecError(
                f"stage {stage.name!r}: queue_capacity must be >= 1, "
                f"got {stage.queue_capacity}"
            )
        if stage.sla_factor <= 0:
            raise SpecError(
                f"stage {stage.name!r}: sla_factor must be positive, "
                f"got {stage.sla_factor}"
            )
        component = stage.resolve_component()  # raises on unknown name/library
        model = stage.compute_model()          # raises on unknown model
        if model not in component.compute_models:
            raise SpecError(
                f"stage {stage.name!r}: component {component.name!r} does not "
                f"support compute model {model.value!r}; supported: "
                f"{[m.value for m in component.compute_models]}"
            )
        if stage.upstream is not None and stage.upstream not in by_name:
            raise SpecError(
                f"stage {stage.name!r}: unknown upstream stage "
                f"{stage.upstream!r}; known stages: {sorted(by_name)}"
            )
        if stage.upstream == stage.name:
            raise SpecError(f"stage {stage.name!r} names itself as upstream")
        total_units += stage.units

    roots = [s for s in stages if s.upstream is None]
    if not roots:
        raise SpecError(
            "no root stage: exactly one stage must read the simulation "
            "stream (upstream: null)"
        )
    if len(roots) > 1:
        raise SpecError(
            f"multiple root stages {sorted(s.name for s in roots)}: the "
            f"simulation feeds exactly one stage; give the others an upstream"
        )
    if roots[0].standby:
        raise SpecError(
            f"root stage {roots[0].name!r} cannot be standby: a standby "
            f"stage activates by joining its upstream's output link"
        )
    writers = spec.builder.get("num_sim_writers", 4)
    if writers > 1 and roots[0].compute_model().value != "tree":
        raise SpecError(
            f"root stage {roots[0].name!r} gathers {writers} partial writes "
            f"per timestep (num_sim_writers) and must use the 'tree' compute "
            f"model, not {roots[0].model!r}"
        )

    # Cycle check: walk each stage's upstream chain; a repeat inside one
    # chain is a cycle (dangling refs were rejected above).
    for stage in stages:
        seen = {stage.name}
        cursor = stage.upstream
        while cursor is not None:
            if cursor in seen:
                cycle = " -> ".join([*sorted(seen), cursor])
                raise SpecError(
                    f"stage topology contains a cycle through {cursor!r} "
                    f"({cycle}); the pipeline must be a DAG"
                )
            seen.add(cursor)
            cursor = by_name[cursor].upstream

    # Capacity: the staging pool must fit every stage allocation.
    if total_units > spec.workload.staging_nodes:
        raise SpecError(
            f"stage allocations need {total_units} staging nodes but the "
            f"workload provides only {spec.workload.staging_nodes}"
        )


def _validate_builder(spec: PipelineSpec) -> None:
    unknown = sorted(set(spec.builder) - set(BUILDER_KEYS))
    if unknown:
        raise SpecError(
            f"unknown builder key(s) {unknown}; declarable keys: "
            f"{sorted(BUILDER_KEYS)} (runtime-only objects are passed to "
            f"build(...) instead)"
        )
    b = spec.builder
    for key in _POSITIVE_BUILDER_KEYS:
        value = b.get(key)
        if value is not None and value <= 0:
            raise SpecError(f"builder.{key} must be positive, got {value}")
    if b.get("placement") not in (None, "naive", "topology"):
        raise SpecError(
            f"builder.placement must be 'naive' or 'topology', got {b['placement']!r}"
        )
    if b.get("monitoring") not in (None, "direct", "overlay"):
        raise SpecError(
            f"builder.monitoring must be 'direct' or 'overlay', got {b['monitoring']!r}"
        )
    for key in ("backpressure", "brownout"):
        value = b.get(key)
        if value is not None and not isinstance(value, (bool, dict)):
            raise SpecError(
                f"builder.{key} must be a bool or a config dict, "
                f"got {type(value).__name__}"
            )

    # Buffer floors: a buffer smaller than one timestep's chunk can never
    # admit a write, wedging the pipeline at step zero.  The sim-side
    # buffers are per writer (each carries 1/num_writers of a step).
    wl = spec.workload.to_workload()
    writers = b.get("num_sim_writers", 4)
    sim_floor = wl.bytes_per_step / max(1, writers)
    sim_buffer = b.get("sim_buffer_bytes")
    if sim_buffer is not None and sim_buffer < sim_floor:
        raise SpecError(
            f"builder.sim_buffer_bytes = {sim_buffer:.0f} is below one "
            f"timestep per writer ({sim_floor:.0f} bytes): the producer "
            f"could never complete a write"
        )
    stage_buffer = b.get("stage_buffer_bytes")
    if stage_buffer is not None and stage_buffer < wl.bytes_per_step:
        raise SpecError(
            f"builder.stage_buffer_bytes = {stage_buffer:.0f} is below one "
            f"timestep ({wl.bytes_per_step:.0f} bytes): a stage writer "
            f"could never buffer a full step"
        )


def _validate_faults(spec: PipelineSpec, faults: FaultSpec) -> None:
    from repro.faults.plan import FaultKind, FaultPlan

    if faults.recipe is not None:
        from repro.spec.build import FAULT_RECIPES, _ensure_recipes

        _ensure_recipes()
        if faults.recipe not in FAULT_RECIPES:
            raise SpecError(
                f"unknown fault recipe {faults.recipe!r}; known: "
                f"{sorted(FAULT_RECIPES)}"
            )
    kinds = {k.value for k in FaultKind}
    pool = spec.workload.staging_nodes
    probe = FaultPlan(seed=0)
    for i, ev in enumerate(faults.events):
        if ev.kind not in kinds:
            raise SpecError(
                f"faults.events[{i}]: unknown fault kind {ev.kind!r}; "
                f"known: {sorted(kinds)}"
            )
        out_of_range = sorted(t for t in ev.targets if not 0 <= t < pool)
        if out_of_range:
            raise SpecError(
                f"faults.events[{i}]: target indices {out_of_range} outside "
                f"the staging pool (0..{pool - 1}); targets index the "
                f"scheduler's staging nodes in allocation order"
            )
        try:
            # reuse the canonical per-kind argument validation
            probe.add(FaultKind(ev.kind), ev.time, ev.targets,
                      duration=ev.duration, severity=ev.severity)
        except ValueError as exc:
            raise SpecError(f"faults.events[{i}]: {exc}") from None


def _validate_overload(spec: PipelineSpec) -> None:
    ov = spec.overload
    if ov.mode not in OVERLOAD_MODES:
        raise SpecError(
            f"overload.mode must be one of {list(OVERLOAD_MODES)}, got {ov.mode!r}"
        )
    for key in ("sample_interval", "horizon", "risk_threshold"):
        value = getattr(ov, key)
        if value is not None and value <= 0:
            raise SpecError(f"overload.{key} must be positive, got {value}")
    if ov.max_proactive_level is not None and ov.max_proactive_level < 0:
        raise SpecError(
            f"overload.max_proactive_level must be >= 0, got {ov.max_proactive_level}"
        )
    if ov.recovery_dwell_factor is not None and not 0.0 < ov.recovery_dwell_factor <= 1.0:
        raise SpecError(
            f"overload.recovery_dwell_factor must be in (0, 1], "
            f"got {ov.recovery_dwell_factor}"
        )
    if ov.mode == "predictive":
        b = spec.builder
        if not b.get("backpressure") and not b.get("brownout"):
            raise SpecError(
                "overload.mode: predictive needs a controller to feed — "
                "enable builder.backpressure and/or builder.brownout"
            )


def _validate_failover(spec: PipelineSpec) -> None:
    from repro.adios.spill import SPILL_REASONS

    fo = spec.failover
    if fo.spill_reasons is not None:
        bad = sorted(set(fo.spill_reasons) - set(SPILL_REASONS))
        if bad:
            raise SpecError(
                f"failover.spill_reasons {bad} are not interceptable shed "
                f"reasons; legal: {sorted(SPILL_REASONS)}"
            )
    for key in ("sweep_interval", "store_bandwidth", "store_metadata_latency"):
        value = getattr(fo, key)
        if value is not None and value <= 0:
            raise SpecError(f"failover.{key} must be positive, got {value}")
    for key in ("subscriber_window", "collapse_ticks", "replay_batch",
                "store_stripes"):
        value = getattr(fo, key)
        if value is not None and value < 1:
            raise SpecError(f"failover.{key} must be >= 1, got {value}")
    if not 0.0 <= fo.retry_jitter <= 1.0:
        raise SpecError(
            f"failover.retry_jitter is a relative scatter and must be in "
            f"[0, 1], got {fo.retry_jitter}"
        )
    if not spec.builder.get("backpressure"):
        raise SpecError(
            "failover needs link credits to detect collapse — enable "
            "builder.backpressure"
        )


def _validate_tenant(spec: PipelineSpec) -> None:
    tenant = spec.tenant
    if tenant.priority < 1:
        raise SpecError(f"tenant.priority must be >= 1, got {tenant.priority}")
    if tenant.sla_factor <= 0:
        raise SpecError(f"tenant.sla_factor must be positive, got {tenant.sla_factor}")
    reserved = tenant.reserved
    if reserved is not None:
        if reserved < 0:
            raise SpecError(f"tenant.reserved must be >= 0, got {reserved}")
        if reserved > spec.workload.staging_nodes:
            raise SpecError(
                f"tenant.reserved = {reserved} exceeds the tenant's own "
                f"staging capacity ({spec.workload.staging_nodes} nodes): "
                f"the floor could never be satisfied"
            )
    if tenant.burst is not None:
        floor = reserved if reserved is not None else 0
        if tenant.burst < floor:
            raise SpecError(
                f"tenant.burst ({tenant.burst}) must be >= tenant.reserved "
                f"({floor})"
            )
