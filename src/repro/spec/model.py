"""The pipeline-as-code spec model: declarative, validated, serializable.

A :class:`PipelineSpec` is the single declarative description of one
experiment pipeline — the same role the paper's static container
configuration files play, made round-trippable (YAML <-> Python, loss
free) and validated before anything is built.  The spec captures the
*portable* half of a pipeline: topology (stages with fan-out), compute
models, workload sizing, SLA targets, buffer sizing, fault plan,
overload policy, transport method, and the tenant/quota block the fleet
overlays.  Runtime-only objects (a shared ``Machine``, a concrete
``FaultPlan`` targeting live node ids, custom ``StageConfig`` lists)
stay out of the spec and are supplied at build time — see
:func:`repro.spec.build.build`.

Specs are frozen dataclasses: value equality is spec equality, and
:meth:`PipelineSpec.to_yaml` / :meth:`PipelineSpec.from_yaml` round-trip
through a canonical dict form (sorted keys, plain scalars) so
``from_yaml(to_yaml(s)) == s`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.lammps.workload import WeakScalingWorkload
from repro.smartpointer.costs import ComputeModel


class SpecError(ValueError):
    """A malformed pipeline spec (construction- or validation-time)."""


def _yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - yaml ships with the toolchain
        raise SpecError(
            "PyYAML is required for spec serialization "
            "(pip install pyyaml); the in-memory spec API works without it"
        ) from exc
    return yaml


#: PipelineBuilder keyword arguments a spec may set.  Everything here is a
#: plain scalar (or a plain dict of scalars for the overload controllers),
#: so the builder block serializes losslessly.  Runtime-only builder
#: arguments (machine, stages, policy, fault_plan, aprun,
#: transaction_manager, tenant) are deliberately absent: pass them to
#: ``build(...)`` instead.
BUILDER_KEYS: Tuple[str, ...] = (
    "seed",
    "num_sim_writers",
    "control_interval",
    "monitor_interval",
    "crack_step",
    "use_pull_scheduler",
    "sla_interval",
    "overflow_occupancy",
    "overflow_horizon",
    "placement",
    "monitoring",
    "stage_buffer_bytes",
    "sim_buffer_bytes",
    "fault_tolerance",
    "heartbeat_interval",
    "lease_timeout",
    "manager_lease_timeout",
    "backpressure",
    "brownout",
)

#: transport methods a spec may name (see :mod:`repro.adios.methods`).
#: ``datatap`` is the staged online path; ``sst`` selects the streaming
#: publish/subscribe engine (requires a ``failover:`` block, which owns
#: the engine switches); ``posix``/``null`` remain declarative-only hooks.
TRANSPORTS: Tuple[str, ...] = ("datatap", "sst", "posix", "null")


@dataclass(frozen=True)
class WorkloadSpec:
    """Weak-scaling workload sizing (Table II vocabulary)."""

    sim_nodes: int = 256
    staging_nodes: int = 15
    spare: int = 2
    steps: int = 8
    output_interval: float = 15.0

    def to_workload(self) -> WeakScalingWorkload:
        return WeakScalingWorkload(
            sim_nodes=self.sim_nodes,
            staging_nodes=self.staging_nodes,
            spare_staging_nodes=self.spare,
            output_interval=self.output_interval,
            total_steps=self.steps,
        )

    def as_dict(self) -> dict:
        return {
            "sim_nodes": self.sim_nodes,
            "staging_nodes": self.staging_nodes,
            "spare": self.spare,
            "steps": self.steps,
            "output_interval": self.output_interval,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        return cls(**_checked_kwargs(cls, data, "workload"))


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: a named analysis action on some units.

    ``upstream`` names the stage this one reads from (``None`` = reads
    the simulation stream); fan-out falls out of several stages naming
    the same upstream.  ``library`` selects the component registry the
    ``component`` name resolves in (``smartpointer`` or ``s3d``).
    """

    name: str
    units: int
    component: Optional[str] = None  # None = same as the stage name
    model: str = ComputeModel.ROUND_ROBIN.value
    upstream: Optional[str] = None
    standby: bool = False
    queue_capacity: int = 1
    sla_factor: float = 1.0
    library: str = "smartpointer"

    def component_name(self) -> str:
        return self.component if self.component is not None else self.name

    def resolve_component(self):
        """The :class:`~repro.smartpointer.component.ComponentSpec` this
        stage runs (raises :class:`SpecError` on an unknown name)."""
        registry = component_library(self.library)
        try:
            return registry[self.component_name()]
        except KeyError:
            raise SpecError(
                f"stage {self.name!r}: unknown component "
                f"{self.component_name()!r} in library {self.library!r}; "
                f"known: {sorted(registry)}"
            ) from None

    def compute_model(self) -> ComputeModel:
        try:
            return ComputeModel(self.model)
        except ValueError:
            raise SpecError(
                f"stage {self.name!r}: unknown compute model {self.model!r}; "
                f"known: {[m.value for m in ComputeModel]}"
            ) from None

    def to_config(self):
        """The equivalent :class:`~repro.containers.pipeline.StageConfig`."""
        from repro.containers.pipeline import StageConfig

        component = self.component_name()
        # SmartPointer stages whose stage name *is* the component name use
        # the registry lookup path (byte-identical to the historical
        # StageConfig construction); anything else pins the spec explicitly.
        explicit = None
        if self.library != "smartpointer" or component != self.name:
            explicit = self.resolve_component()
        return StageConfig(
            self.name,
            self.units,
            self.compute_model(),
            queue_capacity=self.queue_capacity,
            standby=self.standby,
            upstream=self.upstream,
            sla_factor=self.sla_factor,
            component_spec=explicit,
        )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "units": self.units,
            "component": self.component,
            "model": self.model,
            "upstream": self.upstream,
            "standby": self.standby,
            "queue_capacity": self.queue_capacity,
            "sla_factor": self.sla_factor,
            "library": self.library,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StageSpec":
        return cls(**_checked_kwargs(cls, data, "stage"))


@dataclass(frozen=True)
class FaultEventSpec:
    """One declarative timed fault (mirrors :class:`~repro.faults.plan.FaultEvent`).

    ``targets`` index into the pipeline's staging scheduler pool
    (0 = first staging node, in allocation order) so a spec never names
    machine-global node ids it cannot know before build.
    """

    kind: str
    time: float
    targets: Tuple[int, ...] = ()
    duration: float = 0.0
    severity: float = 1.0

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "time": self.time,
            "targets": list(self.targets),
            "duration": self.duration,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEventSpec":
        kwargs = _checked_kwargs(cls, data, "fault event")
        if "targets" in kwargs:
            kwargs["targets"] = tuple(int(t) for t in kwargs["targets"])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultSpec:
    """The spec's fault plan: a named seeded recipe, explicit events, or both.

    ``recipe`` names a registered plan factory (see
    :data:`repro.spec.build.FAULT_RECIPES`) called with ``(seed, pipe)``
    after build, so schedules can target the concrete nodes stages landed
    on; ``events`` are fixed declarative faults resolved against the
    staging pool by index.  ``seed=None`` inherits the scenario seed.
    """

    recipe: Optional[str] = None
    seed: Optional[int] = None
    events: Tuple[FaultEventSpec, ...] = ()

    def as_dict(self) -> dict:
        return {
            "recipe": self.recipe,
            "seed": self.seed,
            "events": [ev.as_dict() for ev in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        kwargs = _checked_kwargs(cls, data, "faults")
        if "events" in kwargs:
            kwargs["events"] = tuple(
                FaultEventSpec.from_dict(ev) for ev in kwargs["events"]
            )
        return cls(**kwargs)


@dataclass(frozen=True)
class TenantSpecBlock:
    """The fleet overlay: quota floors/ceilings, priority class, SLA.

    ``reserved``/``burst`` of ``None`` mean "derive from the built pool"
    (the fleet's historical default: own pool minus two spares as the
    floor, own pool plus the shared spares as the ceiling).
    """

    priority: int = 1
    reserved: Optional[int] = None
    burst: Optional[int] = None
    sla_factor: float = 12.0
    overload_burst: bool = False

    def as_dict(self) -> dict:
        return {
            "priority": self.priority,
            "reserved": self.reserved,
            "burst": self.burst,
            "sla_factor": self.sla_factor,
            "overload_burst": self.overload_burst,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantSpecBlock":
        return cls(**_checked_kwargs(cls, data, "tenant"))


#: overload-policy modes a spec may name
OVERLOAD_MODES: Tuple[str, ...] = ("reactive", "predictive")


@dataclass(frozen=True)
class OverloadPolicyBlock:
    """How the pipeline handles overload.

    ``reactive`` (the default, and the paper's GM) escalates on observed
    SLA violations only; ``predictive`` attaches a
    :class:`~repro.analytics.predictive.PredictiveManager` so the
    brownout and backpressure controllers act on forecasts.  The tuning
    fields are optional overrides of
    :class:`~repro.analytics.predictive.PredictiveConfig` defaults;
    ``None`` means "use the default", and they are only meaningful under
    ``mode: predictive``.
    """

    mode: str = "reactive"
    sample_interval: Optional[float] = None
    horizon: Optional[float] = None
    risk_threshold: Optional[float] = None
    max_proactive_level: Optional[int] = None
    recovery_dwell_factor: Optional[float] = None

    def predictive_kwargs(self) -> dict:
        """The set tuning fields, as PredictiveConfig keyword overrides."""
        out = {}
        for key in ("sample_interval", "horizon", "risk_threshold",
                    "max_proactive_level", "recovery_dwell_factor"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "sample_interval": self.sample_interval,
            "horizon": self.horizon,
            "risk_threshold": self.risk_threshold,
            "max_proactive_level": self.max_proactive_level,
            "recovery_dwell_factor": self.recovery_dwell_factor,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OverloadPolicyBlock":
        return cls(**_checked_kwargs(cls, data, "overload"))


@dataclass(frozen=True)
class FailoverPolicyBlock:
    """Degrade-to-disk failover: spill instead of shed, replay to catch up.

    Attaches a :class:`~repro.adios.failover.FailoverManager` to the
    built pipeline.  Every field except ``retry_jitter`` is an optional
    override of a :class:`~repro.adios.failover.FailoverPolicy` default
    (``None`` = use the default).  ``spill_reasons`` restricts which shed
    reasons divert to the spill store; ``retry_jitter`` additionally
    enables seeded scatter on the messenger's retry backoff (see
    :class:`~repro.evpath.channel.RetryPolicy`), keyed on the pipeline
    seed so retry schedules decorrelate across nodes but stay
    deterministic per seed.
    """

    spill_reasons: Optional[Tuple[str, ...]] = None
    sweep_interval: Optional[float] = None
    subscriber_window: Optional[int] = None
    collapse_ticks: Optional[int] = None
    replay_batch: Optional[int] = None
    store_stripes: Optional[int] = None
    store_bandwidth: Optional[float] = None
    store_metadata_latency: Optional[float] = None
    retry_jitter: float = 0.0

    def __post_init__(self):
        if self.spill_reasons is not None:
            object.__setattr__(
                self, "spill_reasons", tuple(self.spill_reasons)
            )

    def failover_kwargs(self) -> dict:
        """The set tuning fields, as FailoverPolicy keyword overrides."""
        out = {}
        for key in ("spill_reasons", "sweep_interval", "subscriber_window",
                    "collapse_ticks", "replay_batch", "store_stripes",
                    "store_bandwidth", "store_metadata_latency"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def as_dict(self) -> dict:
        return {
            "spill_reasons": (
                None if self.spill_reasons is None
                else list(self.spill_reasons)
            ),
            "sweep_interval": self.sweep_interval,
            "subscriber_window": self.subscriber_window,
            "collapse_ticks": self.collapse_ticks,
            "replay_batch": self.replay_batch,
            "store_stripes": self.store_stripes,
            "store_bandwidth": self.store_bandwidth,
            "store_metadata_latency": self.store_metadata_latency,
            "retry_jitter": self.retry_jitter,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailoverPolicyBlock":
        return cls(**_checked_kwargs(cls, data, "failover"))


@dataclass(frozen=True)
class PipelineSpec:
    """One pipeline, declaratively.  See the module docstring.

    ``stages=None`` means the paper's default Figure 7-9 stage mix for the
    workload (:func:`repro.containers.pipeline.default_stages`).
    ``builder`` holds scalar :class:`~repro.containers.pipeline.PipelineBuilder`
    overrides (whitelisted in :data:`BUILDER_KEYS`); anything the builder
    defaults is simply omitted, so a spec stays minimal and the builder's
    defaults keep applying byte-identically.
    """

    name: str
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    stages: Optional[Tuple[StageSpec, ...]] = None
    builder: Mapping[str, Any] = field(default_factory=dict)
    transport: str = "datatap"
    #: end-to-end SLA target as a multiple of the output interval (used by
    #: fleet accounting and reporting; None = unspecified)
    sla: Optional[float] = None
    faults: Optional[FaultSpec] = None
    tenant: Optional[TenantSpecBlock] = None
    #: overload-policy selection (None = reactive, the historical default)
    overload: Optional[OverloadPolicyBlock] = None
    #: degrade-to-disk failover (None = lossy sheds, the paper's behavior)
    failover: Optional[FailoverPolicyBlock] = None

    def __post_init__(self):
        # freeze the builder mapping so the spec hashes/compares by value
        object.__setattr__(self, "builder", dict(self.builder))
        if self.stages is not None:
            object.__setattr__(self, "stages", tuple(self.stages))

    def __eq__(self, other) -> bool:
        if not isinstance(other, PipelineSpec):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self) -> int:
        return hash(self.to_yaml())

    # -- derivation -----------------------------------------------------------------

    def override(
        self,
        workload: Optional[Mapping[str, Any]] = None,
        builder: Optional[Mapping[str, Any]] = None,
        drop_builder: Tuple[str, ...] = (),
        **top_level: Any,
    ) -> "PipelineSpec":
        """A new spec with field-level overrides (the overlay primitive).

        ``workload``/``builder`` merge into the nested blocks;
        ``drop_builder`` removes keys (so an overlay can *unset* e.g. the
        overload controllers); other keyword arguments replace top-level
        fields (``name``, ``stages``, ``transport``, ``sla``, ``faults``,
        ``tenant``).
        """
        spec = self
        if workload:
            spec = replace(spec, workload=replace(spec.workload, **dict(workload)))
        merged = dict(spec.builder)
        for key in drop_builder:
            merged.pop(key, None)
        if builder:
            merged.update(builder)
        spec = replace(spec, builder=merged)
        if top_level:
            spec = replace(spec, **top_level)
        return spec

    # -- builder views --------------------------------------------------------------

    def stage_configs(self):
        """StageConfig list for the builder (None = builder defaults)."""
        if self.stages is None:
            return None
        return [s.to_config() for s in self.stages]

    def roots(self) -> Tuple[StageSpec, ...]:
        if self.stages is None:
            return ()
        return tuple(s for s in self.stages if s.upstream is None)

    # -- serialization ---------------------------------------------------------------

    def as_dict(self) -> dict:
        """The canonical, YAML-ready dict form (plain scalars only)."""
        return {
            "name": self.name,
            "workload": self.workload.as_dict(),
            "stages": (
                None if self.stages is None
                else [s.as_dict() for s in self.stages]
            ),
            "builder": {k: self.builder[k] for k in sorted(self.builder)},
            "transport": self.transport,
            "sla": self.sla,
            "faults": None if self.faults is None else self.faults.as_dict(),
            "tenant": None if self.tenant is None else self.tenant.as_dict(),
            "overload": None if self.overload is None else self.overload.as_dict(),
            "failover": None if self.failover is None else self.failover.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"a pipeline spec must be a mapping, got {type(data).__name__}")
        kwargs = _checked_kwargs(cls, data, "pipeline")
        if "name" not in kwargs:
            raise SpecError("a pipeline spec needs a name")
        if kwargs.get("workload") is not None:
            kwargs["workload"] = WorkloadSpec.from_dict(kwargs["workload"])
        else:
            kwargs.pop("workload", None)
        if kwargs.get("stages") is not None:
            kwargs["stages"] = tuple(
                StageSpec.from_dict(s) for s in kwargs["stages"]
            )
        if kwargs.get("faults") is not None:
            kwargs["faults"] = FaultSpec.from_dict(kwargs["faults"])
        if kwargs.get("tenant") is not None:
            kwargs["tenant"] = TenantSpecBlock.from_dict(kwargs["tenant"])
        if kwargs.get("overload") is not None:
            kwargs["overload"] = OverloadPolicyBlock.from_dict(kwargs["overload"])
        if kwargs.get("failover") is not None:
            kwargs["failover"] = FailoverPolicyBlock.from_dict(kwargs["failover"])
        return cls(**kwargs)

    def to_yaml(self) -> str:
        """Canonical YAML (sorted keys, block style) — stable under
        round-trip: ``from_yaml(s.to_yaml()).to_yaml() == s.to_yaml()``."""
        return _yaml().safe_dump(
            self.as_dict(), sort_keys=True, default_flow_style=False
        )

    @classmethod
    def from_yaml(cls, text: str) -> "PipelineSpec":
        try:
            data = _yaml().safe_load(text)
        except Exception as exc:
            raise SpecError(f"invalid YAML: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "PipelineSpec":
        from pathlib import Path

        text = Path(path).read_text()
        spec = cls.from_yaml(text)
        return spec

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_yaml())

    # -- validation (delegates) -------------------------------------------------------

    def validate(self) -> "PipelineSpec":
        """Raise :class:`SpecError` if the spec is malformed; returns self."""
        from repro.spec.validate import validate

        validate(self)
        return self


def component_library(name: str) -> Dict[str, Any]:
    """Component registry by library name (``smartpointer`` / ``s3d``)."""
    if name == "smartpointer":
        from repro.smartpointer.component import SMARTPOINTER_COMPONENTS

        return SMARTPOINTER_COMPONENTS
    if name == "s3d":
        from repro.s3d.components import S3D_COMPONENTS

        return S3D_COMPONENTS
    raise SpecError(
        f"unknown component library {name!r}; known: ['s3d', 'smartpointer']"
    )


def _checked_kwargs(cls, data: Mapping[str, Any], what: str) -> dict:
    """Mapping -> kwargs, rejecting unknown keys with a pointed error."""
    if not isinstance(data, Mapping):
        raise SpecError(f"a {what} block must be a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"unknown {what} field(s) {unknown}; known: {sorted(known)}"
        )
    return dict(data)
