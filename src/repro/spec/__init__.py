"""repro.spec — pipeline-as-code: declarative, validated pipeline specs.

The paper configures its I/O containers statically — topology, placement,
QoS policy fixed before launch.  This package is that idea made
first-class: a :class:`PipelineSpec` describes a pipeline declaratively
(stages, compute models, workload sizing, SLA targets, buffer sizing,
fault plan, overload policy, transport, tenant/quota block), round-trips
YAML <-> Python losslessly, is validated with pointed errors before
anything is built, and compiles to a wired
:class:`~repro.containers.pipeline.Pipeline` through one entry point,
:func:`build`.

The bundled specs under ``repro/spec/bundled/`` are the preset library
(``fig7`` / ``overload`` / ``s3d``); their default builds are
byte-identical to the historical keyword presets.  :mod:`repro.spec.fuzz`
generates random-but-valid specs from a splitmix64 seed — the topology
dimension of the DST sweep.
"""

from repro.spec.model import (
    BUILDER_KEYS,
    OVERLOAD_MODES,
    TRANSPORTS,
    FailoverPolicyBlock,
    FaultEventSpec,
    FaultSpec,
    OverloadPolicyBlock,
    PipelineSpec,
    SpecError,
    StageSpec,
    TenantSpecBlock,
    WorkloadSpec,
    component_library,
)
from repro.spec.validate import validate
from repro.spec.build import (
    FAULT_RECIPES,
    SPEC_DIR,
    build,
    bundled_spec_names,
    bundled_spec_path,
    load_preset,
    register_fault_recipe,
    resolve_fault_plan,
)

__all__ = [
    "BUILDER_KEYS",
    "OVERLOAD_MODES",
    "TRANSPORTS",
    "FailoverPolicyBlock",
    "FaultEventSpec",
    "FaultSpec",
    "OverloadPolicyBlock",
    "PipelineSpec",
    "SpecError",
    "StageSpec",
    "TenantSpecBlock",
    "WorkloadSpec",
    "component_library",
    "validate",
    "FAULT_RECIPES",
    "SPEC_DIR",
    "build",
    "bundled_spec_names",
    "bundled_spec_path",
    "load_preset",
    "register_fault_recipe",
    "resolve_fault_plan",
    "generate_spec",
    "FuzzedTopologyScenario",
]


def __getattr__(name):
    # fuzz imports dst/scenario machinery; keep it lazy so `import repro.spec`
    # stays cheap and cycle-free
    if name in ("generate_spec", "FuzzedTopologyScenario", "SpecFileScenario"):
        from repro.spec import fuzz

        return getattr(fuzz, name)
    raise AttributeError(f"module 'repro.spec' has no attribute {name!r}")
