"""Per-tenant resource quotas for the fleet arbiter.

A :class:`TenantQuota` bounds one tenant's staging-node holdings from both
sides.  ``reserved`` is the floor no steal may push the tenant below — a
tenant always keeps enough capacity to run its essential stages.
``burst`` is the ceiling the arbiter will grow the tenant to when spare
capacity exists; borrowing above it is denied even if the shared pool is
idle.  ``priority`` orders cross-tenant stealing: the arbiter moves free
nodes only from a *strictly lower* priority tenant to a higher one, so
equal-priority tenants can never raid each other and the deliberately
overloaded tenant of the fleet scenario (lowest priority) degrades alone.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TenantQuota:
    """Floor, ceiling, and steal class of one tenant's node holdings."""

    #: holdings may never be stolen below this many nodes
    reserved: int
    #: the arbiter will never grow holdings beyond this many nodes
    burst: int
    #: steal class: nodes move only from strictly lower to higher priority
    priority: int = 1

    def __post_init__(self):
        if self.reserved < 0:
            raise ValueError(f"reserved must be >= 0, got {self.reserved}")
        if self.burst < self.reserved:
            raise ValueError(
                f"burst ({self.burst}) must be >= reserved ({self.reserved})"
            )
