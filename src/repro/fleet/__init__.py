"""repro.fleet: thousands of tenant pipelines under one sharded GlobalManager.

The paper manages one pipeline per GlobalManager.  This package scales the
management architecture out: per-tenant GM shards on one shared machine,
a thin :class:`~repro.fleet.arbiter.FleetArbiter` owning the shared spare
pool under per-tenant :class:`~repro.fleet.quota.TenantQuota` policy, and
a :class:`~repro.fleet.scenario.FleetDSTScenario` that sweeps the whole
thing under seeded schedules and fault plans.
"""

from repro.fleet.arbiter import FleetArbiter
from repro.fleet.fleet import (
    Fleet,
    Tenant,
    TenantSpec,
    build_fleet,
    build_mixed_fleet,
    mixed_specs,
)
from repro.fleet.quota import TenantQuota
from repro.fleet.scenario import FleetDSTScenario, fleet_plan

__all__ = [
    "Fleet",
    "FleetArbiter",
    "FleetDSTScenario",
    "Tenant",
    "TenantQuota",
    "TenantSpec",
    "build_fleet",
    "build_mixed_fleet",
    "fleet_plan",
    "mixed_specs",
]
