"""The fleet arbiter: one shared spare pool, many tenant global managers.

The paper's GlobalManager owns its pipeline's spare staging nodes outright.
A fleet shards that: each tenant keeps its own GM and scheduler, and the
spare pool moves up one level into a :class:`FleetArbiter` that every GM
asks (synchronously, like its own scheduler) when the local free list runs
dry.  Grants come from three sources, in order:

1. the shared spare partition,
2. *reclaims* — idle nodes the arbiter previously loaned to some other
   tenant (fleet property, takes no priority to take back),
3. *steals* — free nodes of a strictly lower-priority tenant, but never
   below that tenant's :class:`~repro.fleet.quota.TenantQuota.reserved`
   floor.

Every mutation is followed by :meth:`_audit`, the event-time half of the
``quota_conservation`` DST oracle: tenant holdings plus arbiter spares must
equal the registered pool at *every* event, and no tenant may exceed its
burst ceiling.  Problems accumulate in :attr:`violations`, which the
invariant sweep drains into the DST report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.simkernel import Environment, Interrupt
from repro.simkernel.errors import SimulationError
from repro.cluster.node import Node
from repro.cluster.scheduler import BatchScheduler
from repro.fleet.quota import TenantQuota
from repro.monitoring.metrics import Telemetry
from repro.perf.registry import REGISTRY as PERF


@dataclass
class _TenantRecord:
    """Arbiter-side bookkeeping for one registered tenant."""

    gm: object
    scheduler: BatchScheduler
    quota: TenantQuota
    c_grants: object
    c_returns: object
    c_denials: object
    c_steals_from: object


class FleetArbiter:
    """Owns the shared spare pool; tenant GMs request/return nodes here.

    All operations are synchronous in-memory state changes (the arbiter is
    a peer of :class:`~repro.cluster.scheduler.BatchScheduler`, not a
    message-protocol participant), so GM protocol rounds can call them
    mid-round without yielding.
    """

    def __init__(
        self,
        env: Environment,
        spares: List[Node],
        telemetry: Optional[Telemetry] = None,
        rebalance_interval: float = 60.0,
    ):
        self.env = env
        #: the shared pool; crashed spares stay listed (conservation) but
        #: are never granted
        self.spares: List[Node] = list(spares)
        self.telemetry = telemetry or Telemetry()
        self.rebalance_interval = rebalance_interval
        self.tenants: Dict[str, _TenantRecord] = {}
        #: (time, action, tenant, count) — the deterministic decision log
        self.trace: List[Tuple] = []
        #: event-time audit failures, drained by the quota_conservation oracle
        self.violations: List[str] = []
        self._expected_total = len(self.spares)
        self._stopped = False
        self._proc = None
        if rebalance_interval and rebalance_interval > 0:
            self._proc = env.process(self._rebalance_loop(), name="fleet-arbiter")

    # -- registration ------------------------------------------------------------------

    def register(self, tenant: str, gm, quota: TenantQuota) -> None:
        """Wire a tenant GM into the arbiter and account its base pool.

        Rejects a registration that pushes the aggregate quota floors above
        the pool registered so far (tenant holdings + spares): a floor the
        arbiter conserves but could never fill is a misconfiguration, and
        this is the chokepoint every construction path funnels through.
        """
        if tenant in self.tenants:
            raise SimulationError(f"tenant {tenant!r} already registered")
        total = self._expected_total + len(gm.scheduler.pool.nodes)
        floors = quota.reserved + sum(
            rec.quota.reserved for rec in self.tenants.values()
        )
        if floors > total:
            raise SimulationError(
                f"registering tenant {tenant!r} raises aggregate quota "
                f"floors to {floors} reserved nodes, above the {total}-node "
                f"pool registered so far (tenant holdings + spares); no "
                f"arbitration could honor every floor"
            )
        gm.tenant = tenant
        gm.arbiter = self
        self.tenants[tenant] = _TenantRecord(
            gm=gm,
            scheduler=gm.scheduler,
            quota=quota,
            c_grants=PERF.handle(f"fleet.{tenant}.grants"),
            c_returns=PERF.handle(f"fleet.{tenant}.returns"),
            c_denials=PERF.handle(f"fleet.{tenant}.denials"),
            c_steals_from=PERF.handle(f"fleet.{tenant}.stolen_from"),
        )
        self._expected_total += len(gm.scheduler.pool.nodes)

    # -- inventory ---------------------------------------------------------------------

    def holdings(self, tenant: str) -> int:
        """Nodes currently in the tenant's pool (crashed ones included —
        they are quarantined capacity, not returned capacity)."""
        return len(self.tenants[tenant].scheduler.pool.nodes)

    def live_spares(self) -> int:
        return sum(1 for n in self.spares if not n.failed)

    def available_to(self, tenant: str) -> int:
        """How many nodes a ``request`` by this tenant could grant right now."""
        rec = self.tenants[tenant]
        headroom = rec.quota.burst - self.holdings(tenant)
        if headroom <= 0:
            return 0
        supply = self.live_spares()
        for other in sorted(self.tenants):
            if other == tenant:
                continue
            orec = self.tenants[other]
            idle_loaned = len(orec.scheduler.free_borrowed())
            supply += idle_loaned
            if orec.quota.priority < rec.quota.priority:
                surplus = self.holdings(other) - idle_loaned - orec.quota.reserved
                own_free = orec.scheduler.free_nodes - idle_loaned
                supply += max(0, min(surplus, own_free))
        return min(headroom, supply)

    # -- the request/return protocol ---------------------------------------------------

    def request(self, tenant: str, count: int) -> List[Node]:
        """Grant up to ``count`` nodes to ``tenant``; returns those adopted.

        The grant is capped by the tenant's burst headroom, then filled
        from spares, reclaims, and priority steals (in that order, each in
        deterministic tenant-name/priority order).  A shortfall is recorded
        as a denial; the caller degrades instead.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        rec = self.tenants[tenant]
        want = min(count, max(0, rec.quota.burst - self.holdings(tenant)))
        granted: List[Node] = []
        # 1) the shared spare pool
        while len(granted) < want:
            node = next((n for n in self.spares if not n.failed), None)
            if node is None:
                break
            self.spares.remove(node)
            granted.append(node)
        # 2) reclaim idle loans from other tenants — fleet property already
        if len(granted) < want:
            for other in sorted(self.tenants):
                if other == tenant:
                    continue
                osched = self.tenants[other].scheduler
                for node in osched.free_borrowed():
                    if len(granted) >= want:
                        break
                    osched.expel([node])
                    granted.append(node)
                    self._note("reclaim", other, 1)
        # 3) steal from strictly-lower-priority tenants, floor-respecting
        if len(granted) < want:
            victims = sorted(
                (o for o in self.tenants
                 if o != tenant
                 and self.tenants[o].quota.priority < rec.quota.priority),
                key=lambda o: (self.tenants[o].quota.priority, o),
            )
            for other in victims:
                orec = self.tenants[other]
                osched = orec.scheduler
                while len(granted) < want:
                    if self.holdings(other) <= orec.quota.reserved:
                        break
                    candidates = [
                        n for n in osched.peek_free()
                        if not osched.is_borrowed(n) and not n.failed
                    ]
                    if not candidates:
                        break
                    osched.expel([candidates[0]])
                    granted.append(candidates[0])
                    orec.c_steals_from.add(1)
                    self._note("steal", other, 1)
        if granted:
            rec.scheduler.adopt(granted)
            rec.c_grants.add(len(granted))
            self._note("grant", tenant, len(granted))
        shortfall = count - len(granted)
        if shortfall > 0:
            rec.c_denials.add(1)
            self._note("deny", tenant, shortfall)
        self._audit()
        return granted

    def give_back(self, tenant: str, nodes: List[Node]) -> None:
        """A tenant returns loaned nodes (abort paths, rebalance) to spares."""
        if not nodes:
            return
        rec = self.tenants[tenant]
        rec.scheduler.expel(nodes)
        self.spares.extend(nodes)
        rec.c_returns.add(len(nodes))
        self._note("return", tenant, len(nodes))
        self._audit()

    # -- background rebalance ----------------------------------------------------------

    def _rebalance_loop(self):
        """Periodically sweep idle loaned nodes back into the spare pool, so
        a burst's borrowed capacity is available to the next tenant in need."""
        while True:
            try:
                yield self.env.timeout(self.rebalance_interval)
            except Interrupt:
                return
            if self._stopped:
                return
            for tenant in sorted(self.tenants):
                sched = self.tenants[tenant].scheduler
                idle = sched.free_borrowed()
                if idle:
                    self.give_back(tenant, idle)

    # -- audit -------------------------------------------------------------------------

    def _audit(self) -> None:
        """Event-time conservation: Σ holdings + spares == registered pool,
        and nobody above burst.  Runs after every mutation."""
        total = len(self.spares) + sum(
            len(r.scheduler.pool.nodes) for r in self.tenants.values()
        )
        if total != self._expected_total:
            self.violations.append(
                f"t={self.env.now:.1f}: holdings+spares = {total}, "
                f"expected {self._expected_total}"
            )
        for tenant in sorted(self.tenants):
            rec = self.tenants[tenant]
            held = len(rec.scheduler.pool.nodes)
            if held > rec.quota.burst:
                self.violations.append(
                    f"t={self.env.now:.1f}: tenant {tenant!r} holds {held} "
                    f"> burst {rec.quota.burst}"
                )

    def _note(self, action: str, tenant: str, count: int) -> None:
        self.trace.append((self.env.now, action, tenant, count))
        self.telemetry.mark(self.env.now, f"arbiter {action} {tenant} x{count}")

    def stop(self) -> None:
        self._stopped = True
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
