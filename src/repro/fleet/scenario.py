"""The fleet DST scenario: N tenants, one schedule seed, shared faults.

Duck-types :class:`~repro.dst.scenario.DSTScenario` (``name`` /
``preset`` / ``build`` / ``resolve_plan`` / ``run``), so the standard
:func:`~repro.dst.explore.explore` seed sweep and the greedy
:func:`~repro.dst.shrink.shrink` minimizer drive it unchanged.

The fault plan merges per-tenant recipes into one machine-wide schedule:
the seeded overload burst against the designated victim tenant (``t00``)
plus one crash-and-slowdown plan against the first fig7 tenant.  One
:class:`~repro.dst.invariants.InvariantMonitor` runs per tenant pipeline —
each sweeps the full catalogue, including the two fleet-wide oracles
(which key off ``pipe.fleet`` and are deduplicated across monitors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.simkernel import Environment, shuffle
from repro.faults.plan import FaultPlan
from repro.dst.invariants import InvariantMonitor, Violation
from repro.dst.scenario import DSTReport, default_smoke_plan, repro_command
from repro.fleet.fleet import Fleet, build_mixed_fleet

#: oracles that see the whole fleet through any tenant's monitor — their
#: problem strings already name tenants, so they dedup across monitors
FLEET_WIDE_INVARIANTS = {"no_cross_tenant_node_leak", "quota_conservation"}


def fleet_plan(seed: int, fleet: Fleet) -> FaultPlan:
    """The merged machine-wide fault schedule for one fleet run."""
    from repro.overload.scenario import overload_burst_plan

    merged = FaultPlan(seed=seed)

    def absorb(sub: FaultPlan) -> None:
        for ev in sub.events:
            merged.add(ev.kind, ev.time, ev.targets, ev.duration, ev.severity)

    for tenant in fleet.tenants.values():
        if tenant.spec.overload_burst:
            absorb(overload_burst_plan(seed, tenant.pipe))
    fig7s = [t for _, t in sorted(fleet.tenants.items())
             if t.spec.preset == "fig7"]
    if fig7s:
        absorb(default_smoke_plan(seed + 1, fig7s[0].pipe))
    return merged


@dataclass
class FleetDSTScenario:
    """A seeded, fully reproducible multi-tenant scenario."""

    name: str = "fleet"
    preset: str = "fleet"
    tenants: int = 4
    steps: int = 6
    spares: int = 4
    invariants: Optional[List[str]] = None
    check_interval: float = 10.0
    settle: float = 120.0
    drain: float = 600.0
    hook: Optional[Callable[[Fleet], None]] = field(default=None, repr=False)

    def build(self, seed: Optional[int]) -> Fleet:
        env = Environment() if seed is None else Environment(
            tie_breaker=shuffle(seed)
        )
        return build_mixed_fleet(env, tenants=self.tenants, steps=self.steps,
                                 spares=self.spares)

    def resolve_plan(self, seed: Optional[int],
                     fleet: Fleet) -> Optional[FaultPlan]:
        return fleet_plan(seed if seed is not None else 0, fleet)

    def run(self, seed: Optional[int] = None,
            plan_override: Optional[FaultPlan] = None) -> DSTReport:
        fleet = self.build(seed)
        if self.hook is not None:
            self.hook(fleet)
        plan = (plan_override if plan_override is not None
                else self.resolve_plan(seed, fleet))
        if plan is not None and plan.events:
            fleet.arm_faults(plan)
        monitors = {
            name: InvariantMonitor(tenant.pipe, self.invariants,
                                   interval=self.check_interval)
            for name, tenant in sorted(fleet.tenants.items())
        }
        finished = fleet.run(settle=self.settle)
        if all(finished.values()):
            self._drain(fleet)
        violations: List[Violation] = []
        seen = set()
        for name, monitor in sorted(monitors.items()):
            monitor.note_finished(finished[name])
            for v in monitor.finish():
                if v.invariant in FLEET_WIDE_INVARIANTS:
                    # identical across monitors; report once, unprefixed
                    key = (v.invariant, v.detail)
                    detail = v.detail
                else:
                    key = (name, v.invariant, v.detail)
                    detail = f"[{name}] {v.detail}"
                if key in seen:
                    continue
                seen.add(key)
                violations.append(Violation(v.invariant, v.time, detail))
        return DSTReport(
            scenario=self.name,
            preset=self.preset,
            seed=seed,
            finished=all(finished.values()),
            violations=violations,
            plan_signature=plan.signature() if plan is not None else None,
            plan_events=plan.as_dicts() if plan is not None else [],
            event_log=self._event_log(fleet),
            repro=repro_command(seed, "fleet"),
        )

    def _drain(self, fleet: Fleet) -> None:
        """Bounded extra time for recovery backlogs, fleet-wide: the drain
        holds until every tenant's every timestep has a fate."""
        env = fleet.env
        deadline = env.now + self.drain
        while env.now < deadline:
            pending = False
            for tenant in fleet.tenants.values():
                pipe = tenant.pipe
                fated = {step for _, step, _ in pipe.end_to_end}
                if pipe.shed_ledger is not None:
                    fated |= pipe.shed_ledger.steps()
                if len(fated) < pipe.driver.workload.total_steps:
                    pending = True
                    break
            if not pending:
                return
            env.run(until=min(env.now + 30.0, deadline))

    @staticmethod
    def _event_log(fleet: Fleet) -> List[list]:
        """Merged, time-ordered fleet log: injected faults, arbiter
        decisions/marks, and per-tenant telemetry marks (prefixed)."""
        log: List[list] = []
        if fleet.fault_injector is not None:
            for entry in fleet.fault_injector.trace:
                log.append([float(entry[0]), "fault", *map(str, entry[1:])])
        for time, label in fleet.telemetry.events:
            log.append([float(time), "mark", label])
        for name, tenant in sorted(fleet.tenants.items()):
            for time, label in tenant.pipe.telemetry.events:
                log.append([float(time), "mark", f"[{name}] {label}"])
        log.sort(key=lambda row: row[0])
        return log
