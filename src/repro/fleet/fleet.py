"""Multi-tenant fleets: N pipelines on one machine under one arbiter.

A :class:`Fleet` runs many tenant pipelines concurrently in a single
simulation :class:`~repro.simkernel.Environment` on a single shared
machine.  Each tenant gets its own partitions (``<tenant>:sim`` /
``<tenant>:staging``), its own scheduler (perf-namespaced
``fleet.<tenant>.*``), its own sharded GlobalManager, and — where the
preset enables them — its own backpressure and brownout controllers.  The
only shared mutable resource is the spare pool, owned by the
:class:`~repro.fleet.arbiter.FleetArbiter`.

:func:`build_mixed_fleet` is the canonical construction: a deterministic
fig7/overload/S3D preset cycle with tenant ``t00`` as the deliberately
overloaded, lowest-priority tenant — the configuration the acceptance
bench measures (t00 browns out; nobody else misses their SLA).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from repro.simkernel import Environment
from repro.simkernel.errors import SimulationError
from repro.cluster.presets import franklin
from repro.containers.pipeline import Pipeline
from repro.fleet.arbiter import FleetArbiter
from repro.fleet.quota import TenantQuota
from repro.monitoring.metrics import Telemetry
from repro.perf.registry import REGISTRY as PERF
from repro.spec.build import build as build_spec, bundled_spec_names, load_preset
from repro.spec.model import (
    BUILDER_KEYS,
    PipelineSpec,
    TenantSpecBlock,
    WorkloadSpec,
)

#: (sim writers, staging nodes) each preset's *default* build carves from
#: the shared machine — read off the bundled spec library, so the machine
#: sizing can never drift from :mod:`repro.spec.bundled`.  Per-tenant
#: workload overrides shrink the carved partitions, never the reservation.
PRESET_FOOTPRINT: Dict[str, tuple] = {
    name: (
        int(load_preset(name).builder.get("num_sim_writers", 4)),
        load_preset(name).workload.staging_nodes,
    )
    for name in bundled_spec_names()
}

_WORKLOAD_FIELDS = frozenset(f.name for f in fields(WorkloadSpec))


def _split_overrides(overrides: dict) -> tuple:
    """Partition tenant overrides into (workload, builder, runtime) — the
    first two overlay the tenant's :class:`PipelineSpec`, the rest are
    runtime-only objects forwarded to :func:`repro.spec.build.build`."""
    workload: dict = {}
    builder: dict = {}
    runtime: dict = {}
    for key, value in overrides.items():
        if key in _WORKLOAD_FIELDS:
            workload[key] = value
        elif key in BUILDER_KEYS:
            builder[key] = value
        else:
            runtime[key] = value
    return workload, builder, runtime


@dataclass
class TenantSpec:
    """What one tenant runs and under which quota/SLA."""

    name: str
    preset: str = "fig7"
    steps: int = 8
    quota: Optional[TenantQuota] = None
    priority: int = 1
    #: arm the seeded overload burst against this tenant's analysis stages
    overload_burst: bool = False
    #: end-to-end SLA, as a multiple of the workload's output interval.
    #: 12x leaves headroom over the unloaded fig7 end-to-end latency
    #: (~7x) for the queueing tail a tenant sees when its node-increase
    #: request is denied and must wait out a rebalance cycle.
    sla_factor: float = 12.0
    #: extra keyword overrides forwarded to the preset builder
    overrides: dict = field(default_factory=dict)

    def to_spec(self) -> PipelineSpec:
        """The per-tenant :class:`PipelineSpec` overlay: the bundled preset
        spec with this tenant's steps/workload/builder overrides merged in
        and the quota/SLA block attached."""
        if self.preset not in PRESET_FOOTPRINT:
            raise ValueError(
                f"unknown fleet preset {self.preset!r}; "
                f"known: {sorted(PRESET_FOOTPRINT)}"
            )
        workload, builder, _ = _split_overrides(self.overrides)
        workload["steps"] = self.steps
        quota = self.quota
        tenant = TenantSpecBlock(
            priority=self.priority,
            reserved=None if quota is None else quota.reserved,
            burst=None if quota is None else quota.burst,
            sla_factor=self.sla_factor,
            overload_burst=self.overload_burst,
        )
        return load_preset(self.preset).override(
            workload=workload, builder=builder, tenant=tenant,
        )


@dataclass
class Tenant:
    """One running tenant: its spec and its wired pipeline."""

    spec: TenantSpec
    pipe: Pipeline

    @property
    def name(self) -> str:
        return self.spec.name

    def delivered_steps(self) -> int:
        return len({step for _, step, _ in self.pipe.end_to_end})

    def shed_steps(self) -> int:
        ledger = self.pipe.shed_ledger
        return len(ledger.steps()) if ledger is not None else 0

    def sla_seconds(self) -> float:
        wl = self.pipe.driver.workload
        return self.spec.sla_factor * wl.output_interval

    def sla_compliance(self) -> float:
        """Fraction of timesteps delivered end-to-end within the SLA.

        Shed timesteps count against compliance: a browned-out tenant
        trades compliance for survival, and that trade must show up here.
        """
        wl = self.pipe.driver.workload
        sla = self.sla_seconds()
        in_sla = {
            step for _, step, latency in self.pipe.end_to_end if latency <= sla
        }
        return len(in_sla) / wl.total_steps

    def degradations(self) -> int:
        return len(self.pipe.degradation.steps)

    def summary(self) -> dict:
        return {
            "tenant": self.name,
            "preset": self.spec.preset,
            "priority": self.spec.priority,
            "finished": self.pipe.driver.finished.triggered,
            "delivered": self.delivered_steps(),
            "shed": self.shed_steps(),
            "sla_compliance": round(self.sla_compliance(), 4),
            "degradations": self.degradations(),
        }


class Fleet:
    """The shared-machine container for tenants + arbiter; see module doc."""

    def __init__(self, env: Environment, machine, arbiter: FleetArbiter,
                 telemetry: Optional[Telemetry] = None):
        self.env = env
        self.machine = machine
        self.arbiter = arbiter
        self.telemetry = telemetry or arbiter.telemetry
        self.tenants: Dict[str, Tenant] = {}
        self.fault_injector = None
        self._stopped = False

    def add_tenant(self, spec: TenantSpec, pipe: Pipeline,
                   quota: TenantQuota) -> Tenant:
        if spec.name in self.tenants:
            raise SimulationError(f"tenant {spec.name!r} already in fleet")
        pipe.fleet = self
        self.arbiter.register(spec.name, pipe.global_manager, quota)
        tenant = Tenant(spec, pipe)
        self.tenants[spec.name] = tenant
        return tenant

    # -- execution ---------------------------------------------------------------------

    def run(self, settle: float = 60.0,
            deadline: Optional[float] = None) -> Dict[str, bool]:
        """Run until every tenant driver finishes (or ``deadline``).

        Mirrors :meth:`Pipeline.run` at fleet granularity: one env.run over
        the union of drivers, one settle window, one teardown, one perf
        publish.  Returns tenant -> driver-finished.
        """
        if not self.tenants:
            raise SimulationError("fleet has no tenants")
        drivers = [t.pipe.driver for t in self.tenants.values()]
        if deadline is None:
            deadline = 4.0 * max(
                d.workload.total_steps * d.workload.output_interval
                for d in drivers
            )
        with PERF.timer("fleet.run"):
            done = self.env.all_of([d.finished for d in drivers])
            self.env.run(until=self.env.any_of(
                [done, self.env.timeout(deadline)]
            ))
            finished = {
                name: t.pipe.driver.finished.triggered
                for name, t in self.tenants.items()
            }
            self.env.run(until=self.env.now + settle)
            self.stop()
        publish = getattr(self.env, "publish_perf", None)
        if publish is not None:
            publish(PERF)
        return finished

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for tenant in self.tenants.values():
            pipe = tenant.pipe
            if pipe.global_manager is not None:
                pipe.global_manager.stop()
            if pipe.monitoring_overlay is not None:
                pipe.monitoring_overlay.stop()
            if pipe.backpressure is not None:
                pipe.backpressure.stop()
            if pipe.brownout is not None:
                pipe.brownout.stop()
        self.arbiter.stop()

    # -- faults ------------------------------------------------------------------------

    def arm_faults(self, plan):
        """One injector over the whole machine; crashes fan out to every
        tenant (quarantine in the owning scheduler, kill resident replicas)."""
        from repro.faults import ClusterFaultInjector, NetworkFaultState

        self.machine.network.faults = NetworkFaultState(self.env, plan)
        injector = ClusterFaultInjector(self.env, plan, self.machine.nodes)
        injector.on_crash(self._on_node_crash)
        injector.start()
        self.fault_injector = injector
        return injector

    def _on_node_crash(self, node) -> None:
        for tenant in self.tenants.values():
            sched = tenant.pipe.scheduler
            if node in sched.pool.nodes:
                sched.mark_failed(node)
            tenant.pipe._on_node_crash(node)

    # -- census ------------------------------------------------------------------------

    def node_census(self) -> dict:
        """Fleet-wide node ownership, by node id — the raw data behind the
        ``no_cross_tenant_node_leak`` oracle."""
        return {
            "spares": [n.node_id for n in self.arbiter.spares],
            "tenants": {
                name: tenant.pipe.node_census()
                for name, tenant in sorted(self.tenants.items())
            },
        }

    def summaries(self) -> List[dict]:
        return [t.summary() for _, t in sorted(self.tenants.items())]


# -- construction ----------------------------------------------------------------------


def build_fleet(env: Environment, specs: List[TenantSpec], spares: int = 4,
                rebalance_interval: float = 60.0) -> Fleet:
    """Build a fleet: shared machine, arbiter spare pool, one pipeline per
    spec (each compiled from its :meth:`TenantSpec.to_spec` overlay under
    its own tenant-prefixed partitions).

    Rejects, before any node is carved: duplicate tenant names, unknown
    presets, and aggregate quota floors the machine could never honor
    (Σ reserved > Σ tenant staging + shared spares).
    """
    if not specs:
        raise ValueError("a fleet needs at least one tenant spec")
    names = [spec.name for spec in specs]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise ValueError(
            f"duplicate tenant name(s) {dupes}: every tenant needs its own "
            f"partitions, scheduler, and arbiter registration"
        )
    total = spares + 2
    resolved = []  # (TenantSpec, PipelineSpec) in slate order
    for spec in specs:
        pspec = spec.to_spec()  # raises ValueError on an unknown preset
        writers, staging = PRESET_FOOTPRINT[spec.preset]
        total += writers + staging
        resolved.append((spec, pspec))
    # Aggregate floor check: the floors a steal may never cross must fit in
    # the capacity the arbiter conserves (every tenant's own staging pool
    # plus the shared spares), or some floor could never be honored.
    capacity = spares + sum(p.workload.staging_nodes for _, p in resolved)
    floors = sum(
        s.quota.reserved if s.quota is not None
        else max(0, p.workload.staging_nodes - 2)
        for s, p in resolved
    )
    if floors > capacity:
        raise ValueError(
            f"aggregate quota floors reserve {floors} staging nodes but the "
            f"fleet only has {capacity} (tenant pools + {spares} shared "
            f"spares); lower some tenant's reserved floor or add capacity"
        )
    machine = franklin(env, num_nodes=total)
    spare_part = machine.partition("fleet:spares", spares)
    telemetry = Telemetry()
    arbiter = FleetArbiter(
        env, list(spare_part.nodes), telemetry=telemetry,
        rebalance_interval=rebalance_interval,
    )
    fleet = Fleet(env, machine, arbiter, telemetry)
    for spec, pspec in resolved:
        _, _, runtime = _split_overrides(spec.overrides)
        pipe = build_spec(env, pspec, machine=machine, tenant=spec.name,
                          **runtime)
        base = len(pipe.scheduler.pool.nodes)
        quota = spec.quota or TenantQuota(
            # by default a tenant's own spare staging nodes (2 per preset)
            # are up for grabs, and it may borrow the whole shared pool
            reserved=max(0, base - 2),
            burst=base + spares,
            priority=spec.priority,
        )
        fleet.add_tenant(spec, pipe, quota)
    return fleet


def mixed_specs(tenants: int, steps: int = 6) -> List[TenantSpec]:
    """The canonical mixed-tenant slate: ``t00`` is the deliberately
    overloaded, lowest-priority tenant (tight-buffer preset, seeded burst
    plan, backpressure + brownout); everyone else alternates the fig7 and
    S3D stage mixes.  The acceptance property: t00 browns out — sheds under
    its SLA — while no other tenant misses theirs."""
    if tenants < 1:
        raise ValueError(f"need at least one tenant, got {tenants}")
    specs = [TenantSpec(
        name="t00",
        preset="overload",
        steps=steps,
        # lowest priority: the victim cannot raid its well-behaved peers
        priority=1,
        overload_burst=True,
    )]
    for i in range(1, tenants):
        fig7 = bool(i % 2)
        specs.append(TenantSpec(
            name=f"t{i:02d}",
            preset="fig7" if fig7 else "s3d",
            steps=steps,
            priority=2,
            # fig7 tenants carry no local spares: their recovery ladder
            # *must* borrow replacement nodes from the fleet arbiter —
            # the sharded version of the single-pipeline spare pool
            overrides=dict(staging_nodes=13, spare=0) if fig7 else {},
        ))
    return specs


def build_mixed_fleet(env: Environment, tenants: int, steps: int = 6,
                      spares: int = 4,
                      rebalance_interval: float = 60.0) -> Fleet:
    return build_fleet(env, mixed_specs(tenants, steps=steps), spares=spares,
                       rebalance_interval=rebalance_interval)
