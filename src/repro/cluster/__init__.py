"""Simulated HPC machine: nodes, interconnect, batch scheduler.

The paper's experiments ran on NERSC's Franklin (Cray XT4, Portals 3-D torus)
and Sandia's RedSky (InfiniBand 3-D toroidal mesh).  This package models the
pieces of those machines that the paper's results actually depend on:

* per-node cores and memory (:class:`Node`);
* NIC injection/ejection bandwidth as the contention point, plus per-hop
  latency over a (networkx) topology graph (:class:`Network`) — the standard
  first-order model for RDMA transfers on torus machines;
* a batch scheduler that hands an application a fixed node partition for the
  whole run, with the Cray ``aprun`` launch-cost artifact the paper measures
  at 3–27 s (:class:`BatchScheduler`, :class:`AprunModel`).
"""

from repro.cluster.node import Nic, Node
from repro.cluster.network import Network, TransferError, TransferStats
from repro.cluster.machine import Machine, Partition
from repro.cluster.scheduler import AprunModel, BatchScheduler, Job
from repro.cluster.presets import franklin, redsky

__all__ = [
    "AprunModel",
    "BatchScheduler",
    "Job",
    "Machine",
    "Network",
    "Nic",
    "Node",
    "Partition",
    "TransferError",
    "TransferStats",
    "franklin",
    "redsky",
]
