"""Compute nodes and their network interfaces."""

from __future__ import annotations

from repro.simkernel import Environment, Resource
from repro.simkernel.errors import SimulationError


class Nic:
    """A network interface with finite injection/ejection bandwidth.

    Bandwidth is shared by acquiring one of ``max_streams`` channel slots per
    direction; each active stream gets the full serialization rate, so with
    ``max_streams=1`` concurrent transfers queue (FIFO) rather than
    subdividing bandwidth.  This models the DMA-engine serialization seen on
    Portals/SeaStar NICs, and is the contention point the DataStager pull
    scheduler (Section III-C of the paper) exists to manage.
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        max_streams: int = 1,
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        #: bytes per second
        self.bandwidth = float(bandwidth)
        self.send_channel = Resource(env, capacity=max_streams)
        self.recv_channel = Resource(env, capacity=max_streams)
        #: total bytes injected / ejected (monitoring)
        self.bytes_sent = 0
        self.bytes_received = 0


class Node:
    """A compute node: cores, memory and a NIC.

    Memory is tracked explicitly (reserve/free) rather than as a blocking
    resource because the paper's staging buffers fail fast when they exceed
    node memory rather than waiting for it.
    """

    def __init__(
        self,
        env: Environment,
        node_id: int,
        cores: int = 4,
        memory_bytes: float = 8 * 2**30,
        nic_bandwidth: float = 1.6 * 2**30,
        nic_streams: int = 1,
    ):
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        self.env = env
        self.node_id = node_id
        self.num_cores = cores
        self.cores = Resource(env, capacity=cores)
        self.memory_bytes = float(memory_bytes)
        self._memory_used = 0.0
        self.nic = Nic(env, nic_bandwidth, nic_streams)
        #: set by fault injection; a failed node drops traffic and computes
        #: nothing until :meth:`restore` (see :mod:`repro.faults`)
        self.failed = False
        #: compute-time multiplier (> 1 under an injected slow-down)
        self.slow_factor = 1.0

    # -- fault hooks ------------------------------------------------------------

    def fail(self) -> None:
        """Mark the node crashed (fault injection)."""
        self.failed = True

    def restore(self) -> None:
        """Bring the node back after a crash or slow-down."""
        self.failed = False
        self.slow_factor = 1.0

    # -- memory -----------------------------------------------------------------

    @property
    def memory_used(self) -> float:
        return self._memory_used

    @property
    def memory_free(self) -> float:
        return self.memory_bytes - self._memory_used

    def reserve_memory(self, nbytes: float) -> None:
        """Claim ``nbytes``; raises if the node would exceed physical memory."""
        if nbytes < 0:
            raise ValueError("cannot reserve negative memory")
        if self._memory_used + nbytes > self.memory_bytes:
            raise SimulationError(
                f"node {self.node_id}: out of memory "
                f"(used={self._memory_used:.0f}, request={nbytes:.0f}, "
                f"total={self.memory_bytes:.0f})"
            )
        self._memory_used += nbytes

    def free_memory(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError("cannot free negative memory")
        # Tolerate float round-off from many reserve/free cycles.
        if nbytes > self._memory_used * (1 + 1e-9) + 1e-6:
            raise SimulationError(
                f"node {self.node_id}: freeing {nbytes:.0f} > used {self._memory_used:.0f}"
            )
        self._memory_used = max(0.0, self._memory_used - nbytes)

    def compute(self, seconds: float, cores: int = 1):
        """A process that occupies ``cores`` cores for ``seconds``.

        Yields from inside a generator: ``yield env.process(node.compute(t))``.
        """
        if cores > self.num_cores:
            raise SimulationError(
                f"node {self.node_id}: requested {cores} cores, has {self.num_cores}"
            )
        return self.env.process(self._compute(seconds, cores), name=("compute@{}", self.node_id))

    def _compute(self, seconds: float, cores: int):
        requests = [self.cores.request() for _ in range(cores)]
        for req in requests:
            yield req
        try:
            yield self.env.timeout(seconds * self.slow_factor)
        finally:
            for req in requests:
                self.cores.release(req)

    def __repr__(self) -> str:
        return f"<Node {self.node_id} cores={self.num_cores}>"
