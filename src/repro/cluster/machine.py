"""A machine = nodes + network, partitioned for an application run."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.simkernel import Environment
from repro.simkernel.errors import SimulationError
from repro.cluster.network import Network
from repro.cluster.node import Node


class Partition:
    """A named slice of a machine's nodes (e.g. "simulation", "staging")."""

    def __init__(self, name: str, nodes: List[Node]):
        self.name = name
        self.nodes = list(nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, index):
        return self.nodes[index]

    def __repr__(self) -> str:
        return f"<Partition {self.name!r} nodes={len(self.nodes)}>"


def torus_3d(shape: Sequence[int]) -> nx.Graph:
    """Build a 3-D torus topology graph (the XT4 / RedSky interconnect shape)."""
    if len(shape) != 3 or any(s < 1 for s in shape):
        raise ValueError(f"shape must be three positive dims, got {shape}")
    graph = nx.grid_graph(dim=list(reversed(shape)), periodic=True)
    # Relabel coordinate tuples to flat integer ids.
    mapping = {coord: i for i, coord in enumerate(sorted(graph.nodes))}
    return nx.relabel_nodes(graph, mapping)


class Machine:
    """A collection of nodes joined by a network, with named partitions.

    Parameters mirror what the paper's platforms expose: node count, cores
    and memory per node, NIC bandwidth, and the interconnect topology.
    """

    def __init__(
        self,
        env: Environment,
        num_nodes: int,
        cores_per_node: int = 4,
        memory_per_node: float = 8 * 2**30,
        nic_bandwidth: float = 1.6 * 2**30,
        nic_streams: int = 1,
        topology: Optional[nx.Graph] = None,
        network_kwargs: Optional[dict] = None,
        name: str = "machine",
    ):
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if topology is not None and topology.number_of_nodes() < num_nodes:
            raise ValueError(
                f"topology has {topology.number_of_nodes()} nodes < num_nodes={num_nodes}"
            )
        self.env = env
        self.name = name
        self.nodes: List[Node] = [
            Node(
                env,
                node_id=i,
                cores=cores_per_node,
                memory_bytes=memory_per_node,
                nic_bandwidth=nic_bandwidth,
                nic_streams=nic_streams,
            )
            for i in range(num_nodes)
        ]
        self.network = Network(env, topology=topology, **(network_kwargs or {}))
        self._partitions: Dict[str, Partition] = {}
        self._next_free = 0

    # -- partitioning ---------------------------------------------------------------

    def partition(self, name: str, count: int) -> Partition:
        """Carve the next ``count`` unassigned nodes into a named partition.

        Mirrors the batch-scheduler reality the paper describes: the user
        gets one allocation and must split it between simulation and staging
        up front.
        """
        if name in self._partitions:
            raise SimulationError(f"partition {name!r} already exists")
        if self._next_free + count > len(self.nodes):
            raise SimulationError(
                f"cannot allocate {count} nodes for {name!r}: only "
                f"{len(self.nodes) - self._next_free} remain"
            )
        nodes = self.nodes[self._next_free : self._next_free + count]
        self._next_free += count
        part = Partition(name, nodes)
        self._partitions[name] = part
        return part

    def get_partition(self, name: str) -> Partition:
        return self._partitions[name]

    @property
    def unallocated(self) -> int:
        return len(self.nodes) - self._next_free

    def __repr__(self) -> str:
        return f"<Machine {self.name!r} nodes={len(self.nodes)}>"
