"""Batch scheduler and the Cray ``aprun`` launch-cost model.

The paper factors the cost of ``aprun`` out of its microbenchmarks because it
is "an artifact of the particular OS batch-style scheduling", but reports
observed launch times of **3 to 27 seconds**.  We model that artifact
explicitly and keep it separable (``include_aprun`` flags throughout), so the
benches can report results both ways, exactly as the paper does.

A second aprun limitation the paper leans on: processes launched by separate
``aprun`` invocations cannot be coalesced onto the same node.  The scheduler
enforces that for MPI-model containers, which is why growing an MPI component
requires full teardown + relaunch while round-robin replicas can simply be
spawned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.simkernel import Environment
from repro.simkernel.errors import SimulationError
from repro.cluster.machine import Partition
from repro.cluster.node import Node
from repro.perf.registry import REGISTRY as PERF


@dataclass
class AprunModel:
    """Stochastic launch-cost model for ``aprun``.

    The paper reports 3–27 s.  We draw from a log-uniform distribution over
    that range: launch cost is dominated by placement and binary broadcast,
    both heavy-tailed in practice.
    """

    min_seconds: float = 3.0
    max_seconds: float = 27.0

    def sample(self, rng: np.random.Generator) -> float:
        if self.min_seconds <= 0 or self.max_seconds < self.min_seconds:
            raise ValueError("invalid aprun cost range")
        lo, hi = np.log(self.min_seconds), np.log(self.max_seconds)
        return float(np.exp(rng.uniform(lo, hi)))


@dataclass
class Job:
    """A launched executable occupying nodes until released."""

    job_id: int
    name: str
    nodes: List[Node]
    launched_at: float
    launch_cost: float
    released: bool = False


class BatchScheduler:
    """Allocates nodes from a partition and models launch costs.

    This is *intra-allocation* scheduling: the user already holds the full
    node set (as on Franklin); the scheduler tracks which staging nodes are
    busy, hands out spares, and charges aprun time for MPI-style launches.
    """

    def __init__(
        self,
        env: Environment,
        pool: Partition,
        aprun: Optional[AprunModel] = None,
        rng: Optional[np.random.Generator] = None,
        label: str = "cluster.scheduler",
    ):
        self.env = env
        self.pool = pool
        self.aprun = aprun or AprunModel()
        self.rng = rng or np.random.default_rng(0)
        self._free: List[Node] = list(pool.nodes)
        self._jobs: Dict[int, Job] = {}
        self._next_job_id = 0
        #: nodes lost to injected crashes; never handed out again
        self.failed_nodes: List[Node] = []
        #: nodes on loan from the fleet arbiter (see :meth:`adopt`)
        self._borrowed: set = set()
        #: perf namespace; fleet tenants use ``fleet.<tenant>`` so holdings
        #: show up per tenant.  Occupancy is published as a monotone pair of
        #: cumulative counters (allocated/released) rather than a raw gauge —
        #: the DST ``monotone_perf`` oracle requires counters never decrease;
        #: the current gauge is the difference (see also :meth:`occupancy`).
        self.label = label
        self._c_allocated = PERF.handle(f"{label}.nodes_allocated")
        self._c_released = PERF.handle(f"{label}.nodes_released")

    # -- inventory -------------------------------------------------------------------

    @property
    def free_nodes(self) -> int:
        return len(self._free)

    @property
    def busy_nodes(self) -> int:
        return len(self.pool) - len(self._free)

    def peek_free(self) -> List[Node]:
        return list(self._free)

    def mark_failed(self, node: Node) -> None:
        """Quarantine a crashed node: pull it from the free pool and any job.

        Idempotent.  The node stays out of circulation until a (hypothetical)
        repair returns it via the free list; recovery protocols treat the
        capacity as permanently lost for the rest of the run.
        """
        if node in self.failed_nodes:
            return
        self.failed_nodes.append(node)
        if node in self._free:
            self._free.remove(node)
        for job in self._jobs.values():
            if node in job.nodes:
                job.nodes.remove(node)

    # -- allocation -------------------------------------------------------------------

    def allocate(self, count: int, name: str = "job") -> Job:
        """Immediately claim ``count`` free nodes (no launch cost).

        Used for round-robin replica spawning, which on the real system rides
        on an existing launch.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if count > len(self._free):
            raise SimulationError(
                f"scheduler: {count} nodes requested for {name!r}, "
                f"{len(self._free)} free"
            )
        nodes = [self._free.pop(0) for _ in range(count)]
        job = Job(
            job_id=self._next_job_id,
            name=name,
            nodes=nodes,
            launched_at=self.env.now,
            launch_cost=0.0,
        )
        self._next_job_id += 1
        self._jobs[job.job_id] = job
        self._c_allocated.add(count)
        PERF.count_max(f"{self.label}.busy_peak", self.busy_nodes)
        return job

    def allocate_specific(self, nodes: List[Node], name: str = "job") -> Job:
        """Claim an explicit node set (used by topology-aware placement)."""
        if not nodes:
            raise ValueError("allocate_specific needs at least one node")
        for node in nodes:
            if node not in self._free:
                raise SimulationError(
                    f"scheduler: node {node.node_id} not free for {name!r}"
                )
        for node in nodes:
            self._free.remove(node)
        job = Job(
            job_id=self._next_job_id,
            name=name,
            nodes=list(nodes),
            launched_at=self.env.now,
            launch_cost=0.0,
        )
        self._next_job_id += 1
        self._jobs[job.job_id] = job
        self._c_allocated.add(len(nodes))
        PERF.count_max(f"{self.label}.busy_peak", self.busy_nodes)
        return job

    def launch(self, count: int, name: str = "job"):
        """Launch an MPI-style executable on ``count`` nodes via aprun.

        Returns a process event whose value is the :class:`Job`.  The launch
        cost is sampled from the aprun model and charged as simulated time.
        """
        return self.env.process(self._launch(count, name), name=f"aprun {name}")

    def _launch(self, count: int, name: str):
        cost = self.aprun.sample(self.rng)
        yield self.env.timeout(cost)
        job = self.allocate(count, name)
        job.launch_cost = cost
        return job

    def release(self, job: Job) -> None:
        """Return a job's nodes to the free pool."""
        if job.released:
            raise SimulationError(f"job {job.job_id} already released")
        job.released = True
        del self._jobs[job.job_id]
        self._free.extend(job.nodes)
        self._c_released.add(len(job.nodes))

    def release_nodes(self, job: Job, count: int) -> List[Node]:
        """Shrink a job by returning ``count`` of its nodes to the pool.

        Only valid for round-robin jobs; MPI jobs must be torn down whole
        (the aprun coalescing limitation).
        """
        if count <= 0 or count > len(job.nodes):
            raise SimulationError(
                f"cannot release {count} nodes from job with {len(job.nodes)}"
            )
        released = [job.nodes.pop() for _ in range(count)]
        self._free.extend(released)
        self._c_released.add(count)
        return released

    # -- fleet borrowing ---------------------------------------------------------------

    def adopt(self, nodes: List[Node]) -> None:
        """Absorb nodes loaned by the fleet arbiter into this pool.

        The nodes join the partition's node list, the free list, and the
        borrowed set, so ordinary ``allocate`` calls can claim them and
        the arbiter can later reclaim them with :meth:`expel`.
        """
        for node in nodes:
            if node in self.pool.nodes:
                raise SimulationError(
                    f"scheduler: node {node.node_id} already in pool {self.pool.name!r}"
                )
        for node in nodes:
            self.pool.nodes.append(node)
            self._free.append(node)
            self._borrowed.add(node)

    def expel(self, nodes: List[Node]) -> None:
        """Hand borrowed nodes back to the arbiter.  Nodes must be free."""
        for node in nodes:
            if node not in self._free:
                raise SimulationError(
                    f"scheduler: cannot expel busy node {node.node_id}"
                )
        for node in nodes:
            self._free.remove(node)
            self.pool.nodes.remove(node)
            self._borrowed.discard(node)

    def is_borrowed(self, node: Node) -> bool:
        return node in self._borrowed

    def free_borrowed(self) -> List[Node]:
        """Borrowed nodes currently idle — reclaimable by the arbiter."""
        return [node for node in self._free if node in self._borrowed]

    def occupancy(self) -> Dict[str, int]:
        """Point-in-time occupancy snapshot (for reports, not perf counters)."""
        return {
            "pool": len(self.pool),
            "free": self.free_nodes,
            "busy": self.busy_nodes,
            "failed": len(self.failed_nodes),
            "borrowed": len(self._borrowed),
        }
