"""Interconnect model: topology hops + NIC contention.

Model
-----
A transfer of ``n`` bytes from node *a* to node *b* takes

    ``software_overhead + base_latency + hops(a, b) * hop_latency
      + n / min(bw_a, bw_b)``

where the serialization term only starts once the transfer holds one send
channel on *a*'s NIC and one receive channel on *b*'s NIC.  Channel slots are
the contention points; the torus core is assumed over-provisioned relative to
injection bandwidth (true of the XT4 SeaStar for the message sizes here).

Hop counts come from shortest paths on a networkx topology graph and are
cached; a 3-D torus of a few thousand nodes stays cheap because we only
compute distances lazily per (src, dst) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import networkx as nx

from repro.simkernel import Environment
from repro.simkernel.errors import FaultError
from repro.cluster.node import Node


class TransferError(FaultError):
    """A transfer lost to an injected fault (dead endpoint, drop, partition).

    Subclasses :class:`FaultError`, so a fire-and-forget transfer failing
    this way is counted and swallowed by the environment rather than
    crashing the run; waiters see the exception normally and may retry.
    """


@dataclass
class TransferStats:
    """Aggregate transfer accounting for a :class:`Network` (monitoring)."""

    messages: int = 0
    bytes: float = 0.0
    busy_time: float = 0.0
    wait_time: float = 0.0
    per_pair: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record(self, src: int, dst: int, nbytes: float, busy: float, waited: float) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.busy_time += busy
        self.wait_time += waited
        key = (src, dst)
        self.per_pair[key] = self.per_pair.get(key, 0) + 1


class Network:
    """Point-to-point transfers over a topology graph.

    Parameters
    ----------
    env:
        Simulation environment.
    topology:
        networkx graph whose nodes are node ids.  ``None`` means a "flat"
        network (every pair is 1 hop).
    base_latency:
        Fixed wire latency per message, seconds.
    hop_latency:
        Additional latency per topology hop, seconds.
    software_overhead:
        Per-message CPU/software cost (matching, completion), seconds.
    """

    def __init__(
        self,
        env: Environment,
        topology: Optional[nx.Graph] = None,
        base_latency: float = 5e-6,
        hop_latency: float = 1e-7,
        software_overhead: float = 10e-6,
    ):
        self.env = env
        self.topology = topology
        self.base_latency = base_latency
        self.hop_latency = hop_latency
        self.software_overhead = software_overhead
        self.stats = TransferStats()
        self._hops_cache: Dict[Tuple[int, int], int] = {}
        #: optional :class:`repro.faults.NetworkFaultState`; when set, every
        #: transfer consults it for drops/partitions/degradations
        self.faults = None

    # -- path metrics -------------------------------------------------------------

    def hops(self, src_id: int, dst_id: int) -> int:
        """Topology hop count between two node ids (1 for a flat network)."""
        if src_id == dst_id:
            return 0
        if self.topology is None:
            return 1
        key = (src_id, dst_id) if src_id < dst_id else (dst_id, src_id)
        cached = self._hops_cache.get(key)
        if cached is None:
            cached = nx.shortest_path_length(self.topology, key[0], key[1])
            self._hops_cache[key] = cached
        return cached

    def latency(self, src: Node, dst: Node) -> float:
        """One-way message latency excluding serialization and queueing."""
        return (
            self.software_overhead
            + self.base_latency
            + self.hops(src.node_id, dst.node_id) * self.hop_latency
        )

    def ideal_transfer_time(self, src: Node, dst: Node, nbytes: float) -> float:
        """Contention-free duration of a transfer (for planning/scheduling)."""
        if src is dst:
            return self.software_overhead
        rate = min(src.nic.bandwidth, dst.nic.bandwidth)
        return self.latency(src, dst) + nbytes / rate

    # -- transfers ------------------------------------------------------------------

    def transfer(self, src: Node, dst: Node, nbytes: float):
        """Start a transfer; returns a process event that fires on completion."""
        return self.env.process(
            self._transfer(src, dst, nbytes),
            name=("xfer {}->{}", src.node_id, dst.node_id),
        )

    def _transfer(self, src: Node, dst: Node, nbytes: float):
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        self._check_endpoints(src, dst)
        if self.faults is not None:
            self.faults.transit_check(src, dst, nbytes)
        if src is dst:
            # Intra-node move: software overhead only.
            yield self.env.timeout(self.software_overhead)
            return nbytes

        start = self.env.now
        send_req = src.nic.send_channel.request()
        recv_req = dst.nic.recv_channel.request()
        yield send_req & recv_req
        waited = self.env.now - start
        try:
            duration = self.ideal_transfer_time(src, dst, nbytes)
            if self.faults is not None:
                duration *= self.faults.delay_factor(src, dst)
            yield self.env.timeout(duration)
        finally:
            src.nic.send_channel.release(send_req)
            dst.nic.recv_channel.release(recv_req)
        # A crash during serialization loses the message at the receiver.
        self._check_endpoints(src, dst)
        src.nic.bytes_sent += nbytes
        dst.nic.bytes_received += nbytes
        self.stats.record(src.node_id, dst.node_id, nbytes, duration, waited)
        return nbytes

    @staticmethod
    def _check_endpoints(src: Node, dst: Node) -> None:
        if src.failed:
            raise TransferError(f"source node {src.node_id} is down")
        if dst.failed:
            raise TransferError(f"destination node {dst.node_id} is down")

    def rdma_get(self, reader: Node, target: Node, nbytes: float):
        """Reader-initiated pull (RDMA GET), as used by DataTap/DataStager.

        Costs one extra control-message latency for the request, then the
        data flows target → reader.
        """
        return self.env.process(
            self._rdma_get(reader, target, nbytes),
            name=("rdma {}->{}", target.node_id, reader.node_id),
        )

    def _rdma_get(self, reader: Node, target: Node, nbytes: float):
        yield self.env.timeout(self.latency(reader, target))  # GET request
        result = yield self.transfer(target, reader, nbytes)
        return result
