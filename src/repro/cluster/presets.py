"""Machine presets matching the paper's evaluation platforms.

Franklin (NERSC): 9,572-node Cray XT4, quad-core AMD Budapest 2.3 GHz,
Portals/SeaStar2 interconnect, ~8 GB per node, 38,288 cores.

RedSky (Sandia): Sun Blade capacity cluster, 2,823 nodes, dual-socket Intel
Xeon 5570 (8 cores/node), 12 GB/node, QDR InfiniBand in a 3-D toroidal mesh.

The presets default to *scaled-down* node counts (enough for every experiment
in the paper, which uses at most 1024 simulation + 24 staging nodes) because
building a 9,572-node torus graph for every unit test is wasted work; pass
``full_scale=True`` to get the real machine size.
"""

from __future__ import annotations

from repro.simkernel import Environment
from repro.cluster.machine import Machine, torus_3d


def _torus_shape_for(count: int) -> tuple:
    """Smallest near-cubic 3-D torus holding at least ``count`` nodes."""
    side = 1
    while side**3 < count:
        side += 1
    return (side, side, side)


def franklin(
    env: Environment,
    num_nodes: int = 1100,
    full_scale: bool = False,
) -> Machine:
    """NERSC Franklin, Cray XT4.

    SeaStar2 injection bandwidth ~1.6 GB/s effective; MPI latency ~6-8 us on
    Portals.  Topology: 3-D torus.
    """
    if full_scale:
        num_nodes = 9572
    shape = _torus_shape_for(num_nodes)
    return Machine(
        env,
        num_nodes=num_nodes,
        cores_per_node=4,
        memory_per_node=8 * 2**30,
        nic_bandwidth=1.6 * 2**30,
        nic_streams=1,
        topology=torus_3d(shape),
        network_kwargs=dict(
            base_latency=6e-6,
            hop_latency=5e-8,
            software_overhead=8e-6,
        ),
        name="franklin",
    )


def redsky(
    env: Environment,
    num_nodes: int = 600,
    full_scale: bool = False,
) -> Machine:
    """Sandia RedSky, QDR InfiniBand 3-D toroidal mesh."""
    if full_scale:
        num_nodes = 2823
    shape = _torus_shape_for(num_nodes)
    return Machine(
        env,
        num_nodes=num_nodes,
        cores_per_node=8,
        memory_per_node=12 * 2**30,
        nic_bandwidth=3.2 * 2**30,  # QDR IB ~32 Gbit/s effective
        nic_streams=2,
        topology=torus_3d(shape),
        network_kwargs=dict(
            base_latency=1.5e-6,
            hop_latency=1e-7,
            software_overhead=5e-6,
        ),
        name="redsky",
    )
