"""Terminal visualization of fields and atomic configurations.

The pipelines this library manages end in visualization; this module is the
laptop-scale stand-in for the ParaView end of the pipeline: render a 2-D
scalar field (e.g. the S3D progress variable) or an atomic configuration
(e.g. the cracked plate, colored by CNA label or fragment id) as unicode
block art, suitable for the examples and for quick inspection in tests.

Pure functions over NumPy arrays; no terminal-control dependencies.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

#: Ten-step intensity ramp for scalar fields.
_RAMP = " .:-=+*#%@"

#: Glyphs for categorical labels (fragment ids, CNA classes); -1 = debris.
_CATEGORY_GLYPHS = "o*#%&+=x?abcdefgh"


def render_field(
    field: np.ndarray,
    width: int = 72,
    height: int = 20,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> str:
    """Render a 2-D scalar field as an ASCII intensity map.

    The field is resampled to ``height x width`` by block averaging; values
    map linearly onto a ten-character ramp between ``vmin`` and ``vmax``
    (defaulting to the field's own range).
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 2:
        raise ValueError("field must be 2-D")
    ny, nx = field.shape
    rows = np.linspace(0, ny, height + 1).astype(int)
    cols = np.linspace(0, nx, width + 1).astype(int)
    lo = float(field.min()) if vmin is None else vmin
    hi = float(field.max()) if vmax is None else vmax
    span = hi - lo
    lines = []
    for r in range(height):
        r0, r1 = rows[r], max(rows[r + 1], rows[r] + 1)
        chars = []
        for c in range(width):
            c0, c1 = cols[c], max(cols[c + 1], cols[c] + 1)
            value = field[r0:r1, c0:c1].mean()
            if span <= 0:
                level = 0
            else:
                level = int(round(
                    float(np.clip((value - lo) / span, 0, 1)) * (len(_RAMP) - 1)
                ))
            chars.append(_RAMP[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def render_atoms(
    positions: np.ndarray,
    labels: Optional[np.ndarray] = None,
    width: int = 72,
    height: int = 24,
) -> str:
    """Render 2-D atom positions as a character raster.

    Without labels, occupied cells show ``o``.  With integer labels, each
    category gets its own glyph (cycled), and label -1 (debris/unlabeled)
    renders as ``.``; where several atoms share a cell, the most common
    label wins.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions must be (n, 2)")
    if len(positions) == 0:
        return "\n".join(" " * width for _ in range(height))
    if labels is not None:
        labels = np.asarray(labels)
        if labels.shape != (len(positions),):
            raise ValueError("labels must have one entry per atom")

    mins = positions.min(axis=0)
    maxs = positions.max(axis=0)
    extent = np.maximum(maxs - mins, 1e-12)
    cols = np.clip(((positions[:, 0] - mins[0]) / extent[0] * (width - 1)).astype(int),
                   0, width - 1)
    # Terminal rows grow downward; flip y so the render is upright.
    rows = np.clip(((maxs[1] - positions[:, 1]) / extent[1] * (height - 1)).astype(int),
                   0, height - 1)

    grid: Dict[Tuple[int, int], Dict[int, int]] = {}
    for i in range(len(positions)):
        key = (int(rows[i]), int(cols[i]))
        label = int(labels[i]) if labels is not None else 0
        cell = grid.setdefault(key, {})
        cell[label] = cell.get(label, 0) + 1

    lines = []
    for r in range(height):
        chars = []
        for c in range(width):
            cell = grid.get((r, c))
            if not cell:
                chars.append(" ")
                continue
            label = max(cell, key=cell.get)
            if labels is None:
                chars.append("o")
            elif label < 0:
                chars.append(".")
            else:
                chars.append(_CATEGORY_GLYPHS[label % len(_CATEGORY_GLYPHS)])
        lines.append("".join(chars))
    return "\n".join(lines)


def legend(labels: Sequence[int]) -> str:
    """Glyph legend for the categorical renderer."""
    entries = []
    for label in sorted(set(int(l) for l in labels)):
        glyph = "." if label < 0 else _CATEGORY_GLYPHS[label % len(_CATEGORY_GLYPHS)]
        name = "debris" if label < 0 else f"#{label}"
        entries.append(f"{glyph}={name}")
    return "  ".join(entries)
