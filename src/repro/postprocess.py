"""Post-processing of offline-written pipeline data.

When the containers runtime prunes part of a pipeline, the stored data "will
be labeled with its data processing provenance.  This makes it possible to
keep track of which analytic operations have been performed on the data and
which operations need to be performed in the future" (Section III-D).

This module is that future: given the canonical pipeline order and a file's
provenance attribute, it computes the remaining actions, and — for real
BP-lite files holding atom data — runs the real SmartPointer kernels to
complete them.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adios.bp import read_bp, write_bp
from repro.adios.filesystem import FileRecord
from repro.lammps.crack import BOND_CUTOFF
from repro.smartpointer.bonds import bonds_adjacency
from repro.smartpointer.cna import common_neighbor_analysis
from repro.smartpointer.csym import central_symmetry

#: The canonical analysis order of the LAMMPS/SmartPointer pipeline.
PIPELINE_ORDER = ("helper", "bonds", "csym", "cna")


def remaining_actions(
    provenance: Sequence[str],
    pipeline: Sequence[str] = PIPELINE_ORDER,
) -> List[str]:
    """Actions still to apply, given what ``provenance`` says was done.

    Provenance entries must form a prefix-consistent subsequence of the
    pipeline (the runtime only ever applies actions in order); anything
    after the last applied action remains.  The csym/cna fork counts either
    branch as covering the labeling step.
    """
    applied = [p for p in provenance if p in pipeline]
    if not applied:
        return list(pipeline)
    last = max(pipeline.index(p) for p in applied)
    remaining = [p for p in pipeline[last + 1:]]
    # The CSym -> CNA fork: once CNA ran, CSym is moot and vice versa only
    # pre-crack; conservatively keep both unless one of them ran.
    if "cna" in applied and "csym" in remaining:
        remaining.remove("csym")
    return remaining


@dataclass
class BacklogEntry:
    """One offline file and the work it still needs."""

    name: str
    timestep: int
    provenance: List[str]
    remaining: List[str]


def analysis_backlog(
    records: Sequence[FileRecord],
    pipeline: Sequence[str] = PIPELINE_ORDER,
) -> List[BacklogEntry]:
    """Scan parallel-file-system records into a per-timestep work list.

    When several records exist for one timestep (e.g. a stranded chunk and a
    flushed buffer copy), the most-processed one wins.
    """
    best: Dict[int, BacklogEntry] = {}
    for record in records:
        provenance = list(record.attributes.get("provenance", []))
        timestep = record.attributes.get("timestep")
        if timestep is None:
            continue
        entry = BacklogEntry(
            name=record.name,
            timestep=int(timestep),
            provenance=provenance,
            remaining=remaining_actions(provenance, pipeline),
        )
        current = best.get(entry.timestep)
        if current is None or len(entry.remaining) < len(current.remaining):
            best[entry.timestep] = entry
    return [best[ts] for ts in sorted(best)]


# -- real-data completion ---------------------------------------------------------


def complete_bp_file(
    path: Path,
    out_path: Optional[Path] = None,
    cutoff: float = BOND_CUTOFF,
    num_neighbors: int = 6,
) -> Tuple[Path, List[str]]:
    """Apply the remaining SmartPointer actions to a real BP-lite file.

    The file must contain atom coordinates (``x``/``y`` columns, or an
    ``(n, dim)`` ``positions`` array).  Results are written next to the
    input (or to ``out_path``) with updated provenance.  Returns the output
    path and the list of actions applied.
    """
    variables, attributes = read_bp(path)
    provenance = list(attributes.get("provenance", []))
    todo = remaining_actions(provenance)
    if not todo:
        return path, []

    if "positions" in variables:
        positions = np.asarray(variables["positions"], dtype=np.float64)
    elif "x" in variables and "y" in variables:
        positions = np.column_stack([variables["x"], variables["y"]])
    else:
        raise ValueError(f"{path}: no atom coordinates to analyze")

    applied: List[str] = []
    outputs = dict(variables)
    pairs = None
    if "bonds" in outputs:
        pairs = np.asarray(outputs["bonds"], dtype=np.int64)

    for action in todo:
        if action == "helper":
            # Aggregation already happened by definition of a single file.
            applied.append(action)
        elif action == "bonds":
            pairs = bonds_adjacency(positions, cutoff, method="celllist")
            outputs["bonds"] = pairs.astype(np.int64)
            applied.append(action)
        elif action == "csym":
            csp = central_symmetry(positions, num_neighbors=num_neighbors,
                                   cutoff=cutoff * 1.1)
            outputs["csp"] = csp
            applied.append(action)
        elif action == "cna":
            if pairs is None:
                pairs = bonds_adjacency(positions, cutoff, method="celllist")
                outputs["bonds"] = pairs.astype(np.int64)
            outputs["cna_labels"] = common_neighbor_analysis(pairs, len(positions))
            applied.append(action)
        else:
            raise ValueError(f"unknown pipeline action {action!r}")

    new_attrs = dict(attributes)
    new_attrs["provenance"] = provenance + applied
    new_attrs["completed_offline"] = True
    target = out_path or path.with_suffix(".complete.bp")
    write_bp(target, outputs, new_attrs)
    return target, applied


def complete_directory(directory: Path, pattern: str = "*.bp") -> List[Tuple[Path, List[str]]]:
    """Complete every incomplete BP-lite file in ``directory``."""
    results = []
    for path in sorted(Path(directory).glob(pattern)):
        if ".complete." in path.name:
            continue
        if path.with_suffix(".complete.bp").exists():
            continue  # already completed on a previous run
        _, attributes = read_bp(path)
        if not remaining_actions(attributes.get("provenance", [])):
            continue
        results.append(complete_bp_file(path))
    return results
