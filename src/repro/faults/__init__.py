"""Cluster-wide fault injection, failure detection, and recovery support.

The paper's containers are *actively managed*; this package makes the
management adversarial.  It provides:

FaultPlan
    A seeded, deterministic schedule of injectable faults — node crashes
    and slow-downs, link degradation/partition windows, probabilistic
    message drops — plus protocol-scripted faults (the D2T transaction
    behaviours).  Identical seeds replay identical fault sequences.
ClusterFaultInjector
    Walks a plan's timed events against live :mod:`repro.cluster` state.
NetworkFaultState
    Per-transfer evaluation of the plan's link windows, hung on
    ``Network.faults``.
FailureDetector / HeartbeatSender / HeartbeatMonitor
    Lease-based detection over the EVPath control plane: replicas beat to
    their LocalManager, LocalManagers' METRIC_REPORTs over the monitoring
    overlay double as their beats to the GlobalManager.  False positives
    are accounted, not hidden.

Recovery itself — the REPLACE protocol respawning lost replicas from the
spare pool — lives with the other container protocols in
:mod:`repro.containers.recovery`.
"""

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, WINDOWED_KINDS
from repro.faults.netstate import NetworkFaultState
from repro.faults.detect import FailureDetector, HeartbeatMonitor, HeartbeatSender
from repro.faults.injector import ClusterFaultInjector

__all__ = [
    "ClusterFaultInjector",
    "FailureDetector",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "HeartbeatMonitor",
    "HeartbeatSender",
    "NetworkFaultState",
    "WINDOWED_KINDS",
]
