"""Link-level fault windows, consulted by the network on every transfer.

:class:`NetworkFaultState` is the object hung on
:attr:`repro.cluster.network.Network.faults`.  It turns the LINK_* and
MESSAGE_DROP events of a :class:`~repro.faults.plan.FaultPlan` into
time-windowed predicates: partitions make affected transfers fail with
:class:`~repro.cluster.network.TransferError`, degradations stretch their
serialization time, drops lose messages with the scripted probability from
a seeded RNG (derived from the plan seed, so runs replay identically).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.simkernel import Environment
from repro.cluster.network import TransferError
from repro.cluster.node import Node
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan


class NetworkFaultState:
    """Evaluates a plan's link-fault windows against live transfers."""

    def __init__(self, env: Environment, plan: FaultPlan):
        self.env = env
        self.plan = plan
        # Derived stream: independent of any other consumer of the plan seed.
        self.rng = np.random.default_rng((plan.seed, 0x11FA))
        self._partitions = plan.events_of(FaultKind.LINK_PARTITION)
        self._degradations = plan.events_of(FaultKind.LINK_DEGRADE)
        self._drops = plan.events_of(FaultKind.MESSAGE_DROP)
        #: transfers refused by an active partition window
        self.partitioned = 0
        #: messages lost to an active drop window
        self.dropped = 0

    @staticmethod
    def _matches(event: FaultEvent, src_id: int, dst_id: int) -> bool:
        if not event.targets:
            return True  # fabric-wide window
        return src_id in event.targets or dst_id in event.targets

    def _active(
        self, windows: Tuple[FaultEvent, ...], src_id: int, dst_id: int
    ) -> Iterator[FaultEvent]:
        now = self.env.now
        for event in windows:
            if event.time <= now < event.end and self._matches(event, src_id, dst_id):
                yield event

    # -- hooks called by Network -------------------------------------------------

    def transit_check(self, src: Node, dst: Node, nbytes: float) -> None:
        """Raise :class:`TransferError` if this transfer is lost to a fault."""
        for event in self._active(self._partitions, src.node_id, dst.node_id):
            self.partitioned += 1
            raise TransferError(
                f"partition {event.targets or 'fabric-wide'}: "
                f"{src.node_id} -> {dst.node_id} unreachable"
            )
        for event in self._active(self._drops, src.node_id, dst.node_id):
            if self.rng.random() < event.severity:
                self.dropped += 1
                raise TransferError(
                    f"message {src.node_id} -> {dst.node_id} dropped "
                    f"(p={event.severity})"
                )

    def delay_factor(self, src: Node, dst: Node) -> float:
        """Serialization-time multiplier from active degradation windows."""
        factor = 1.0
        for event in self._active(self._degradations, src.node_id, dst.node_id):
            factor *= event.severity
        return factor
