"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` is the single vocabulary for injected failure in this
repository: timed cluster faults (node crashes and slow-downs, link
degradation and partition windows, probabilistic message drops) plus
*scripted* faults keyed by protocol identity (the D2T transaction layer's
abort/crash behaviours, see :mod:`repro.transactions.failures`).

Plans are pure data: building one schedules nothing.  The
:class:`~repro.faults.injector.ClusterFaultInjector` walks the timed events
against a live cluster, and :class:`~repro.faults.netstate.NetworkFaultState`
evaluates the link windows per transfer.  Everything a plan will do is fixed
by its construction arguments, so an identical seed replays the identical
fault sequence — :meth:`FaultPlan.signature` hashes the full schedule to let
tests assert exactly that.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class FaultKind(Enum):
    """The injectable cluster fault kinds."""

    NODE_CRASH = "node_crash"
    NODE_SLOWDOWN = "node_slowdown"
    LINK_DEGRADE = "link_degrade"
    LINK_PARTITION = "link_partition"
    MESSAGE_DROP = "message_drop"


#: kinds that act over a finite window (``duration`` must be positive);
#: a NODE_CRASH is permanent for the rest of the run
WINDOWED_KINDS = (
    FaultKind.NODE_SLOWDOWN,
    FaultKind.LINK_DEGRADE,
    FaultKind.LINK_PARTITION,
    FaultKind.MESSAGE_DROP,
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``targets`` holds the node ids involved; for link kinds an empty tuple
    means the whole fabric.  ``severity`` is kind-specific: a compute/delay
    multiplier for slow-downs and degradations, a drop probability for
    MESSAGE_DROP, unused for crashes and partitions.
    """

    time: float
    kind: FaultKind
    targets: Tuple[int, ...] = ()
    duration: float = 0.0
    severity: float = 1.0

    def key(self) -> tuple:
        """Deterministic ordering/signature key."""
        return (self.time, self.kind.value, self.targets, self.duration, self.severity)

    @property
    def end(self) -> float:
        return self.time + self.duration


class FaultPlan:
    """A seeded, deterministic schedule of injectable faults.

    Timed events are added with :meth:`add` (or the per-kind conveniences)
    and read back, sorted, via :attr:`events`.  Scripted faults — behaviours
    keyed by protocol identity rather than by time — are registered with
    :meth:`script` and consumed with :meth:`lookup`; each domain constrains
    its legal behaviours via :data:`SCRIPT_DOMAINS`.
    """

    #: legal behaviours per scripted-fault domain
    SCRIPT_DOMAINS: Dict[str, Tuple[str, ...]] = {
        "txn": ("abort", "crash", "crash_after_vote"),
    }

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._events: List[FaultEvent] = []
        self._scripted: Dict[Tuple[str, object], str] = {}
        #: scripted (domain, key) pairs whose behaviour was looked up
        self.triggered = set()

    # -- timed events ----------------------------------------------------------

    def add(
        self,
        kind: FaultKind,
        time: float,
        targets: Iterable[int] = (),
        duration: float = 0.0,
        severity: float = 1.0,
    ) -> FaultEvent:
        """Validate and append one timed fault event."""
        targets = tuple(int(t) for t in targets)
        if time < 0:
            raise ValueError(f"fault time must be >= 0, got {time}")
        if kind in (FaultKind.NODE_CRASH, FaultKind.NODE_SLOWDOWN) and not targets:
            raise ValueError(f"{kind.value} needs at least one target node")
        if kind in WINDOWED_KINDS and duration <= 0:
            raise ValueError(f"{kind.value} needs a positive duration")
        if kind is FaultKind.NODE_CRASH and duration != 0:
            raise ValueError("node_crash is permanent; duration must be 0")
        if kind in (FaultKind.NODE_SLOWDOWN, FaultKind.LINK_DEGRADE) and severity <= 1:
            raise ValueError(f"{kind.value} severity is a multiplier > 1, got {severity}")
        if kind is FaultKind.MESSAGE_DROP and not 0 < severity <= 1:
            raise ValueError(f"message_drop severity is a probability in (0, 1], got {severity}")
        event = FaultEvent(float(time), kind, targets, float(duration), float(severity))
        self._events.append(event)
        return event

    # per-kind conveniences

    def node_crash(self, time: float, node_id: int) -> FaultEvent:
        return self.add(FaultKind.NODE_CRASH, time, (node_id,))

    def node_slowdown(self, time: float, node_id: int, factor: float,
                      duration: float) -> FaultEvent:
        return self.add(FaultKind.NODE_SLOWDOWN, time, (node_id,),
                        duration=duration, severity=factor)

    def link_degrade(self, time: float, targets: Iterable[int], factor: float,
                     duration: float) -> FaultEvent:
        return self.add(FaultKind.LINK_DEGRADE, time, targets,
                        duration=duration, severity=factor)

    def link_partition(self, time: float, targets: Iterable[int],
                       duration: float) -> FaultEvent:
        return self.add(FaultKind.LINK_PARTITION, time, targets, duration=duration)

    def message_drop(self, time: float, targets: Iterable[int], probability: float,
                     duration: float) -> FaultEvent:
        return self.add(FaultKind.MESSAGE_DROP, time, targets,
                        duration=duration, severity=probability)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """All timed events in deterministic (time-major) order."""
        return tuple(sorted(self._events, key=FaultEvent.key))

    def events_of(self, kind: FaultKind) -> Tuple[FaultEvent, ...]:
        return tuple(ev for ev in self.events if ev.kind is kind)

    def subset(self, events: Iterable[FaultEvent]) -> "FaultPlan":
        """A new plan with the same seed/scripted faults but only ``events``.

        The :mod:`repro.dst` shrinker uses this to minimize a violating
        schedule: events are copied verbatim (they are frozen dataclasses),
        so the subset replays bit-identically minus the dropped faults.
        """
        plan = FaultPlan(seed=self.seed)
        plan._events = list(events)
        plan._scripted = dict(self._scripted)
        return plan

    def as_dicts(self) -> List[dict]:
        """Timed events as JSON-ready dicts (the DST repro-report format)."""
        return [
            {
                "time": ev.time,
                "kind": ev.kind.value,
                "targets": list(ev.targets),
                "duration": ev.duration,
                "severity": ev.severity,
            }
            for ev in self.events
        ]

    # -- random generation -----------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        node_ids: Sequence[int],
        horizon: float,
        crashes: int = 1,
        slowdowns: int = 0,
        degradations: int = 0,
        drops: int = 0,
    ) -> "FaultPlan":
        """Draw a plan from a seeded RNG: same arguments, same plan.

        Event times land in the middle 80% of ``horizon`` so faults hit
        steady state rather than startup/drain; targets are drawn without
        replacement where possible.
        """
        if not node_ids:
            raise ValueError("need at least one candidate node")
        rng = np.random.default_rng(seed)
        plan = cls(seed=seed)
        pool = sorted(int(n) for n in node_ids)

        def draw_time() -> float:
            return float(rng.uniform(0.1 * horizon, 0.9 * horizon))

        crash_targets = rng.choice(pool, size=min(crashes, len(pool)), replace=False)
        for node_id in crash_targets:
            plan.node_crash(draw_time(), int(node_id))
        for _ in range(slowdowns):
            plan.node_slowdown(
                draw_time(), int(rng.choice(pool)),
                factor=float(rng.uniform(1.5, 4.0)),
                duration=float(rng.uniform(0.05, 0.2) * horizon),
            )
        for _ in range(degradations):
            plan.link_degrade(
                draw_time(), (int(rng.choice(pool)),),
                factor=float(rng.uniform(2.0, 8.0)),
                duration=float(rng.uniform(0.05, 0.2) * horizon),
            )
        for _ in range(drops):
            plan.message_drop(
                draw_time(), (int(rng.choice(pool)),),
                probability=float(rng.uniform(0.05, 0.5)),
                duration=float(rng.uniform(0.02, 0.1) * horizon),
            )
        return plan

    @classmethod
    def burst(
        cls,
        seed: int,
        node_ids: Sequence[int],
        start: float,
        duration: float,
        factor: float,
    ) -> "FaultPlan":
        """A simultaneous slowdown window across every target node.

        The overload shape: all targets slow by ``factor`` for the same
        ``[start, start + duration)`` window — a load spike that saturates
        a stage at once rather than degrading one replica.
        """
        if not node_ids:
            raise ValueError("need at least one target node")
        if factor <= 1:
            raise ValueError(f"burst factor is a multiplier > 1, got {factor}")
        plan = cls(seed=seed)
        for node_id in sorted(int(n) for n in node_ids):
            plan.node_slowdown(start, node_id, factor=factor, duration=duration)
        return plan

    @classmethod
    def ramp(
        cls,
        seed: int,
        node_ids: Sequence[int],
        start: float,
        duration: float,
        peak_factor: float,
        rungs: int = 3,
    ) -> "FaultPlan":
        """An escalating slowdown: ``rungs`` back-to-back windows of rising
        severity, peaking at ``peak_factor`` — overload that builds rather
        than arriving all at once."""
        if not node_ids:
            raise ValueError("need at least one target node")
        if peak_factor <= 1:
            raise ValueError(f"ramp peak_factor is a multiplier > 1, got {peak_factor}")
        if rungs < 1:
            raise ValueError(f"ramp needs at least one rung, got {rungs}")
        plan = cls(seed=seed)
        window = duration / rungs
        for i in range(rungs):
            factor = 1.0 + (peak_factor - 1.0) * (i + 1) / rungs
            for node_id in sorted(int(n) for n in node_ids):
                plan.node_slowdown(
                    start + i * window, node_id, factor=factor, duration=window
                )
        return plan

    # -- scripted faults -------------------------------------------------------

    def script(self, domain: str, key, behaviour: str) -> None:
        """Register a scripted fault: ``behaviour`` fires when ``key`` is hit.

        Raises ``ValueError`` for an unknown domain or a behaviour outside
        the domain's vocabulary (matching the legacy FailureInjector
        contract).
        """
        try:
            valid = self.SCRIPT_DOMAINS[domain]
        except KeyError:
            raise ValueError(f"unknown scripted-fault domain {domain!r}") from None
        if behaviour not in valid:
            raise ValueError(
                f"unknown behaviour {behaviour!r} for domain {domain!r}; "
                f"valid: {valid}"
            )
        self._scripted[(domain, key)] = behaviour

    def lookup(self, domain: str, key) -> Optional[str]:
        """Behaviour scripted for ``key``, or ``None``; records the trigger."""
        behaviour = self._scripted.get((domain, key))
        if behaviour is not None:
            self.triggered.add((domain, key))
        return behaviour

    def scripted(self, domain: str) -> Dict[object, str]:
        """All scripted faults registered under ``domain``."""
        return {key: b for (dom, key), b in self._scripted.items() if dom == domain}

    # -- identity ---------------------------------------------------------------

    def signature(self) -> str:
        """SHA-256 over the full schedule; equal plans hash equal."""
        hasher = hashlib.sha256()
        hasher.update(repr(self.seed).encode())
        for event in self.events:
            hasher.update(repr(event.key()).encode())
        for item in sorted(self._scripted.items(), key=repr):
            hasher.update(repr(item).encode())
        return hasher.hexdigest()

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed} events={len(self._events)} "
            f"scripted={len(self._scripted)}>"
        )
