"""Lease-based failure detection over the EVPath control plane.

Detection is hierarchical, mirroring the container management tree:
replicas send HEARTBEAT messages to their LocalManager's monitor endpoint
(:class:`HeartbeatSender` → :class:`HeartbeatMonitor`), and LocalManagers'
periodic METRIC_REPORTs over the monitoring overlay double as their
heartbeat to the GlobalManager (the GlobalManager calls
:meth:`FailureDetector.beat` on receipt, so manager liveness rides the
existing overlay for free).

A member whose lease goes silent past ``lease_timeout`` is *suspected* and
the detector's ``on_suspect`` callback fires — recovery decides what to do.
Suspicion is not conviction: a later beat from a suspected member clears it
and increments :attr:`FailureDetector.false_positives` (slow links and
degradation windows make this reachable, which is why the accounting
exists).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.simkernel import Environment, Interrupt
from repro.simkernel.errors import FaultError
from repro.cluster.node import Node
from repro.evpath.channel import Messenger
from repro.evpath.messages import Message, MessageType
from repro.perf.registry import REGISTRY


class FailureDetector:
    """Tracks leases for a set of members and suspects the silent ones.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Label for processes and reporting.
    lease_timeout:
        Seconds of silence after which a member is suspected.
    check_interval:
        Lease-scan period; defaults to a quarter of the timeout.
    on_suspect:
        Callback ``fn(member)`` invoked when a member is first suspected.
    suspend_when:
        Optional predicate; while it returns True (e.g. the detector's own
        host node is down) scanning pauses and, on resume, every lease is
        re-granted so the outage itself does not convict every member.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        lease_timeout: float,
        check_interval: Optional[float] = None,
        on_suspect: Optional[Callable[[str], None]] = None,
        suspend_when: Optional[Callable[[], bool]] = None,
    ):
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive, got {lease_timeout}")
        self.env = env
        self.name = name
        self.lease_timeout = float(lease_timeout)
        self.check_interval = float(check_interval or lease_timeout / 4.0)
        self.on_suspect = on_suspect
        self.suspend_when = suspend_when
        self._last_beat: Dict[str, float] = {}
        self.suspected = set()
        #: members suspected and later heard from again
        self.false_positives = 0
        #: total beats accepted
        self.beats = 0
        self._proc = None
        self._was_suspended = False

    # -- membership --------------------------------------------------------------

    def watch(self, member: str) -> None:
        """Start tracking ``member``; grants a fresh lease."""
        self._last_beat[member] = self.env.now

    def unwatch(self, member: str) -> None:
        """Stop tracking ``member`` (e.g. it was retired deliberately)."""
        self._last_beat.pop(member, None)
        self.suspected.discard(member)

    @property
    def members(self):
        return sorted(self._last_beat)

    # -- beats -------------------------------------------------------------------

    def beat(self, member: str) -> None:
        """Record a heartbeat; clears (and counts) a wrongful suspicion."""
        if member not in self._last_beat:
            return  # not ours to track (already unwatched)
        if member in self.suspected:
            self.suspected.discard(member)
            self.false_positives += 1
            REGISTRY.count("faults.false_positives")
        self._last_beat[member] = self.env.now
        self.beats += 1
        REGISTRY.count("faults.heartbeats_received")

    # -- scanning ----------------------------------------------------------------

    def start(self) -> None:
        if self._proc is None:
            self._proc = self.env.process(
                self._check_loop(), name=f"detector {self.name}"
            )

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None

    def _check_loop(self):
        while True:
            try:
                yield self.env.timeout(self.check_interval)
            except Interrupt:
                return
            if self.suspend_when is not None and self.suspend_when():
                self._was_suspended = True
                continue
            if self._was_suspended:
                # Back from an outage of our own: re-grant every lease so the
                # outage window does not read as everyone else's death.
                self._was_suspended = False
                for member in self._last_beat:
                    self._last_beat[member] = self.env.now
                continue
            now = self.env.now
            for member in self.members:
                if member in self.suspected:
                    continue
                if now - self._last_beat[member] > self.lease_timeout:
                    self.suspected.add(member)
                    REGISTRY.count("faults.suspects")
                    if self.on_suspect is not None:
                        self.on_suspect(member)


class HeartbeatSender:
    """Periodic HEARTBEAT from a member to a monitor endpoint.

    The send is fire-and-forget: if the member's node is down the loop
    idles (a dead node cannot inject), and if the *monitor's* node is down
    the transfer fails with a :class:`FaultError` that the environment
    swallows — silence at the detector is exactly the failure signal.
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        member: str,
        node: Node,
        monitor_endpoint: str,
        interval: float,
    ):
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval}")
        self.env = env
        self.messenger = messenger
        self.member = member
        self.node = node
        self.monitor_endpoint = monitor_endpoint
        self.interval = float(interval)
        self.sent = 0
        self._proc = None

    def start(self) -> None:
        if self._proc is None:
            self._proc = self.env.process(
                self._loop(), name=f"heartbeat {self.member}"
            )

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None

    def _loop(self):
        while True:
            try:
                yield self.env.timeout(self.interval)
            except Interrupt:
                return
            if self.node.failed:
                continue  # a dead node sends nothing
            self.sent += 1
            REGISTRY.count("faults.heartbeats_sent")
            self.messenger.send(
                self.node,
                self.monitor_endpoint,
                Message(MessageType.HEARTBEAT, sender=self.member,
                        payload={"member": self.member}),
            )


class HeartbeatMonitor:
    """Owns a dedicated endpoint whose HEARTBEAT receipts feed a detector.

    Kept separate from the manager's control endpoint so a long-running
    control protocol (an increase mid-flight) cannot head-of-line block
    heartbeats into a false suspicion.
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        endpoint_name: str,
        node: Node,
        detector: FailureDetector,
    ):
        self.env = env
        self.messenger = messenger
        self.detector = detector
        self.endpoint = messenger.endpoint(node, endpoint_name)
        self._proc = env.process(self._recv_loop(), name=f"hb-monitor {endpoint_name}")

    def rehost(self, node: Node) -> None:
        """Re-pin the monitor endpoint after its host was replaced."""
        self.endpoint.node = node

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None
        self.messenger.unregister(self.endpoint.name)

    def _recv_loop(self):
        while True:
            try:
                msg = yield self.endpoint.recv(MessageType.HEARTBEAT)
            except Interrupt:
                return
            self.detector.beat(msg.payload["member"])
