"""Walks a fault plan's timed events against a live cluster.

The injector is the only place a :class:`~repro.faults.plan.FaultPlan`
touches simulation state: node crashes flip :attr:`Node.failed` (making
every transfer touching the node raise
:class:`~repro.cluster.network.TransferError`), quarantine the node in the
scheduler, and invoke registered crash handlers (the pipeline registers one
that kills co-located replicas); slow-downs stretch compute for their
window.  Link-level kinds need no action here — the
:class:`~repro.faults.netstate.NetworkFaultState` evaluates their windows
per transfer — but they are still recorded in :attr:`trace` so an identical
seed provably produces an identical event trace.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.simkernel import Environment
from repro.cluster.node import Node
from repro.cluster.scheduler import BatchScheduler
from repro.faults.plan import FaultKind, FaultPlan
from repro.perf.registry import REGISTRY


class ClusterFaultInjector:
    """Applies a plan's timed faults to nodes and the scheduler."""

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        nodes: Iterable[Node],
        scheduler: Optional[BatchScheduler] = None,
    ):
        self.env = env
        self.plan = plan
        self.scheduler = scheduler
        self._nodes: Dict[int, Node] = {n.node_id: n for n in nodes}
        self._crash_handlers: List[Callable[[Node], None]] = []
        #: applied events as ``(time, kind, targets, duration, severity)``
        #: tuples — the deterministic event trace
        self.trace: List[Tuple] = []
        self._proc = None

    def on_crash(self, handler: Callable[[Node], None]) -> None:
        """Register ``handler(node)`` to run at the instant a node crashes.

        Handlers model the physical consequence of the crash (killing the
        processes resident on the node); detection and recovery must *not*
        hang off these — they only learn of the death from missed
        heartbeats.
        """
        self._crash_handlers.append(handler)

    def start(self):
        """Start walking the plan; returns the injector process."""
        if self._proc is None:
            self._proc = self.env.process(self._run(), name="fault-injector")
        return self._proc

    def _run(self):
        for event in self.plan.events:
            if event.time > self.env.now:
                yield self.env.timeout(event.time - self.env.now)
            self._apply(event)

    def _apply(self, event) -> None:
        self.trace.append(
            (self.env.now, event.kind.value, event.targets, event.duration,
             event.severity)
        )
        if event.kind is FaultKind.NODE_CRASH:
            for node_id in event.targets:
                self._crash(self._node(node_id))
        elif event.kind is FaultKind.NODE_SLOWDOWN:
            for node_id in event.targets:
                node = self._node(node_id)
                node.slow_factor = event.severity
                self.env.process(
                    self._end_slowdown(node, event.duration),
                    name=f"slowdown-end@{node.node_id}",
                )
            REGISTRY.count("faults.slowdowns", len(event.targets))
        # LINK_DEGRADE / LINK_PARTITION / MESSAGE_DROP are window-based and
        # evaluated by NetworkFaultState; tracing them here is enough.

    def _crash(self, node: Node) -> None:
        if node.failed:
            return
        node.fail()
        if self.scheduler is not None:
            self.scheduler.mark_failed(node)
        REGISTRY.count("faults.node_crashes")
        for handler in self._crash_handlers:
            handler(node)

    def _end_slowdown(self, node: Node, duration: float):
        yield self.env.timeout(duration)
        if not node.failed:
            node.slow_factor = 1.0
            self.trace.append((self.env.now, "node_slowdown_end",
                               (node.node_id,), 0.0, 1.0))

    def _node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ValueError(
                f"fault plan targets unknown node {node_id}; "
                f"known: {sorted(self._nodes)}"
            ) from None
