"""Crash recovery: the REPLACE protocol and graceful degradation.

The :class:`RecoveryManager` sits beside the global manager and turns
failure *suspicion* into repaired capacity:

* **replica level** — local managers raise REPLICA_SUSPECT when a replica's
  heartbeat lease lapses (:mod:`repro.faults.detect`).  Recovery convicts
  the suspect against the node-health view, acquires a replacement node
  (spare pool first, stealing per the existing headroom policy when the
  pool is empty), and runs a REPLACE round with the local manager — which
  respawns the replica, re-runs state migration for stateful components,
  re-registers the DataTap reader endpoints, and redelivers unacked chunks
  from upstream custody.

* **manager level** — local-manager liveness rides the existing monitoring
  path: every METRIC_REPORT doubles as that manager's heartbeat.  A silent
  manager whose node really died is *rehosted* onto a surviving replica
  node (or the global manager's node), after which its own replica detector
  resumes and surfaces the co-hosted replica crash through the normal path.

* **degradation** — when no replacement node can be found, or the local
  manager is unreachable, the container goes offline through the existing
  Figure 9 path: buffered chunks flush to disk with provenance and future
  upstream output falls back to ADIOS files, so data is preserved even when
  capacity is not.

MTTR (suspicion to recovery-complete) lands in the shared perf registry as
a simulated-time duration, next to the protocol counters, so the chaos
bench reuses the PR 1 report machinery unchanged.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.simkernel import Environment, Interrupt
from repro.simkernel.errors import FaultError
from repro.controlplane import ProtocolAbort, ProtocolExit, protocols
from repro.evpath.channel import Messenger, RequestTimeout
from repro.evpath.messages import Message, MessageType
from repro.faults.detect import FailureDetector
from repro.perf.registry import REGISTRY

if TYPE_CHECKING:
    from repro.containers.global_manager import GlobalManager


class RecoveryManager:
    """Consumes failure suspicions and drives the recovery protocols."""

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        global_manager: "GlobalManager",
        manager_lease_timeout: Optional[float] = None,
        request_timeout: float = 60.0,
    ):
        self.env = env
        self.messenger = messenger
        self.gm = global_manager
        self.request_timeout = request_timeout
        #: completed recovery actions, in order
        self.replacements: List[dict] = []
        #: failover hook: called with the container name after a REPLACE
        #: commits (the replay-after-recovery trigger); None = no-op
        self.on_replace_complete = None
        #: containers degraded to offline because recovery was impossible
        self.degraded: List[str] = []
        #: protocol rounds spent on recovery (replace, steal, degrade)
        self.rounds = 0
        #: suspicions refused because the replica turned out alive
        self.refused = 0

        self.manager_detector: Optional[FailureDetector] = None
        if manager_lease_timeout is not None:
            self.manager_detector = FailureDetector(
                env,
                "gm-managers",
                manager_lease_timeout,
                on_suspect=self._on_manager_suspect,
                suspend_when=lambda: self.gm.node.failed,
            )
            for name in self.gm.locals:
                self.manager_detector.watch(name)
            self.manager_detector.start()

        self.gm.recovery = self
        self._proc = env.process(self._run(), name="gm-recovery")

    # -- liveness feed ---------------------------------------------------------------

    def note_report(self, container: str) -> None:
        """A metric report arrived: beat the manager-level lease."""
        if self.manager_detector is None:
            return
        if container not in self.manager_detector.members:
            self.manager_detector.watch(container)
        self.manager_detector.beat(container)

    # -- suspicion intake --------------------------------------------------------------

    def _run(self):
        while True:
            try:
                msg = yield self.gm.endpoint.recv(MessageType.REPLICA_SUSPECT)
            except Interrupt:
                return
            self.env.process(
                self._replace_replica(dict(msg.payload)),
                name=f"replace:{msg.payload.get('replica')}",
            )

    def _on_manager_suspect(self, name: str) -> None:
        self.env.process(self._recover_manager(name), name=f"rehost:{name}")

    # -- replica recovery --------------------------------------------------------------

    def _replace_replica(self, payload: dict):
        gm = self.gm
        name = payload["container"]
        manager = gm.locals.get(name)
        if manager is None:
            return
        container = manager.container
        dead = next(
            (r for r in container.replicas if r.name == payload["replica"]), None
        )
        if dead is None:
            return  # already replaced (duplicate suspicion)
        if not dead.crashed and not dead.node.failed:
            # Convict against the node-health oracle: a live replica that
            # merely went quiet (slow link, degradation window) is left
            # alone — its next heartbeat clears the suspicion upstream.
            self.refused += 1
            REGISTRY.count("faults.replace_refused")
            return
        suspected_at = payload.get("suspected_at", self.env.now)
        request = gm.control_lock.request()
        yield request
        try:
            yield gm.engine.execute(
                protocols.GM_REPLACE,
                subject=name,
                data={
                    "rm": self,
                    "gm": gm,
                    "name": name,
                    "manager": manager,
                    "dead": dead,
                    "payload": payload,
                    "suspected_at": suspected_at,
                },
            )
        finally:
            gm.control_lock.release(request)

    # GM_REPLACE round bodies ----------------------------------------------------------

    def _rr_recheck(self, ctx) -> None:
        """A concurrent repair may have removed the suspect already."""
        manager = ctx["manager"]
        if ctx["dead"] not in manager.container.replicas:
            raise ProtocolExit()

    def _rr_acquire(self, ctx):
        """Find a replacement node: spare pool first, then steal."""
        gm = self.gm
        name = ctx["name"]
        node = None
        method = None
        if gm.scheduler.free_nodes > 0:
            job = gm.scheduler.allocate(1, name=f"replace:{name}")
            node = job.nodes[0]
            method = "spare"
        else:
            donor = self._pick_donor(name)
            if donor is not None:
                self.rounds += 1
                freed = yield gm.decrease(donor, 1)
                freed = [n for n in freed if not n.failed]
                if freed:
                    node = freed[0]
                    method = f"steal:{donor}"
        if node is None:
            raise ProtocolAbort("no replacement node")
        ctx["node"] = node
        ctx["method"] = method

    def _rr_return_node(self, ctx) -> None:
        """Compensation: an acquired-but-unused node rejoins the pool."""
        self.gm.scheduler._free.append(ctx["node"])

    def _rr_request(self, ctx):
        """Run the REPLACE round against the local manager."""
        gm = self.gm
        self.rounds += 1
        replace = Message(
            MessageType.REPLACE_REQUEST,
            sender="global-mgr",
            payload={"replica": ctx["payload"]["replica"], "node": ctx["node"]},
        )
        try:
            reply = yield self.messenger.request(
                gm.node, gm.endpoint, ctx["manager"].endpoint.name, replace,
                timeout=self.request_timeout,
            )
        except (RequestTimeout, FaultError):
            # The local manager is unreachable (its node probably died
            # too).  The acquire round's compensation gives the node back;
            # a manager rehost may later revive the container.
            raise ProtocolAbort("manager unreachable")
        ctx["reply"] = reply

    def _rr_commit(self, ctx) -> None:
        gm = self.gm
        name = ctx["name"]
        method = ctx["method"]
        replica = ctx["payload"]["replica"]
        mttr = self.env.now - ctx["suspected_at"]
        REGISTRY.record_duration("faults.mttr_detected", mttr)
        REGISTRY.count("faults.replacements")
        self.replacements.append(
            {
                "type": "replace",
                "container": name,
                "replica": replica,
                "node_id": ctx["node"].node_id,
                "method": method,
                "suspected_at": ctx["suspected_at"],
                "completed_at": self.env.now,
                "redelivered": ctx["reply"].payload.get("redelivered", 0),
            }
        )
        gm.actions_taken.append(f"replace {name}/{replica} via {method}")
        gm.telemetry.mark(self.env.now, f"replace {name} via {method}")
        # Failover hook: a completed replacement means the consumer is back,
        # so spilled history (if any) can be replayed to it.
        if self.on_replace_complete is not None:
            self.on_replace_complete(name)

    def _rr_degrade(self, ctx):
        """Abort hook: no repair possible — Figure 9 disk fallback."""
        yield from self._degrade(ctx["name"], ctx.abort.reason)

    def _pick_donor(self, exclude: str) -> Optional[str]:
        """Donor with the most headroom, per the existing steal policy."""
        best, best_headroom = None, 0
        for name, manager in sorted(self.gm.locals.items()):
            container = manager.container
            if name == exclude or container.offline or not container.active:
                continue
            if container.units <= 1:
                continue
            headroom = manager.headroom(self.gm.sla_interval)
            if headroom > best_headroom:
                best, best_headroom = name, headroom
        return best

    def _degrade(self, name: str, reason: str):
        """Offline + disk fallback (the Fig 9 path) when recovery cannot."""
        self.rounds += 1
        REGISTRY.count("faults.degraded")
        yield self.gm.take_offline(name)
        self.degraded.append(name)
        self.gm.actions_taken.append(f"replace {name} degraded to offline ({reason})")
        self.replacements.append(
            {
                "type": "degrade",
                "container": name,
                "reason": reason,
                "completed_at": self.env.now,
            }
        )

    # -- manager recovery --------------------------------------------------------------

    def _recover_manager(self, name: str):
        gm = self.gm
        manager = gm.locals.get(name)
        if manager is None:
            return
        if not manager.node.failed:
            # Reports merely delayed; the next one clears the suspicion and
            # counts the false positive at the detector.
            return
        request = gm.control_lock.request()
        yield request
        try:
            if not manager.node.failed:
                return
            container = manager.container
            survivors = [
                r for r in container.replicas
                if not r.crashed and not r.node.failed
            ]
            new_node = survivors[0].node if survivors else gm.node
            manager.rehost(new_node)
            self.rounds += 1
            REGISTRY.count("faults.manager_rehosts")
            self.replacements.append(
                {
                    "type": "manager_rehost",
                    "container": name,
                    "node_id": new_node.node_id,
                    "completed_at": self.env.now,
                }
            )
            gm.actions_taken.append(f"rehost manager {name}")
            gm.telemetry.mark(self.env.now, f"rehost manager {name}")
            # The crashed co-hosted replicas surface through the replica
            # detector once it resumes scanning from the new host.
        finally:
            gm.control_lock.release(request)

    def stop(self) -> None:
        if self.manager_detector is not None:
            self.manager_detector.stop()
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None
