"""Shared pipeline presets, backed by the bundled spec library.

Before the fleet existed, ``repro.dst.presets``, ``repro.overload.scenario``,
and ``repro.experiments.figures`` each constructed the Figure-7 / overload
pipelines by hand — three slightly different copies of the same workload and
builder configuration.  These recipes are now thin wrappers over
:mod:`repro.spec`: each loads its bundled spec (``repro/spec/bundled/*.yaml``),
overlays the caller's workload/seed arguments, and compiles it through
:func:`repro.spec.build.build`.  Keyword overrides still flow straight into
:class:`~repro.containers.pipeline.PipelineBuilder`, so the fleet can build
the same presets against a *shared* machine with per-tenant partitions
(``machine=`` + ``tenant=``).

The bundled defaults are load-bearing: the ``fig7`` spec with no overrides is
byte-identical to the historical ``smoke`` DST preset, so golden traces and
the seeded DST sweeps are unchanged.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict

from repro.simkernel import Environment
from repro.containers.pipeline import Pipeline
from repro.lammps.workload import WeakScalingWorkload
from repro.spec.build import build as build_spec, load_preset


def make_workload(
    sim_nodes: int = 256,
    staging_nodes: int = 15,
    spare: int = 2,
    steps: int = 8,
    output_interval: float = 15.0,
) -> WeakScalingWorkload:
    """The weak-scaling workload shared by every pipeline recipe."""
    return WeakScalingWorkload(
        sim_nodes=sim_nodes,
        staging_nodes=staging_nodes,
        spare_staging_nodes=spare,
        output_interval=output_interval,
        total_steps=steps,
    )


def build_fig7_pipeline(
    env: Environment,
    steps: int = 8,
    seed: int = 1,
    sim_nodes: int = 256,
    staging_nodes: int = 15,
    spare: int = 2,
    **overrides,
) -> Pipeline:
    """The Figure-7 stage mix with fault tolerance on.

    With no overrides this is exactly the historical DST ``smoke``
    configuration: two spare staging nodes for the recovery ladder,
    heartbeats every second, five-second leases.
    """
    spec = load_preset("fig7").override(
        workload=dict(sim_nodes=sim_nodes, staging_nodes=staging_nodes,
                      spare=spare, steps=steps),
        builder=dict(seed=seed),
    )
    return build_spec(env, spec, **overrides)


def build_overload_pipeline(
    env: Environment,
    steps: int = 16,
    seed: int = 1,
    managed: bool = True,
    allow_resize: bool = False,
    **overrides,
) -> Pipeline:
    """A Figure-7 pipeline with tight buffers, primed to wedge under a burst.

    ``managed=False`` builds the unprotected baseline: no backpressure, no
    brownout, and an effectively disabled control loop — the configuration
    in which a burst blocks the producer for the rest of the run.

    The tight ``sim_buffer_bytes``/``stage_buffer_bytes`` are this preset's
    point: overriding them silently turns the overload scenario into a
    different experiment.  Pass ``allow_resize=True`` to do it deliberately.
    """
    resized = sorted(
        k for k in ("sim_buffer_bytes", "stage_buffer_bytes") if k in overrides
    )
    if resized and not allow_resize:
        warnings.warn(
            f"build_overload_pipeline: overriding {resized} replaces the "
            f"deliberately tight buffers this preset exists to test; pass "
            f"allow_resize=True if that is intended",
            stacklevel=2,
        )
    spec = load_preset("overload").override(
        workload=dict(steps=steps),
        builder=dict(seed=seed),
    )
    if not managed:
        # No overload handling at all; the legacy policy loop is disabled
        # too, so nothing reshapes the pipeline when the burst lands.
        spec = spec.override(
            builder=dict(control_interval=1e9),
            drop_builder=("backpressure", "brownout"),
        )
    return build_spec(env, spec, **overrides)


def build_predictive_pipeline(
    env: Environment,
    steps: int = 16,
    seed: int = 1,
    **overrides,
) -> Pipeline:
    """The overload preset under ``mode: predictive``.

    Identical workload, buffers and burst exposure to
    :func:`build_overload_pipeline` — the only delta is the spec's
    overload block, which attaches the :mod:`repro.analytics` forecaster
    stack to the brownout/backpressure controllers.  This is the
    predictive half of the head-to-head experiment.
    """
    spec = load_preset("predictive").override(
        workload=dict(steps=steps),
        builder=dict(seed=seed),
    )
    return build_spec(env, spec, **overrides)


def build_failover_pipeline(
    env: Environment,
    steps: int = 16,
    seed: int = 1,
    **overrides,
) -> Pipeline:
    """The overload preset with degrade-to-disk failover attached.

    Identical workload, buffers and burst exposure to
    :func:`build_overload_pipeline` — the only delta is the spec's
    failover block, which diverts every would-be shed to the spill store
    and replays it once the consumer side is healthy.  This is the
    failover half of the head-to-head experiment: same pressure, zero
    loss, bounded catch-up.
    """
    spec = load_preset("failover").override(
        workload=dict(steps=steps),
        builder=dict(seed=seed),
    )
    return build_spec(env, spec, **overrides)


def build_s3d_pipeline(
    env: Environment,
    steps: int = 8,
    seed: int = 0,
    spare: int = 2,
    **overrides,
) -> Pipeline:
    """The S3D flame-front stage set (reduce -> front -> track) under the
    same management stack — the generality check the S3D bench runs."""
    spec = load_preset("s3d").override(
        workload=dict(staging_nodes=9 + spare, spare=spare, steps=steps),
        builder=dict(seed=seed),
    )
    return build_spec(env, spec, **overrides)


#: name -> recipe; the fleet builds mixed-tenant workloads from this table.
#: Each recipe is backed by the bundled spec of the same name
#: (``repro/spec/bundled/<name>.yaml``).
PIPELINE_PRESETS: Dict[str, Callable[..., Pipeline]] = {
    "fig7": build_fig7_pipeline,
    "overload": build_overload_pipeline,
    "predictive": build_predictive_pipeline,
    "failover": build_failover_pipeline,
    "s3d": build_s3d_pipeline,
}
