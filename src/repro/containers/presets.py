"""Shared pipeline presets: the one factory every consumer builds from.

Before the fleet existed, ``repro.dst.presets``, ``repro.overload.scenario``,
and ``repro.experiments.figures`` each constructed the Figure-7 / overload
pipelines by hand — three slightly different copies of the same workload and
builder configuration.  This module is the single source of truth: a preset
is a keyword-overridable recipe producing a fully wired
:class:`~repro.containers.pipeline.Pipeline`, and every override flows
straight into :class:`~repro.containers.pipeline.PipelineBuilder`, so the
fleet can build the same presets against a *shared* machine with per-tenant
partitions (``machine=`` + ``tenant=``).

The defaults here are load-bearing: the ``fig7`` recipe with no overrides is
byte-identical to the historical ``smoke`` DST preset, so golden traces and
the seeded DST sweeps are unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.simkernel import Environment
from repro.containers.pipeline import Pipeline, PipelineBuilder, StageConfig
from repro.lammps.workload import WeakScalingWorkload
from repro.smartpointer.costs import ComputeModel


def make_workload(
    sim_nodes: int = 256,
    staging_nodes: int = 15,
    spare: int = 2,
    steps: int = 8,
    output_interval: float = 15.0,
) -> WeakScalingWorkload:
    """The weak-scaling workload shared by every pipeline recipe."""
    return WeakScalingWorkload(
        sim_nodes=sim_nodes,
        staging_nodes=staging_nodes,
        spare_staging_nodes=spare,
        output_interval=output_interval,
        total_steps=steps,
    )


def build_fig7_pipeline(
    env: Environment,
    steps: int = 8,
    seed: int = 1,
    sim_nodes: int = 256,
    staging_nodes: int = 15,
    spare: int = 2,
    **overrides,
) -> Pipeline:
    """The Figure-7 stage mix with fault tolerance on.

    With no overrides this is exactly the historical DST ``smoke``
    configuration: two spare staging nodes for the recovery ladder,
    heartbeats every second, five-second leases.
    """
    wl = make_workload(sim_nodes=sim_nodes, staging_nodes=staging_nodes,
                       spare=spare, steps=steps)
    kwargs = dict(
        seed=seed,
        control_interval=30.0,
        fault_tolerance=True,
        heartbeat_interval=1.0,
        lease_timeout=5.0,
    )
    kwargs.update(overrides)
    return PipelineBuilder(env, wl, **kwargs).build()


def build_overload_pipeline(
    env: Environment,
    steps: int = 16,
    seed: int = 1,
    managed: bool = True,
    **overrides,
) -> Pipeline:
    """A Figure-7 pipeline with tight buffers, primed to wedge under a burst.

    ``managed=False`` builds the unprotected baseline: no backpressure, no
    brownout, and an effectively disabled control loop — the configuration
    in which a burst blocks the producer for the rest of the run.
    """
    wl = make_workload(staging_nodes=15, spare=2, steps=steps)
    num_writers = 4
    kwargs = dict(
        seed=seed,
        num_sim_writers=num_writers,
        monitor_interval=5.0,
        # ~2 steps of headroom at the producer, ~3 at each stage writer:
        # small enough that a burst fills them within the SLA horizon.
        sim_buffer_bytes=2.2 * wl.bytes_per_step / num_writers,
        stage_buffer_bytes=3.0 * wl.bytes_per_step,
        fault_tolerance=True,
        heartbeat_interval=1.0,
        lease_timeout=5.0,
    )
    if managed:
        kwargs.update(backpressure=True, brownout=True, control_interval=30.0)
    else:
        # No overload handling at all; the legacy policy loop is disabled
        # too, so nothing reshapes the pipeline when the burst lands.
        kwargs.update(control_interval=1e9)
    kwargs.update(overrides)
    return PipelineBuilder(env, wl, **kwargs).build()


def build_s3d_pipeline(
    env: Environment,
    steps: int = 8,
    seed: int = 0,
    spare: int = 2,
    **overrides,
) -> Pipeline:
    """The S3D flame-front stage set (reduce -> front -> track) under the
    same management stack — the generality check the S3D bench runs."""
    from repro.s3d.components import S3D_COMPONENTS

    wl = make_workload(staging_nodes=9 + spare, spare=spare, steps=steps)
    stages = [
        StageConfig("reduce", 3, ComputeModel.TREE, upstream=None,
                    component_spec=S3D_COMPONENTS["reduce"]),
        StageConfig("front", 4, ComputeModel.ROUND_ROBIN, upstream="reduce",
                    component_spec=S3D_COMPONENTS["front"]),
        StageConfig("track", 2, ComputeModel.ROUND_ROBIN, upstream="front",
                    component_spec=S3D_COMPONENTS["track"]),
    ]
    kwargs = dict(seed=seed, stages=stages)
    kwargs.update(overrides)
    return PipelineBuilder(env, wl, **kwargs).build()


#: name -> recipe; the fleet builds mixed-tenant workloads from this table.
PIPELINE_PRESETS: Dict[str, Callable[..., Pipeline]] = {
    "fig7": build_fig7_pipeline,
    "overload": build_overload_pipeline,
    "s3d": build_s3d_pipeline,
}
