"""Management policies: deciding what the global manager should do.

The paper's policy (Section IV): watch per-container latency against the
SLA; when a container exceeds it, find the bottleneck (longest average
latency), ask its local manager what it needs, and satisfy the need from the
spare pool, then by stealing from over-provisioned containers, and — when
nothing else can prevent queue overflow from blocking the application — by
taking the non-essential bottleneck (and its dependents) offline.

Policies are pure decision functions over a metrics snapshot, so they are
unit-testable without a running pipeline, and swappable (the ablation bench
compares :class:`LatencyPolicy` with :class:`QueueDerivativePolicy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.monitoring.bottleneck import predict_overflow_time


@dataclass(frozen=True)
class ContainerState:
    """One container's view in the policy snapshot."""

    name: str
    units: int
    latency_mean: Optional[float]
    latency_est: Optional[float]  # mean or live input age, whichever is larger
    queued: int
    queue_samples: tuple       # (time, total queued chunks) history
    occupancy_samples: tuple   # (time, upstream buffer occupancy) history
    buffer_occupancy: float
    shortfall: int  # nodes short of sustaining the rate (0 = keeping up)
    headroom: int   # nodes it could donate and still sustain the rate
    essential: bool
    offline: bool
    active: bool
    #: per-container SLA scale: alarm threshold is sla_interval * sla_factor
    sla_factor: float = 1.0

    def effective_latency(self) -> Optional[float]:
        """Completed-window mean, falling back to the live estimate.

        A stage whose service time exceeds the monitoring period never
        completes anything between reports; the live input age is the only
        signal that it is the bottleneck.
        """
        if self.latency_mean is not None and self.latency_est is not None:
            return max(self.latency_mean, self.latency_est)
        return self.latency_mean if self.latency_mean is not None else self.latency_est


@dataclass(frozen=True)
class Increase:
    container: str
    count: int


@dataclass(frozen=True)
class Steal:
    donor: str
    recipient: str
    count: int


@dataclass(frozen=True)
class Offline:
    container: str
    reason: str


Action = object  # Increase | Steal | Offline


class ManagementPolicy:
    """Interface: snapshot in, actions out."""

    def decide(
        self,
        states: Dict[str, ContainerState],
        spare_nodes: int,
        sla_interval: float,
        now: float,
        horizon: float,
    ) -> List[Action]:
        raise NotImplementedError


class LatencyPolicy(ManagementPolicy):
    """The paper's policy: longest-average-latency bottleneck, spare-then-
    steal-then-offline remediation.

    Parameters
    ----------
    overflow_occupancy:
        Upstream-buffer occupancy above which overflow is considered
        imminent if the trend is positive.
    """

    def __init__(self, overflow_occupancy: float = 0.5):
        if not (0 < overflow_occupancy <= 1):
            raise ValueError("overflow_occupancy must be in (0, 1]")
        self.overflow_occupancy = overflow_occupancy

    def decide(self, states, spare_nodes, sla_interval, now, horizon):
        online = {
            name: s for name, s in states.items()
            if not s.offline and s.active and s.units > 0
        }
        # Anyone over its SLA?  (Each container alarms against its own
        # threshold: sla_interval scaled by its SLA class factor.)
        over = {
            name: s.effective_latency()
            for name, s in online.items()
            if s.effective_latency() is not None
            and s.effective_latency() > sla_interval * s.sla_factor
        }
        if not over:
            return []
        # Walk over-SLA containers from worst latency down; act on the first
        # that actually needs nodes.  (A stage whose *service time* exceeds
        # the SLA but whose allocation sustains the arrival rate is left
        # alone: its backlog is transient.)
        bottleneck = None
        for name in sorted(over, key=over.get, reverse=True):
            if online[name].shortfall > 0:
                bottleneck = name
                break
        if bottleneck is None:
            return []
        state = online[bottleneck]
        needed = state.shortfall

        actions: List[Action] = []
        remaining = needed
        take_spare = min(spare_nodes, remaining)
        if take_spare > 0:
            actions.append(Increase(bottleneck, take_spare))
            remaining -= take_spare
        if remaining > 0:
            donors = sorted(
                (s for s in online.values() if s.name != bottleneck and s.headroom > 0),
                key=lambda s: s.headroom,
                reverse=True,
            )
            for donor in donors:
                give = min(donor.headroom, remaining)
                actions.append(Steal(donor.name, bottleneck, give))
                remaining -= give
                if remaining == 0:
                    break
        if remaining > 0 and not actions and not state.essential:
            # Nothing can be freed anywhere: offline the bottleneck if the
            # backlog is actually going to overflow and block the app.
            if self._overflow_imminent(state, now, horizon):
                actions.append(Offline(bottleneck, reason="no resources; overflow imminent"))
        return actions

    def _overflow_imminent(self, state: ContainerState, now: float, horizon: float) -> bool:
        if state.buffer_occupancy >= self.overflow_occupancy:
            return True
        predicted = predict_overflow_time(list(state.occupancy_samples), capacity=1.0)
        return predicted is not None and predicted <= now + horizon


class QueueDerivativePolicy(ManagementPolicy):
    """Ablation policy: act on queue growth instead of latency level.

    Reacts as soon as a container's queue exhibits sustained growth, even
    before latency crosses the SLA — faster to converge, but can overreact
    to transients (which the ablation bench quantifies).
    """

    def __init__(self, growth_threshold: float = 0.005, overflow_occupancy: float = 0.5):
        self.growth_threshold = growth_threshold
        self._fallback = LatencyPolicy(overflow_occupancy)

    def decide(self, states, spare_nodes, sla_interval, now, horizon):
        from repro.monitoring.bottleneck import queue_growth_rate

        online = {
            name: s for name, s in states.items()
            if not s.offline and s.active and s.units > 0
        }
        growing = {
            name: queue_growth_rate(list(s.queue_samples))
            for name, s in online.items()
        }
        growing = {k: v for k, v in growing.items() if v > self.growth_threshold}
        if not growing:
            return []
        bottleneck = max(growing, key=growing.get)
        state = online[bottleneck]
        needed = max(1, state.shortfall)
        actions: List[Action] = []
        remaining = needed
        take_spare = min(spare_nodes, remaining)
        if take_spare:
            actions.append(Increase(bottleneck, take_spare))
            remaining -= take_spare
        if remaining > 0:
            donors = sorted(
                (s for s in online.values() if s.name != bottleneck and s.headroom > 0),
                key=lambda s: s.headroom,
                reverse=True,
            )
            for donor in donors:
                give = min(donor.headroom, remaining)
                actions.append(Steal(donor.name, bottleneck, give))
                remaining -= give
                if remaining == 0:
                    break
        if remaining > 0 and not actions and not state.essential:
            if self._fallback._overflow_imminent(state, now, horizon):
                actions.append(Offline(bottleneck, reason="queue growth; overflow imminent"))
        return actions
