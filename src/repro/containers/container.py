"""The container: a managed execution environment for one component."""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.simkernel import Environment
from repro.simkernel.errors import SimulationError
from repro.cluster.node import Node
from repro.data import DataChunk
from repro.datatap.link import DataTapLink
from repro.datatap.scheduling import PullScheduler
from repro.evpath.channel import Messenger
from repro.adios.filesystem import ParallelFileSystem
from repro.monitoring.metrics import LatencyWindow
from repro.smartpointer.component import ComponentSpec
from repro.smartpointer.costs import ComputeModel


class Container:
    """Replicas + links + accounting for one analysis component.

    The container itself is mechanism, not policy: it can grow, shrink, go
    offline, and report metrics; *when* to do those things is decided by the
    managers (see :mod:`repro.containers.local_manager` and
    :mod:`repro.containers.global_manager`).
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        spec: ComponentSpec,
        model: ComputeModel,
        input_link: Optional[DataTapLink],
        output_link: Optional[DataTapLink] = None,
        name: Optional[str] = None,
        output_links: Optional[List[DataTapLink]] = None,
        queue_capacity: int = 8,
        queue_overflow: str = "block",
        gather_count: int = 1,
        pull_scheduler: Optional[PullScheduler] = None,
        sink_fs: Optional[ParallelFileSystem] = None,
        active: bool = True,
        natoms_hint: int = 0,
        essential: Optional[bool] = None,
        writer_buffer_bytes: Optional[float] = None,
        sla_factor: float = 1.0,
        retain_output: bool = False,
    ):
        if model not in spec.compute_models:
            raise SimulationError(
                f"component {spec.name!r} does not support compute model {model}"
            )
        if gather_count > 1 and model is not ComputeModel.TREE:
            raise SimulationError("gathering requires the TREE compute model")
        self.env = env
        self.messenger = messenger
        self.spec = spec
        self.model = model
        self.name = name or spec.name
        self.input_link = input_link
        if output_links is not None and output_link is not None:
            raise SimulationError("pass output_link or output_links, not both")
        #: every downstream consumer stage reads through its own link, so
        #: multiple consumers (e.g. CSym plus an interactively launched viz)
        #: each see the full output stream rather than splitting it.
        self.output_links: List[DataTapLink] = (
            list(output_links) if output_links is not None
            else ([output_link] if output_link is not None else [])
        )
        self.queue_capacity = queue_capacity
        self.queue_overflow = queue_overflow
        self.gather_count = gather_count
        self.pull_scheduler = pull_scheduler
        self.sink_fs = sink_fs
        self.active = active
        self.natoms_hint = natoms_hint
        self.essential = spec.essential if essential is None else essential
        #: cap on each replica writer's staging buffer (None = node default)
        self.writer_buffer_bytes = writer_buffer_bytes
        #: fault-tolerance: this stage's writers keep custody of chunks
        #: until the downstream consumer acks them processed, enabling
        #: redelivery after a consumer crash (see repro.faults)
        self.retain_output = retain_output
        if sla_factor <= 0:
            raise ValueError("sla_factor must be positive")
        #: per-container SLA scale (Section III-A: a checkpointing container
        #: "need not complete ... until the next timestep arrives" — factor
        #: 1.0 — whereas crack discovery "should complete with low latency"
        #: — factor < 1).  Managers size and alarm against
        #: ``sla_interval * sla_factor``.
        self.sla_factor = sla_factor

        from repro.containers.replica import Replica  # circular at import time

        self._replica_cls = Replica
        self.replicas: List = []
        #: nodes held by a standby (not yet activated) container
        self.standby_nodes: List[Node] = []
        self._next_replica = 0
        self.offline = False
        #: TREE and PARALLEL components are one logical entity: data enters
        #: and leaves through the head node; member nodes only add capacity.
        self.head_only_io = model in (ComputeModel.TREE, ComputeModel.PARALLEL)

        #: process every k-th timestep; the rest are skipped (the paper's
        #: "lower the output frequency of one [container] to free up I/O
        #: bandwidth for others")
        self.stride = 1
        #: attach content hashes to emitted chunks for soft-error detection
        #: (the paper's "add hashes of the data to the output")
        self.hashing = False
        self.skipped = 0
        #: pipeline-wide :class:`~repro.overload.shed.ShedLedger`, if shed
        #: accounting is wired (None keeps drops unaccounted, as before)
        self.shed_ledger = None
        self.latency = LatencyWindow(maxlen=8)
        self.completions = 0
        #: samples of (time, total queued chunks) for overflow prediction
        self.queue_samples: List = []
        #: called after each completed chunk: f(container, in_chunk, out_chunk)
        self.on_complete: Optional[Callable] = None

    @property
    def output_link(self) -> Optional[DataTapLink]:
        """Primary (first) output link, for single-consumer pipelines."""
        return self.output_links[0] if self.output_links else None

    # -- sizing ------------------------------------------------------------------

    @property
    def units(self) -> int:
        """Allocated node count (= replica count for all current models)."""
        return len(self.replicas)

    def service_time(self, chunk: DataChunk) -> float:
        natoms = chunk.natoms or self.natoms_hint
        units = max(1, self.units)
        return self.spec.cost.service_time(natoms, units, self.model)

    def sustainable_interval(self) -> float:
        """Smallest inter-arrival interval this container can sustain."""
        natoms = self.natoms_hint
        units = max(1, self.units)
        return 1.0 / self.spec.cost.throughput(natoms, units, self.model)

    # -- replica lifecycle ----------------------------------------------------------

    def add_replica(self, node: Node):
        # Head-only-I/O components have exactly one active head; a newcomer
        # is passive unless no active head exists (e.g. the head crashed and
        # this replica is its replacement).
        passive = self.head_only_io and any(not r.passive for r in self.replicas)
        replica = self._replica_cls(
            self.env, self.messenger, node, self, self._next_replica, passive=passive
        )
        self._next_replica += 1
        self.replicas.append(replica)
        return replica

    def attach_output_link(self, link) -> None:
        """Add a downstream consumer link mid-run.

        Used when a new consumer (e.g. an interactively launched
        visualization container) starts reading this stage's output: the
        active replicas get DataTap writers wired into the new link, and
        subsequent emissions stream a copy through it.
        """
        from repro.datatap.writer import DataTapWriter

        if any(l.name == link.name for l in self.output_links):
            raise SimulationError(
                f"container {self.name!r} already feeds link {link.name!r}"
            )
        self.output_links.append(link)
        for replica in self.replicas:
            if replica.passive:
                continue
            writer = DataTapWriter(
                self.env, self.messenger, replica.node,
                buffer=self._make_buffer(replica.node, link.name),
                name=f"{replica.name}.w.{link.name}",
            )
            replica.writers[link.name] = writer
            link.add_writer(writer)

    def _make_buffer(self, node, label: str):
        """Writer buffer honoring the configured capacity cap, if any."""
        if self.writer_buffer_bytes is None:
            return None
        from repro.datatap.buffer import StagingBuffer

        return StagingBuffer(
            self.env, node, capacity_bytes=self.writer_buffer_bytes,
            name=f"{self.name}.{label}.buf",
        )

    def remove_replicas(self, count: int, allow_teardown: bool = False) -> List[Node]:
        """Tear down ``count`` replicas; upstream writers must be paused.

        Unprocessed queue contents are re-dispatched to surviving replicas
        so no timestep is lost.  Returns the freed nodes.

        ``allow_teardown`` permits removing *every* replica of a TREE /
        PARALLEL component — only the MPI relaunch path (which immediately
        respawns at a larger size) and the offline protocol may do that.
        """
        if count <= 0 or count > len(self.replicas):
            raise SimulationError(
                f"container {self.name!r}: cannot remove {count} of {len(self.replicas)}"
            )
        if self.head_only_io and count >= len(self.replicas) and not allow_teardown:
            raise SimulationError(
                f"container {self.name!r}: decreasing a {self.model.value} component "
                f"to zero requires the offline protocol"
            )
        departing = self.replicas[-count:]
        self.replicas = self.replicas[: len(self.replicas) - count]
        freed: List[Node] = []
        stranded: List[DataChunk] = []
        for replica in departing:
            if self.input_link is not None and replica.reader is not None:
                self.input_link.remove_reader(replica.reader)
            stranded.extend(replica.drain_queue())
            replica.retire()
            freed.append(replica.node)
        if stranded:
            if not self.replicas:
                raise SimulationError(
                    f"container {self.name!r}: teardown strands {len(stranded)} chunks"
                )
            for i, chunk in enumerate(stranded):
                target = self.replicas[i % len(self.replicas)]
                # Local staging-area move: pay a transfer, then enqueue.
                self.env.process(
                    self._redispatch(chunk, departing[0].node, target),
                    name=f"redispatch:{self.name}",
                )
        return freed

    def _redispatch(self, chunk: DataChunk, from_node: Node, target) -> None:
        yield self.messenger.network.transfer(from_node, target.node, chunk.nbytes)
        yield target.queue.put(chunk)

    # -- data plane --------------------------------------------------------------------

    def emit(self, chunk: DataChunk, replica):
        """Forward a processed chunk downstream.

        Every output link with live readers receives the chunk (each
        consumer stage sees the full stream); if no consumer is reachable,
        the chunk goes to disk with provenance instead.
        """
        chunk.entered_stage_at = self.env.now
        targets = [link for link in self.output_links if link.readers]
        if targets:
            return self._emit_links(chunk, replica, targets)
        return self._emit_disk(chunk, replica)

    def offline_downstream(self) -> bool:
        """True when no downstream link has readers (pruned pipeline)."""
        return bool(self.output_links) and not any(
            link.readers for link in self.output_links
        )

    def _emit_links(self, chunk: DataChunk, replica, targets):
        def gen():
            writes = []
            for i, link in enumerate(targets):
                # Fan-out: every link past the first gets its own copy (same
                # chunk_id — custody and dedup are per-link).  Readers mutate
                # per-consumer state on the chunk (``sources``,
                # ``entered_stage_at``); sharing one object across links lets
                # one consumer's pull clobber another's custody trail, which
                # ends in a wrong-writer ack and a redelivery duplicate.
                out = chunk if i == 0 else dataclasses.replace(chunk, sources=[])
                writes.append(replica.writers[link.name].write(out))
            yield self.env.all_of(writes)
        return gen()

    def _emit_disk(self, chunk: DataChunk, replica):
        def gen():
            if self.sink_fs is None:
                yield self.env.timeout(0)
                return
            attrs = {
                "provenance": list(chunk.provenance),
                "timestep": chunk.timestep,
                "incomplete_pipeline": self.output_link is not None,
            }
            yield self.sink_fs.write(
                replica.node,
                f"{self.name}.ts{chunk.timestep:06d}.bp",
                chunk.nbytes,
                attrs,
            )
        return gen()

    def record_completion(self, in_chunk: DataChunk, out_chunk: DataChunk,
                          latency: float, replica) -> None:
        self.latency.observe(self.env.now, latency)
        self.completions += 1
        if self.on_complete is not None:
            self.on_complete(self, in_chunk, out_chunk)

    # -- metrics -------------------------------------------------------------------------

    @property
    def total_queued(self) -> int:
        queued = sum(r.queue.size for r in self.replicas if not r.passive)
        if self.input_link is not None:
            # Metadata waiting at reader endpoints counts as queued input.
            queued += sum(
                r.reader.endpoint.pending for r in self.replicas if r.reader is not None
            )
        return queued

    def upstream_backlog_bytes(self) -> float:
        """Bytes parked in upstream writer buffers destined for this stage."""
        if self.input_link is None:
            return 0.0
        return sum(w.buffer.used_bytes for w in self.input_link.writers)

    def upstream_buffer_occupancy(self) -> float:
        """Max occupancy fraction across upstream writer buffers."""
        if self.input_link is None or not self.input_link.writers:
            return 0.0
        return max(w.buffer.occupancy for w in self.input_link.writers)

    def oldest_input_entry(self) -> Optional[float]:
        """Earliest stage-entry time among unfinished inputs.

        Scans replica queues, gather buffers, in-service chunks, and chunks
        parked in upstream writer buffers.  ``now - oldest_input_entry()`` is
        a live latency estimate for stages that have not completed anything
        yet — essential for spotting a bottleneck whose service time exceeds
        the monitoring period.
        """
        oldest: Optional[float] = None

        def consider(value: Optional[float]):
            nonlocal oldest
            if value is not None and (oldest is None or value < oldest):
                oldest = value

        for replica in self.replicas:
            if replica.passive:
                continue
            for chunk in replica.queue.items:
                consider(chunk.entered_stage_at)
            for fragments in replica._gather.values():
                for chunk in fragments:
                    consider(chunk.entered_stage_at)
            if replica.current_chunk is not None:
                consider(replica.current_chunk.entered_stage_at)
        if self.input_link is not None:
            for writer in self.input_link.writers:
                for chunk in writer.buffer._chunks.values():
                    consider(chunk.entered_stage_at)
        return oldest

    def latency_estimate(self) -> Optional[float]:
        """Best available latency figure: completed mean or live input age."""
        mean = self.latency.mean()
        oldest = self.oldest_input_entry()
        age = None if oldest is None else self.env.now - oldest
        if mean is None:
            return age
        if age is None:
            return mean
        return max(mean, age)

    def sample_queues(self) -> None:
        self.queue_samples.append((self.env.now, float(self.total_queued)))
        if len(self.queue_samples) > 64:
            del self.queue_samples[0]

    def __repr__(self) -> str:
        state = "offline" if self.offline else ("active" if self.active else "standby")
        return f"<Container {self.name!r} {state} units={self.units}>"
