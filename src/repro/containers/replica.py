"""Replicas: one component instance on one staging node."""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.simkernel import Environment, Interrupt, Store
from repro.simkernel.errors import SimulationError
from repro.cluster.node import Node
from repro.data import DataChunk
from repro.datatap.reader import DataTapReader, PULL_DONE_BYTES
from repro.datatap.writer import DataTapWriter
from repro.evpath.channel import Messenger

if TYPE_CHECKING:
    from repro.containers.container import Container


class Replica:
    """A single running instance of a container's component.

    An *active* replica owns an input queue fed by a DataTap reader, a worker
    process that services chunks, and one output writer per downstream link
    (or the container's disk sink when no consumer is attached).  A *passive* replica is a
    member node of a TREE/PARALLEL component: it contributes capacity (the
    container's service time divides by the unit count) but data enters and
    leaves through the head replica only.
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        node: Node,
        container: "Container",
        index: int,
        passive: bool = False,
    ):
        self.env = env
        self.messenger = messenger
        self.node = node
        self.container = container
        self.index = index
        self.passive = passive
        self.name = f"{container.name}-r{index}"

        self.queue: Optional[Store] = None
        self.reader: Optional[DataTapReader] = None
        #: one DataTap writer per output link, keyed by link name
        self.writers: Dict[str, DataTapWriter] = {}
        self._worker = None
        self._gather: Dict[int, List[DataChunk]] = {}
        self._service_proc = None
        self.current_chunk: Optional[DataChunk] = None
        self.chunks_processed = 0
        self.busy_time = 0.0
        self.retired = False
        self.crashed = False

        if passive:
            return

        self.queue = Store(
            env,
            capacity=container.queue_capacity,
            name=f"{self.name}.q",
            overflow=container.queue_overflow,
        )
        if container.input_link is not None:
            self.reader = DataTapReader(
                env, messenger, node, self.name, self.queue,
                scheduler=container.pull_scheduler,
            )
            container.input_link.add_reader(self.reader)
        for link in container.output_links:
            writer = DataTapWriter(
                env, messenger, node,
                buffer=container._make_buffer(node, link.name),
                name=f"{self.name}.w.{link.name}",
                retain_until_processed=container.retain_output,
            )
            self.writers[link.name] = writer
            link.add_writer(writer)
        self._worker = env.process(self._work(), name=f"worker:{self.name}")

    # -- worker -----------------------------------------------------------------

    def _work(self):
        container = self.container
        while True:
            try:
                chunk = yield self.queue.get()
            except Interrupt:
                return
            if container.gather_count > 1:
                pending = self._gather.setdefault(chunk.timestep, [])
                pending.append(chunk)
                if len(pending) < container.gather_count:
                    continue
                fragments = self._gather.pop(chunk.timestep)
                chunk = self._merge(fragments)
            if container.stride > 1 and chunk.timestep % container.stride != 0:
                # Frequency reduction in effect: skip this timestep.  A skip
                # is a terminal outcome for the chunk, so custody ends here —
                # and the drop is accounted before custody is released.
                container.skipped += 1
                if container.shed_ledger is not None:
                    container.shed_ledger.record(
                        chunk.timestep, container.name, "container_stride",
                        self.env.now, chunk_id=chunk.chunk_id,
                    )
                self._ack_sources(chunk)
                continue
            self._service_proc = self.env.process(self._service(chunk))
            try:
                yield self._service_proc
            except Interrupt as interrupt:
                if getattr(interrupt, "cause", None) == "retire-hard":
                    if self._service_proc.is_alive:
                        self._service_proc.interrupt("retire-hard")
                return

    def _merge(self, fragments: List[DataChunk]) -> DataChunk:
        """Combine per-writer fragments of one timestep (the Helper gather)."""
        total_bytes = sum(f.nbytes for f in fragments)
        total_atoms = sum(f.natoms for f in fragments)
        merged = DataChunk(
            timestep=fragments[0].timestep,
            nbytes=total_bytes,
            natoms=total_atoms,
            payload=fragments[0].payload,
            provenance=fragments[0].provenance,
            created_at=min(f.created_at for f in fragments),
        )
        merged.entered_stage_at = min(f.entered_stage_at for f in fragments)
        for fragment in fragments:
            merged.sources.extend(fragment.sources)
        return merged

    def _service(self, chunk: DataChunk):
        start = self.env.now
        self.current_chunk = chunk
        service = self.container.service_time(chunk)
        try:
            yield self.node.compute(service, cores=1)
        except Interrupt:
            # Hard retire mid-service: the caller strands ``current_chunk``.
            return
        self.current_chunk = None
        self.busy_time += self.env.now - start
        self.chunks_processed += 1
        out = chunk.derive(
            self.container.name,
            nbytes=chunk.nbytes * self.container.spec.output_ratio,
            natoms=chunk.natoms,
        )
        out.payload = chunk.payload
        if self.container.hashing:
            # Soft-error detection: hash the output before it leaves the
            # node.  ~2 GiB/s per core is a realistic CRC/xxhash rate.
            yield self.node.compute(out.nbytes / (2 * 2**30), cores=1)
            out.integrity = f"xxh64:{out.chunk_id:016x}"
        latency = self.env.now - chunk.entered_stage_at
        targets = [l for l in self.container.output_links if l.readers]
        yield self.env.process(self.container.emit(out, self))
        self.container.record_completion(chunk, out, latency, self)
        self._handoff(chunk, out, targets)

    def _handoff(self, in_chunk: DataChunk, out_chunk: DataChunk,
                 targets) -> None:
        """End-of-service custody transfer for the input chunk.

        With retaining output writers the input ack is *deferred* until the
        derived output leaves this node's custody (processed downstream, or
        flushed to disk) — otherwise a crash after emit but before the
        downstream pull would lose the timestep from both buffers.  Disk
        emissions and non-retaining writers ack immediately, as before.
        """
        retainers = [
            self.writers[link.name] for link in targets
            if link.name in self.writers
            and self.writers[link.name].retain_until_processed
        ]
        if not retainers:
            self._ack_sources(in_chunk)
            return
        pending = {writer.name for writer in retainers}

        def released(writer_name):
            pending.discard(writer_name)
            if not pending:
                self._ack_sources(in_chunk)

        for writer in retainers:
            writer.defer_parent_ack(
                out_chunk.chunk_id, lambda name=writer.name: released(name)
            )

    def _ack_sources(self, chunk: DataChunk) -> None:
        """Tell retaining upstream writers the chunk is fully processed.

        Bookkeeping is synchronous (custody must not depend on a lossy ack
        message); the wire cost is charged as fire-and-forget control
        traffic, like the pull-done notification it mirrors.
        """
        link = self.container.input_link
        if link is None or not chunk.sources:
            return
        for writer_name, chunk_id in chunk.sources:
            try:
                writer = link.writer_by_name(writer_name)
            except SimulationError:
                continue  # writer torn down in the meantime
            if not writer.retain_until_processed:
                continue
            self.messenger.network.transfer(self.node, writer.node, PULL_DONE_BYTES)
            writer.on_processed(chunk_id)

    # -- teardown ----------------------------------------------------------------

    def drain_queue(self) -> List[DataChunk]:
        """Remove and return unprocessed chunks (for re-dispatch on retire)."""
        if self.passive:
            return []
        items, self.queue.items = list(self.queue.items), []
        # Include partially gathered fragments so no timestep is lost.
        for fragments in self._gather.values():
            items.extend(fragments)
        self._gather.clear()
        return items

    def crash(self) -> None:
        """Violent death (the host node crashed).

        Everything resident dies instantly: the worker, the chunk in
        service, the reader loop.  Nothing is drained — recovery rebuilds
        from upstream custody (retained writer buffers) instead.  The
        reader's endpoint stays registered; a dead node still has an
        address, it just drops traffic until REPLACE cleans it off the
        link.
        """
        self.retired = True
        self.crashed = True
        if self._worker is not None and self._worker.is_alive:
            self._worker.interrupt("retire-hard")
        if self.reader is not None:
            self.reader.crash()

    def retire(self, hard: bool = False) -> None:
        """Stop the worker (reader teardown is the link's job).

        ``hard=True`` (the offline path) also aborts the chunk currently in
        service; the caller is responsible for stranding ``current_chunk``
        to disk.  A graceful retire lets in-flight service finish and emit.
        """
        self.retired = True
        if self._worker is not None and self._worker.is_alive:
            self._worker.interrupt("retire-hard" if hard else "retire")

    def __repr__(self) -> str:
        kind = "passive" if self.passive else f"q={self.queue.size}"
        return f"<Replica {self.name} node={self.node.node_id} {kind}>"
