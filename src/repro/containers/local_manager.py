"""Per-container (local) managers.

The local manager is the only entity that understands its component: its
compute model, speedup behaviour (from the pre-supplied cost model, as the
paper allows), and how to execute resizes against the running replicas.  It
answers the global manager's control requests, runs the monitoring loop that
feeds metric reports upward, and carries out the protocol rounds measured in
Figures 4 and 5.
"""

from __future__ import annotations

from typing import List, Optional

from repro.simkernel import Environment, Interrupt
from repro.simkernel.errors import FaultError, SimulationError
from repro.cluster.node import Node
from repro.cluster.scheduler import BatchScheduler
from repro.containers.container import Container
from repro.containers.protocol import ProtocolTracer
from repro.controlplane import ControlPlaneEngine, ProtocolAbort, protocols
from repro.evpath.channel import Messenger
from repro.evpath.messages import Message, MessageType
from repro.faults.detect import FailureDetector, HeartbeatMonitor, HeartbeatSender
from repro.monitoring.metrics import Telemetry
from repro.smartpointer.costs import ComputeModel

#: EVPath connection-establishment cost charged per (new replica, peer)
#: pair during the intra-container metadata exchange of an increase.
CONNECTION_SETUP_SECONDS = 5e-3


class LocalManager:
    """Owns one container; executes control requests and reports metrics."""

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        container: Container,
        node: Node,
        global_manager_endpoint: str = "global-mgr",
        scheduler: Optional[BatchScheduler] = None,
        tracer: Optional[ProtocolTracer] = None,
        telemetry: Optional[Telemetry] = None,
        monitor_interval: float = 15.0,
        sla_interval: Optional[float] = None,
        engine: Optional[ControlPlaneEngine] = None,
    ):
        self.env = env
        self.messenger = messenger
        self.container = container
        self.node = node
        self.global_name = global_manager_endpoint
        self.scheduler = scheduler
        self.tracer = tracer or ProtocolTracer()
        self.engine = engine or ControlPlaneEngine(env)
        self.telemetry = telemetry
        self.monitor_interval = monitor_interval
        #: the SLA this manager sizes against; when set, metric reports
        #: carry the locally computed shortfall/headroom so the global
        #: manager need not understand the component's cost model (the
        #: paper's division of knowledge between the two manager levels)
        self.sla_interval = sla_interval

        self.endpoint = messenger.endpoint(node, f"{container.name}.cmgr")
        #: override to reroute metric reports (e.g. through a monitoring
        #: overlay instead of direct manager-to-manager messages)
        self.send_report = None
        #: replica failure detection (None until enable_fault_detection)
        self.detector: Optional[FailureDetector] = None
        self._hb_monitor: Optional[HeartbeatMonitor] = None
        self._hb_senders: dict = {}
        self._hb_interval = 1.0
        self._control_proc = env.process(self._control_loop(), name=f"cmgr:{container.name}")
        self._monitor_proc = env.process(self._monitor_loop(), name=f"cmon:{container.name}")

    # -- introspection the global manager asks for ------------------------------------

    def units_to_sustain(self, interval: float) -> int:
        """Nodes this component needs to keep up with one chunk per ``interval``.

        A low-latency container (``sla_factor < 1``) is sized against the
        tightened interval — it must finish well before the next timestep.
        """
        effective = interval * self.container.sla_factor
        return self.container.spec.cost.units_to_sustain(
            self.container.natoms_hint, effective, self.container.model
        )

    def headroom(self, interval: float) -> int:
        """Nodes this container could give up while still sustaining the rate."""
        if self.container.offline or not self.container.active:
            return 0
        needed = self.units_to_sustain(interval)
        return max(0, self.container.units - needed)

    def shortfall(self, interval: float) -> int:
        """Additional nodes needed to sustain the rate (0 when keeping up)."""
        if self.container.offline:
            return 0
        needed = self.units_to_sustain(interval)
        return max(0, needed - self.container.units)

    # -- failure detection --------------------------------------------------------------

    def enable_fault_detection(
        self, lease_timeout: float = 5.0, heartbeat_interval: float = 1.0
    ) -> None:
        """Start lease-based detection of this container's replicas.

        Each replica heartbeats a dedicated monitor endpoint on the
        manager's node (so control protocols cannot head-of-line block
        liveness); a silent lease raises a REPLICA_SUSPECT to the global
        manager, which runs the REPLACE protocol.  Scanning suspends while
        the manager's own node is down — the outage must not convict every
        replica — and resumes with fresh leases after a rehost.
        """
        if self.detector is not None:
            return
        self._hb_interval = heartbeat_interval
        self.detector = FailureDetector(
            self.env,
            f"{self.container.name}-fd",
            lease_timeout,
            on_suspect=self._on_replica_suspect,
            suspend_when=lambda: self.node.failed,
        )
        self._hb_monitor = HeartbeatMonitor(
            self.env, self.messenger, f"{self.container.name}-hb",
            self.node, self.detector,
        )
        for replica in self.container.replicas:
            self.watch_replica(replica)
        self.detector.start()

    def watch_replica(self, replica) -> None:
        """Grant a lease and start the heartbeat stream for one replica."""
        if self.detector is None or replica.name in self._hb_senders:
            return
        sender = HeartbeatSender(
            self.env, self.messenger, replica.name, replica.node,
            self._hb_monitor.endpoint.name, self._hb_interval,
        )
        self._hb_senders[replica.name] = sender
        self.detector.watch(replica.name)
        sender.start()

    def unwatch_replica(self, name: str) -> None:
        if self.detector is None:
            return
        sender = self._hb_senders.pop(name, None)
        if sender is not None:
            sender.stop()
        self.detector.unwatch(name)

    def _on_replica_suspect(self, member: str) -> None:
        self.env.process(self._send_suspect(member), name=f"suspect:{member}")

    def _send_suspect(self, member: str):
        message = Message(
            MessageType.REPLICA_SUSPECT,
            sender=self.endpoint.name,
            payload={
                "container": self.container.name,
                "replica": member,
                "suspected_at": self.env.now,
            },
        )
        try:
            yield self.messenger.send(self.node, self.global_name, message)
        except FaultError:
            pass  # unreachable global manager; the next scan may retry

    def rehost(self, new_node: Node) -> None:
        """Move this manager to a surviving node after its host crashed.

        Endpoints re-pin to the new node; the control and monitor loops
        keep running (they were only unreachable, not lost — the manager's
        durable state is its container object).  The replica detector
        resumes scanning with fresh leases via its suspend logic.
        """
        self.node = new_node
        self.endpoint.node = new_node
        if self._hb_monitor is not None:
            self._hb_monitor.rehost(new_node)
        # An overlay leaf is pinned to the dead host; fall back to direct
        # reports so metric/liveness traffic resumes from the new node.
        self.send_report = None

    # -- control loop ------------------------------------------------------------------

    def _control_loop(self):
        dispatch = {
            MessageType.INCREASE_REQUEST: self._do_increase,
            MessageType.DECREASE_REQUEST: self._do_decrease,
            MessageType.OFFLINE_REQUEST: self._do_offline,
            MessageType.REPLACE_REQUEST: self._do_replace,
            MessageType.SET_STRIDE: self._do_set_stride,
            MessageType.SET_HASHING: self._do_set_hashing,
        }
        while True:
            try:
                msg = yield self.endpoint.recv(where=lambda m: m.mtype in dispatch)
            except Interrupt:
                return
            yield self.env.process(dispatch[msg.mtype](msg))

    # -- shared protocol tail ----------------------------------------------------------

    def _reply(self, msg: Message, mtype: MessageType, payload: dict,
               record=None, charge_seconds: Optional[float] = None):
        """Send the correlated completion reply to the global manager.

        The shared tail of every control protocol: build the reply, send it
        over the control plane, charge the manager-to-manager round, and
        stamp the record finished.  ``record`` is either the legacy
        :class:`ProtocolCost` or an engine :class:`Context` (whose charge
        mirrors into the structured round trace as well).  ``charge_seconds``
        overrides the charged duration (offline charges the reply at zero
        cost because the freed nodes are already surrendered when it is
        sent).
        """
        reply = msg.reply(mtype, sender=self.endpoint.name, payload=payload)
        t0 = self.env.now
        yield self.messenger.send(self.node, self.global_name, reply)
        if record is not None:
            elapsed = (self.env.now - t0) if charge_seconds is None else charge_seconds
            record.charge("manager", elapsed, messages=1)
            # A Context wraps the legacy cost record; stamp whichever exists.
            cost = getattr(record, "record", record)
            if cost is not None:
                cost.finished_at = self.env.now

    def _mark(self, text: str) -> None:
        if self.telemetry is not None:
            self.telemetry.mark(self.env.now, text)

    # -- increase -------------------------------------------------------------------------

    def _do_increase(self, msg: Message):
        nodes: List[Node] = msg.payload["nodes"]
        container = self.container
        record = self.tracer.begin("increase", container.name, len(nodes), self.env.now)
        yield self.engine.execute(
            protocols.INCREASE, subject=container.name, record=record,
            data={"lm": self, "msg": msg, "nodes": nodes},
        )
        self._mark(f"increase {container.name} +{len(nodes)}")

    def _spawn_replicas(self, nodes: List[Node], record):
        """Round-robin / tree growth: spawn and wire new replicas in place."""
        container = self.container
        donors = [r for r in container.replicas if not r.passive]
        for node in nodes:
            record.round(f"local->replica@{node.node_id}: spawn")
            # Peers the newcomer must exchange endpoint metadata with:
            # the manager, every existing replica, and every upstream writer.
            peers = [self.node] + [r.node for r in container.replicas]
            if container.input_link is not None:
                peers += [w.node for w in container.input_link.writers]
            replica = container.add_replica(node)
            t0 = self.env.now
            for peer in peers:
                try:
                    yield self.messenger.network.transfer(node, peer, 1024)
                    yield self.env.timeout(CONNECTION_SETUP_SECONDS)
                    yield self.messenger.network.transfer(peer, node, 256)
                except FaultError:
                    # A dead peer cannot answer the metadata exchange; it is
                    # itself awaiting recovery, so skip it rather than wedge
                    # the whole spawn.
                    record.round(f"peer@{peer.node_id}: unreachable, skipped")
            record.charge("intra_container", self.env.now - t0, messages=2 * len(peers))
            # Stateful components bootstrap the newcomer from a state
            # snapshot held by an existing replica (future-work support).
            state = container.spec.state_bytes(container.natoms_hint)
            donors = [d for d in donors if not d.node.failed]
            if state > 0 and donors and not replica.passive:
                t0 = self.env.now
                try:
                    yield self.messenger.network.transfer(donors[0].node, node, state)
                    record.charge("state_migration", self.env.now - t0, messages=1)
                    record.round(f"state snapshot -> replica@{node.node_id}")
                except FaultError:
                    record.round(f"state snapshot -> replica@{node.node_id}: lost donor")
            record.round(f"replica@{node.node_id}->local: ready")
            self.watch_replica(replica)

    def _relaunch_parallel(self, new_nodes: List[Node], record):
        """MPI resize: tear down all ranks, aprun a bigger job."""
        container = self.container
        if self.scheduler is None:
            raise SimulationError("PARALLEL resize requires a scheduler (aprun)")
        # Quiesce input, tear down existing ranks.
        if container.input_link is not None:
            t0 = self.env.now
            yield container.input_link.pause_writers()
            yield container.input_link.drain_readers()
            record.charge("writer_pause", self.env.now - t0)
        # Carry unprocessed input across the teardown: the relaunched ranks
        # must see every timestep the old ones had queued.
        stranded = []
        for replica in container.replicas:
            stranded.extend(replica.drain_queue())
        old_nodes: List[Node] = []
        if container.replicas:
            old_nodes = container.remove_replicas(container.units, allow_teardown=True)
        # aprun relaunch at the combined size.
        t0 = self.env.now
        all_nodes = old_nodes + list(new_nodes)
        yield self.env.timeout(self.scheduler.aprun.sample(self.scheduler.rng))
        record.charge("launch", self.env.now - t0)
        yield self.env.process(self._spawn_replicas(all_nodes, record))
        actives = [r for r in container.replicas if not r.passive]
        for i, chunk in enumerate(stranded):
            yield actives[i % len(actives)].queue.put(chunk)
        if container.input_link is not None:
            yield container.input_link.resume_writers()

    # -- decrease --------------------------------------------------------------------------

    def _do_decrease(self, msg: Message):
        count: int = msg.payload["count"]
        container = self.container
        record = self.tracer.begin("decrease", container.name, count, self.env.now)
        data = {"lm": self, "msg": msg, "count": count}
        yield self.engine.execute(
            protocols.DECREASE, subject=container.name, record=record, data=data,
        )
        self._mark(f"decrease {container.name} -{data['count']}")

    def _dec_prepare(self, ctx) -> None:
        container = self.container
        ctx["active"] = ctx["count"] > 0 and container.units > 0
        ctx["freed"] = []
        if ctx["active"]:
            ctx["count"] = min(ctx["count"], container.units)

    def _pause_writers(self, ctx, count_messages: bool = True):
        """Pause upstream writers so no metadata races a teardown — the
        dominant cost of a decrease (Figure 5)."""
        link = self.container.input_link
        t0 = self.env.now
        yield link.pause_writers()
        ctx.charge(
            "writer_pause", self.env.now - t0,
            messages=2 * len(link.writers) if count_messages else 0,
        )

    def _resume_writers(self, ctx):
        yield self.container.input_link.resume_writers()

    def _dec_retire(self, ctx) -> None:
        t0 = self.env.now
        ctx["freed"] = self.container.remove_replicas(ctx["count"])
        ctx.charge("intra_container", self.env.now - t0, messages=ctx["count"])

    def _dec_merge_state(self, ctx):
        """Stateful components: each departing replica's state merges into
        a survivor before the node is surrendered."""
        container = self.container
        state = container.spec.state_bytes(container.natoms_hint)
        survivors = [r for r in container.replicas if not r.passive]
        if state > 0 and survivors:
            t0 = self.env.now
            for i, node in enumerate(ctx["freed"]):
                target = survivors[i % len(survivors)]
                yield self.messenger.network.transfer(node, target.node, state)
            ctx.charge("state_migration", self.env.now - t0,
                       messages=len(ctx["freed"]))
            ctx.round(f"state merged into {len(survivors)} survivors")

    # -- replace (crash recovery) ----------------------------------------------------------

    def _do_replace(self, msg: Message):
        """Replace a crashed replica with a fresh one on ``payload['node']``.

        Ordering matters: the dead replica leaves ``container.replicas``
        *before* the spawn (so the newcomer's peer exchange excludes the
        dead node), its writers leave the downstream links (their buffered
        output died with the node), and its reader detaches from the input
        link *after* the spawn — the newcomer must exist so re-dispatched
        metadata and redelivered chunks have somewhere to go.
        """
        container = self.container
        record = self.tracer.begin("replace", container.name, 1, self.env.now)
        yield self.engine.execute(
            protocols.REPLACE, subject=container.name, record=record,
            data={"lm": self, "msg": msg, "node": msg.payload["node"]},
        )
        self._mark(f"replace {container.name}/{msg.payload['replica']}")

    def _rep_locate(self, ctx) -> None:
        dead = next(
            (r for r in self.container.replicas
             if r.name == ctx["msg"].payload["replica"]),
            None,
        )
        ctx["dead"] = dead
        ctx["redelivered"] = 0
        if dead is not None:
            if not dead.crashed:
                dead.crash()
            self.unwatch_replica(dead.name)

    def _rep_detach(self, ctx) -> None:
        dead = ctx["dead"]
        self.container.replicas.remove(dead)
        for writer in dead.writers.values():
            # Outputs a downstream reader already pulled have a live
            # copy there: complete their upstream handoff.  The rest
            # died in this buffer; their inputs stay unacked upstream
            # and will be re-produced through redelivery.
            writer.release_handed_off()
            if writer.link is not None:
                writer.link.remove_writer(writer)

    def _rep_redeliver(self, ctx) -> None:
        # Survivors (incl. the newcomer) exist now; hand the dead
        # reader's backlog back to the link and re-push every chunk
        # it had pulled but never acked processed.  Link-level dedup
        # keeps the redelivery idempotent.
        dead = ctx["dead"]
        link = self.container.input_link
        link.remove_reader(dead.reader)
        redelivered = 0
        for writer in link.writers:
            if writer.retain_until_processed:
                redelivered += writer.redeliver_unacked(dead.reader.name)
        ctx["redelivered"] = redelivered

    # -- data-flow controls ----------------------------------------------------------------

    def _do_set_stride(self, msg: Message):
        """Frequency reduction: process every k-th timestep only.

        One of the control features of Section III-D ("lower the output
        frequency of one to free up I/O bandwidth for others").  Refused for
        essential containers — dropping timesteps of the aggregation stage
        would lose data for everyone downstream.
        """
        yield self.engine.execute(
            protocols.SET_STRIDE, subject=self.container.name,
            data={"lm": self, "msg": msg, "stride": int(msg.payload["stride"])},
        )

    def _stride_validate(self, ctx):
        container = self.container
        stride = ctx["stride"]
        if stride < 1 or (container.essential and stride > 1):
            yield self.env.process(self._reply(
                ctx["msg"], MessageType.NACK, {"stride": container.stride}
            ))
            raise ProtocolAbort(f"stride 1/{stride} refused", result=False)

    def _stride_apply(self, ctx):
        stride = ctx["stride"]
        self.container.stride = stride
        self._mark(f"stride {self.container.name} -> 1/{stride}")
        yield self.env.process(self._reply(
            ctx["msg"], MessageType.ACK, {"stride": stride}
        ))
        ctx.result = True

    def _do_set_hashing(self, msg: Message):
        """Toggle soft-error-detection hashing on this container's output."""
        yield self.engine.execute(
            protocols.SET_HASHING, subject=self.container.name,
            data={"lm": self, "msg": msg,
                  "enabled": bool(msg.payload["enabled"])},
        )

    def _hashing_apply(self, ctx):
        self.container.hashing = ctx["enabled"]
        yield self.env.process(self._reply(
            ctx["msg"], MessageType.ACK, {"enabled": ctx["enabled"]}
        ))
        ctx.result = True

    # -- offline ----------------------------------------------------------------------------

    def _do_offline(self, msg: Message):
        """Reduce this container to zero replicas.

        Chunks already pulled into replica queues are written to disk with
        their current provenance so the work is not lost and post-processing
        knows which actions remain to be applied.
        """
        container = self.container
        record = self.tracer.begin("offline", container.name, container.units, self.env.now)
        yield self.engine.execute(
            protocols.OFFLINE, subject=container.name, record=record,
            data={"lm": self, "msg": msg},
        )
        self._mark(f"offline {container.name}")

    def _off_drain(self, ctx):
        container = self.container
        stranded = []
        freed: List[Node] = []
        for replica in container.replicas:
            if container.input_link is not None and replica.reader is not None:
                container.input_link.readers.remove(replica.reader)
                stranded.extend(
                    m.payload for m in replica.reader.stop()
                )  # unpulled metadata: chunks stay in upstream buffers
            stranded_chunks = replica.drain_queue()
            replica.retire(hard=True)
            if replica.current_chunk is not None:
                stranded_chunks.append(replica.current_chunk)
            for chunk in stranded_chunks:
                # Pulled-but-unprocessed work dies with the stage: account
                # the drop before the disk strand.
                if container.shed_ledger is not None:
                    container.shed_ledger.record(
                        chunk.timestep, container.name, "offline_prune",
                        self.env.now, chunk_id=chunk.chunk_id,
                    )
                if container.sink_fs is not None:
                    yield container.sink_fs.write(
                        replica.node,
                        f"{container.name}.stranded.ts{chunk.timestep:06d}.bp",
                        chunk.nbytes,
                        {"provenance": list(chunk.provenance), "timestep": chunk.timestep,
                         "stranded": True},
                    )
            freed.append(replica.node)
        container.replicas = []
        container.offline = True
        ctx["stranded"] = stranded
        ctx["freed"] = freed

    # -- monitoring ----------------------------------------------------------------------------

    def _monitor_loop(self):
        container = self.container
        while True:
            try:
                yield self.env.timeout(self.monitor_interval)
            except Interrupt:
                return
            if container.offline:
                continue
            container.sample_queues()
            report = {
                "container": container.name,
                "time": self.env.now,
                "latency_mean": container.latency.mean(),
                "latency_est": container.latency_estimate(),
                "latency_last": container.latency.last(),
                "latency_trend": container.latency.trend(),
                "queued": container.total_queued,
                "queue_samples": list(container.queue_samples[-8:]),
                "buffer_occupancy": container.upstream_buffer_occupancy(),
                "units": container.units,
                "completions": container.completions,
            }
            if self.sla_interval is not None:
                report["shortfall"] = self.shortfall(self.sla_interval)
                report["headroom"] = self.headroom(self.sla_interval)
            if self.telemetry is not None:
                t = self.env.now
                if report["latency_mean"] is not None:
                    self.telemetry.record(container.name, "latency_mean", t, report["latency_mean"])
                self.telemetry.record(container.name, "queued", t, report["queued"])
                self.telemetry.record(
                    container.name, "buffer_occupancy", t, report["buffer_occupancy"]
                )
                self.telemetry.record(container.name, "units", t, container.units)
            message = Message(
                MessageType.METRIC_REPORT, sender=self.endpoint.name, payload=report
            )
            try:
                if self.send_report is not None:
                    yield self.send_report(message)
                else:
                    yield self.messenger.send(self.node, self.global_name, message)
            except FaultError:
                # Reporting is best-effort under faults: a lost report shows
                # up as manager silence at the global detector, which is the
                # intended signal; the loop itself must survive.
                continue

    def stop(self) -> None:
        for proc in (self._control_proc, self._monitor_proc):
            if proc.is_alive:
                proc.interrupt("stop")
        if self.detector is not None:
            self.detector.stop()
        for sender in self._hb_senders.values():
            sender.stop()
        self._hb_senders.clear()
        if self._hb_monitor is not None:
            self._hb_monitor.stop()
            self._hb_monitor = None
