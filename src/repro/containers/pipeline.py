"""Pipeline assembly: LAMMPS -> Helper -> Bonds -> CSym (-> CNA) under management.

:class:`PipelineBuilder` wires the full experiment stack the paper evaluates:
the simulated machine, the staging partition and its scheduler, the DataTap
links, the LAMMPS driver, one container per SmartPointer stage, the local
managers, and the global manager.  The resulting :class:`Pipeline` exposes
``run()`` plus the telemetry the Figure 7-10 benches print.

The default stage allocations per workload reproduce the paper's three
configurations (see DESIGN.md's experiment index); all knobs are exposed for
the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simkernel import Environment
from repro.simkernel.errors import SimulationError
from repro.cluster.machine import Machine
from repro.cluster.presets import franklin
from repro.cluster.scheduler import AprunModel, BatchScheduler
from repro.containers.container import Container
from repro.containers.global_manager import GlobalManager
from repro.containers.local_manager import LocalManager
from repro.containers.policy import LatencyPolicy, ManagementPolicy
from repro.containers.protocol import ProtocolTracer
from repro.controlplane import ControlPlaneEngine, ControlPlaneTrace
from repro.datatap.link import DataTapLink
from repro.datatap.scheduling import PullScheduler
from repro.datatap.writer import DataTapWriter
from repro.adios.filesystem import ParallelFileSystem
from repro.evpath.channel import Messenger
from repro.lammps.driver import LammpsDriver
from repro.lammps.workload import WeakScalingWorkload
from repro.monitoring.metrics import Telemetry
from repro.perf.registry import REGISTRY as PERF
from repro.smartpointer.component import SMARTPOINTER_COMPONENTS, ComponentSpec
from repro.smartpointer.costs import ComputeModel


@dataclass
class StageConfig:
    """Configuration of one pipeline stage (container)."""

    component: str
    units: int
    model: ComputeModel
    queue_capacity: int = 1
    standby: bool = False
    #: name of the stage this one reads from; None = reads the simulation
    upstream: Optional[str] = None
    #: SLA class: 1.0 = deadline (finish by the next timestep, e.g.
    #: checkpointing); < 1.0 = low latency (e.g. crack discovery)
    sla_factor: float = 1.0
    #: explicit component spec (e.g. the S3D set); None = look up the
    #: SmartPointer registry by component name
    component_spec: Optional[ComponentSpec] = None

    def spec(self) -> ComponentSpec:
        if self.component_spec is not None:
            return self.component_spec
        return SMARTPOINTER_COMPONENTS[self.component]


def default_stages(workload: WeakScalingWorkload) -> List[StageConfig]:
    """The paper's allocations for the three Figure 7-9 configurations."""
    helper_needed = SMARTPOINTER_COMPONENTS["helper"].cost.units_to_sustain(
        workload.natoms, workload.output_interval, ComputeModel.TREE
    )
    if workload.sim_nodes <= 256:
        units = {"helper": 4, "bonds": 4, "csym": 3, "cna": 2}
    elif workload.sim_nodes <= 512:
        units = {"helper": 3, "bonds": 9, "csym": 5, "cna": 3}
    else:
        units = {"helper": max(6, helper_needed), "bonds": 7, "csym": 4, "cna": 3}
    return [
        StageConfig("helper", units["helper"], ComputeModel.TREE, upstream=None),
        StageConfig("bonds", units["bonds"], ComputeModel.ROUND_ROBIN, upstream="helper"),
        StageConfig("csym", units["csym"], ComputeModel.ROUND_ROBIN, upstream="bonds"),
        StageConfig("cna", units["cna"], ComputeModel.ROUND_ROBIN, upstream="bonds",
                    standby=True),
    ]


class Pipeline:
    """A fully wired experiment; see :class:`PipelineBuilder`."""

    def __init__(self, env: Environment):
        self.env = env
        self.machine: Optional[Machine] = None
        self.messenger: Optional[Messenger] = None
        self.scheduler: Optional[BatchScheduler] = None
        self.fs: Optional[ParallelFileSystem] = None
        self.telemetry = Telemetry()
        self.tracer = ProtocolTracer()
        #: one control-plane engine shared by every manager in the pipeline,
        #: with its own trace store (isolated from the module default so
        #: concurrent pipelines don't interleave traces)
        self.control_trace = ControlPlaneTrace()
        self.control_plane = ControlPlaneEngine(env, trace=self.control_trace)
        self.driver: Optional[LammpsDriver] = None
        #: multi-tenant identity: the owning fleet (if any) and the tenant
        #: name this pipeline runs under.  Set by the fleet builder; the
        #: fleet-wide DST invariants key off ``fleet`` being non-None.
        self.fleet = None
        self.tenant: Optional[str] = None
        self.containers: Dict[str, Container] = {}
        self.managers: Dict[str, LocalManager] = {}
        self.global_manager: Optional[GlobalManager] = None
        self.links: Dict[str, DataTapLink] = {}
        self.monitoring_overlay = None
        self.recovery = None
        self.fault_injector = None
        self.branch_fired = False
        self.end_to_end: List[tuple] = []  # (exit_time, timestep, latency)
        #: which sink recorded each exit — (exit_time, sink_name, timestep).
        #: A fan-out topology has several sinks, each delivering the full
        #: stream once; exactly-once is per (sink, timestep) pair.
        self.exit_log: List[tuple] = []
        #: overload accounting: every deliberate drop is a ShedRecord, and
        #: records for already-delivered timesteps are suppressed
        self._exited_steps: set = set()
        from repro.overload import DegradationTrace, ShedLedger

        self.shed_ledger = ShedLedger(is_delivered=self._exited_steps.__contains__)
        #: structured record of every degradation/restoration transition
        self.degradation = DegradationTrace()
        #: overload controllers, attached by the builder when enabled
        self.backpressure = None
        self.brownout = None
        #: predictive manager (repro.analytics), attached by the builder
        #: when the spec's overload block says ``mode: predictive``
        self.analytics = None
        #: degrade-to-disk failover (repro.adios.failover) and its ledger,
        #: attached by the builder when the spec's failover block is set;
        #: None keeps every legacy path byte-identical
        self.failover = None
        self.spill_ledger = None

    def run(self, settle: float = 60.0, deadline: Optional[float] = None) -> bool:
        """Run until the driver finishes (plus ``settle`` seconds of drain).

        ``deadline`` caps the simulated time waited for the driver — without
        it, a fully blocked pipeline (the pathology containers exist to
        prevent) would tick its monitoring loops forever.  Defaults to 4x
        the nominal run length.  Returns True if the driver finished.
        """
        if self.driver is None:
            raise SimulationError("pipeline has no driver")
        wl = self.driver.workload
        if deadline is None:
            deadline = 4.0 * wl.total_steps * wl.output_interval
        # Wall-clock of the whole DES run lands in the shared perf registry
        # (the same one the analytics kernels report to), so end-to-end
        # experiment timings show up in BENCH_kernels.json alongside them.
        with PERF.timer("pipeline.run"):
            self.env.run(until=self.env.any_of(
                [self.driver.finished, self.env.timeout(deadline)]
            ))
            finished = self.driver.finished.triggered
            if finished:
                self.env.run(until=self.env.now + settle)
            if self.global_manager is not None:
                self.global_manager.stop()
            if self.monitoring_overlay is not None:
                self.monitoring_overlay.stop()
            if self.backpressure is not None:
                self.backpressure.stop()
            if self.brownout is not None:
                self.brownout.stop()
            if self.analytics is not None:
                self.analytics.stop()
        # Attribute wall-clock to engine overhead: events processed,
        # tombstones skipped, heap high-water mark (delta-published, so a
        # later drain/publish never double-counts).  getattr-guarded so the
        # frozen ReferenceEnvironment can still drive a pipeline in benches.
        publish = getattr(self.env, "publish_perf", None)
        if publish is not None:
            publish(PERF)
        return finished

    def node_census(self) -> dict:
        """Where every staging node currently is, by node id.

        The :mod:`repro.dst` node-conservation oracle's raw data: the
        scheduler's pool, its free list (as a list — duplicates are a bug
        the oracle checks for), quarantined crash victims, and the nodes
        held by containers (live replicas plus standby reservations).
        Census by replica/standby membership, not scheduler jobs: several
        recovery paths legitimately move nodes without updating job
        bookkeeping.
        """
        sched = self.scheduler
        pool = {n.node_id for n in sched.pool.nodes}
        free = [n.node_id for n in sched._free]
        failed = {n.node_id for n in sched.failed_nodes if n.node_id in pool}
        held = set()
        for container in self.containers.values():
            for replica in container.replicas:
                if not replica.crashed and replica.node.node_id in pool:
                    held.add(replica.node.node_id)
            for node in container.standby_nodes:
                if node.node_id not in failed:
                    held.add(node.node_id)
        return {"pool": pool, "free": free, "failed": failed, "held": held}

    def perf_snapshot(self) -> dict:
        """Timers/counters accumulated during this process's runs — the
        machine-readable view the kernel bench serializes."""
        return PERF.snapshot()

    # -- convenience metrics ------------------------------------------------------------

    def latency_series(self, container: str):
        series = self.telemetry.get(container, "step_latency")
        return ([], []) if series is None else (series.times, series.values)

    def record_exit(self, chunk, sink: str = "pipeline") -> None:
        latency = self.env.now - chunk.created_at
        PERF.count("pipeline.exits")
        self._exited_steps.add(chunk.timestep)
        self.end_to_end.append((self.env.now, chunk.timestep, latency))
        self.exit_log.append((self.env.now, sink, chunk.timestep))
        self.telemetry.record("pipeline", "end_to_end", self.env.now, latency)
        self.telemetry.record("pipeline", "end_to_end_by_step", chunk.timestep, latency)

    # -- fault injection -------------------------------------------------------------------

    def arm_faults(self, plan):
        """Attach a :class:`~repro.faults.FaultPlan` to the running pipeline.

        Installs the network fault state on the machine's fabric and starts
        the cluster injector over every machine node; a node crash takes its
        resident replicas down with it (violently — recovery rebuilds from
        upstream custody).  Called after build() so schedules can target the
        concrete node ids the stages landed on.
        """
        from repro.faults import ClusterFaultInjector, NetworkFaultState

        self.machine.network.faults = NetworkFaultState(self.env, plan)
        injector = ClusterFaultInjector(
            self.env, plan, self.machine.nodes, scheduler=self.scheduler
        )
        injector.on_crash(self._on_node_crash)
        injector.start()
        self.fault_injector = injector
        return injector

    def _on_node_crash(self, node) -> None:
        for container in self.containers.values():
            for replica in list(container.replicas):
                if replica.node is node and not replica.crashed:
                    replica.crash()

    # -- interactive (mid-run) launches ---------------------------------------------------

    def launch_stage(
        self,
        spec,
        units: int,
        upstream: str,
        name: Optional[str] = None,
        model=None,
        queue_capacity: int = 1,
        monitor_interval: float = 15.0,
    ):
        """Process: launch a new analytics/visualization container mid-run.

        The paper's interactive scenario ("a user can also launch a
        visualization code when needed"): the new container reads the
        ``upstream`` stage's output — an output link is attached to that
        stage on the fly if it was a sink — takes ``units`` nodes from the
        spare pool via the regular increase protocol, and becomes a managed
        citizen: it reports metrics and can donate nodes (be stolen from)
        like any other non-essential container.
        """
        return self.env.process(
            self._launch_stage(spec, units, upstream, name, model,
                               queue_capacity, monitor_interval),
            name=f"launch:{name or spec.name}",
        )

    def _launch_stage(self, spec, units, upstream, name, model,
                      queue_capacity, monitor_interval):
        from repro.smartpointer.costs import ComputeModel

        name = name or spec.name
        if name in self.containers:
            raise SimulationError(f"stage {name!r} already exists")
        up = self.containers[upstream]
        # Every consumer stage gets its own link so it sees the *full*
        # upstream stream; sharing a link would round-robin-split it.
        link = DataTapLink(self.env, self.messenger, name=f"->{name}")
        up.attach_output_link(link)
        self.links[name] = link
        container = Container(
            self.env,
            self.messenger,
            spec,
            model or spec.default_model(),
            input_link=link,
            output_link=None,
            name=name,
            queue_capacity=queue_capacity,
            sink_fs=self.fs,
            natoms_hint=self.driver.workload.natoms if self.driver else 0,
        )
        self.containers[name] = container
        container.on_complete = self.make_on_complete(name)
        # The manager rides on the global manager's node until the first
        # replica exists; replicas spawn through the standard protocol.
        manager = LocalManager(
            self.env,
            self.messenger,
            container,
            node=self.global_manager.node,
            scheduler=self.scheduler,
            tracer=self.tracer,
            telemetry=self.telemetry,
            monitor_interval=monitor_interval,
            sla_interval=self.global_manager.sla_interval,
            engine=self.control_plane,
        )
        self.managers[name] = manager
        self.global_manager.register(manager, depends_on=upstream)
        self.telemetry.mark(self.env.now, f"interactive launch {name}")
        result = yield self.global_manager.increase(name, units)
        if self.failover is not None:
            # A cold-start consumer catches up on the spilled history
            # before it sees live data (full-history replay).
            self.failover.request_catchup()
        return container

    # -- completion hooks -------------------------------------------------------------------

    def make_on_complete(self, name: str):
        env = self.env

        def on_complete(container: Container, in_chunk, out_chunk) -> None:
            latency = env.now - in_chunk.entered_stage_at
            self.telemetry.record(name, "step_latency", env.now, latency)
            self.telemetry.record(name, "latency_by_step", in_chunk.timestep, latency)
            # Pipeline exit: a sink stage, or a stage whose downstream was
            # pruned (its output goes to disk).
            if container.output_link is None or container.offline_downstream():
                self.record_exit(out_chunk, sink=name)
            # Dynamic branch: CSym sees the crack marker.
            if (
                name == "csym"
                and not self.branch_fired
                and isinstance(in_chunk.payload, dict)
                and in_chunk.payload.get("crack")
            ):
                self.branch_fired = True
                env.process(self._fire_branch(), name="branch")

        return on_complete

    def _fire_branch(self):
        """CSym detected a break: activate CNA on Bonds' output, retire CSym.

        (Section III-B1: on detection the next stage, CNA, starts reading
        data from Bonds; the CSym path ends.)
        """
        gm = self.global_manager
        self.telemetry.mark(self.env.now, "crack detected: branch to CNA")
        if "cna" in self.containers:
            cna = self.containers["cna"]
            bonds = self.containers.get("bonds")
            if bonds is not None and bonds.output_link is not None:
                cna.input_link = bonds.output_link
            yield gm.activate("cna")
        yield gm.retire("csym")


class PipelineBuilder:
    """Builds a :class:`Pipeline` for a workload."""

    def __init__(
        self,
        env: Environment,
        workload: WeakScalingWorkload,
        stages: Optional[List[StageConfig]] = None,
        policy: Optional[ManagementPolicy] = None,
        machine: Optional[Machine] = None,
        num_sim_writers: int = 4,
        control_interval: float = 30.0,
        monitor_interval: float = 15.0,
        crack_step: Optional[int] = None,
        use_pull_scheduler: bool = True,
        sla_interval: Optional[float] = None,
        overflow_occupancy: float = 0.35,
        overflow_horizon: float = 150.0,
        aprun: Optional[AprunModel] = None,
        seed: int = 0,
        transaction_manager=None,
        placement: str = "naive",
        monitoring: str = "direct",
        stage_buffer_bytes: Optional[float] = None,
        sim_buffer_bytes: Optional[float] = None,
        fault_plan=None,
        fault_tolerance: Optional[bool] = None,
        heartbeat_interval: float = 1.0,
        lease_timeout: float = 5.0,
        manager_lease_timeout: Optional[float] = None,
        backpressure=False,
        brownout=False,
        predictive=False,
        failover=False,
        retry_jitter: float = 0.0,
        tenant: Optional[str] = None,
    ):
        self.env = env
        self.workload = workload
        #: fleet tenancy: prefixes this pipeline's machine partitions and
        #: namespaces its scheduler occupancy counters as ``fleet.<tenant>.*``
        self.tenant = tenant
        self.stages = stages if stages is not None else default_stages(workload)
        self.policy = policy or LatencyPolicy(overflow_occupancy=overflow_occupancy)
        self.machine = machine
        self.num_sim_writers = num_sim_writers
        self.control_interval = control_interval
        self.monitor_interval = monitor_interval
        self.crack_step = crack_step
        self.use_pull_scheduler = use_pull_scheduler
        self.sla_interval = sla_interval or workload.output_interval
        self.overflow_horizon = overflow_horizon
        self.aprun = aprun or AprunModel()
        self.seed = seed
        self.transaction_manager = transaction_manager
        if placement not in ("naive", "topology"):
            raise ValueError(f"unknown placement strategy {placement!r}")
        self.placement = placement
        if monitoring not in ("direct", "overlay"):
            raise ValueError(f"unknown monitoring mode {monitoring!r}")
        self.monitoring = monitoring
        #: caps on staging buffers (None = node-memory defaults); tightening
        #: these makes the blocking pathology reproducible at small scale
        self.stage_buffer_bytes = stage_buffer_bytes
        self.sim_buffer_bytes = sim_buffer_bytes
        #: fault tolerance: chunk custody/redelivery, replica heartbeats,
        #: and a RecoveryManager.  Defaults on when a fault plan is given.
        self.fault_plan = fault_plan
        self.fault_tolerance = (
            fault_tolerance if fault_tolerance is not None else fault_plan is not None
        )
        self.heartbeat_interval = heartbeat_interval
        self.lease_timeout = lease_timeout
        self.manager_lease_timeout = (
            manager_lease_timeout
            if manager_lease_timeout is not None
            else 4.0 * monitor_interval
        )
        #: overload subsystems: False = off (byte-identical legacy paths),
        #: True = defaults, or a dict of config overrides for the controller
        self.backpressure = backpressure
        self.brownout = brownout
        #: forecast-driven management: False = reactive controllers only
        #: (byte-identical schedules), True = PredictiveConfig defaults,
        #: or a dict of PredictiveConfig overrides
        self.predictive = predictive
        #: degrade-to-disk failover: False = lossy sheds (legacy), True =
        #: FailoverPolicy defaults, or a dict of FailoverPolicy overrides
        self.failover = failover
        #: seeded scatter on the messenger's retry backoff; 0 keeps the
        #: historical fixed ladder byte-identically
        self.retry_jitter = retry_jitter

    def build(self) -> Pipeline:
        env = self.env
        wl = self.workload
        pipe = Pipeline(env)

        # Machine and partitions.  The simulation partition only needs the
        # writer nodes to exist as endpoints; we size the machine at
        # writers + staging to keep the topology graph small, while the
        # workload object carries the logical simulation node count.
        machine = self.machine or franklin(
            env, num_nodes=self.num_sim_writers + wl.staging_nodes + 2
        )
        pipe.machine = machine
        pipe.tenant = self.tenant
        prefix = f"{self.tenant}:" if self.tenant else ""
        sim_part = machine.partition(f"{prefix}sim", self.num_sim_writers)
        staging = machine.partition(f"{prefix}staging", wl.staging_nodes)

        if self.retry_jitter:
            from repro.evpath.channel import RetryPolicy

            retry = RetryPolicy(jitter=self.retry_jitter, seed=self.seed)
            messenger = Messenger(env, machine.network, retry=retry)
        else:
            messenger = Messenger(env, machine.network)
        pipe.messenger = messenger
        fs = ParallelFileSystem(env)
        pipe.fs = fs
        scheduler = BatchScheduler(
            env, staging, aprun=self.aprun,
            label=f"fleet.{self.tenant}" if self.tenant else "cluster.scheduler",
        )
        pipe.scheduler = scheduler

        import numpy as np

        scheduler.rng = np.random.default_rng(self.seed)

        # Global manager co-located on the first staging node (a management
        # process, not a replica slot — documented in DESIGN.md).
        gm_node = staging[0]
        gm = GlobalManager(
            env,
            messenger,
            gm_node,
            scheduler,
            sla_interval=self.sla_interval,
            policy=self.policy,
            tracer=pipe.tracer,
            telemetry=pipe.telemetry,
            control_interval=self.control_interval,
            overflow_horizon=self.overflow_horizon,
            transaction_manager=self.transaction_manager,
            engine=pipe.control_plane,
        )
        if self.tenant is not None:
            gm.tenant = self.tenant
        pipe.global_manager = gm

        # Links: one per stage boundary, keyed by the consumer stage name.
        links: Dict[str, DataTapLink] = {}
        for stage in self.stages:
            key = stage.component
            links[key] = DataTapLink(env, messenger, name=f"->{key}")
        pipe.links = links

        # LAMMPS writers feed the stage whose upstream is None.
        first_stage = next(s for s in self.stages if s.upstream is None)
        from repro.datatap.buffer import StagingBuffer

        sim_writers = [
            DataTapWriter(
                env, messenger, sim_part[i % len(sim_part)],
                buffer=(
                    StagingBuffer(env, sim_part[i % len(sim_part)],
                                  capacity_bytes=self.sim_buffer_bytes,
                                  name=f"lammps-w{i}.buf")
                    if self.sim_buffer_bytes is not None else None
                ),
                name=f"lammps-w{i}",
                retain_until_processed=self.fault_tolerance,
            )
            for i in range(self.num_sim_writers)
        ]
        for writer in sim_writers:
            links[first_stage.component].add_writer(writer)

        pull_sched = (
            PullScheduler(env, max_concurrent_pulls=4, defer_during_output=True)
            if self.use_pull_scheduler
            else None
        )
        driver = LammpsDriver(
            env, sim_writers, wl, crack_step=self.crack_step,
            pull_scheduler=pull_sched,
        )
        pipe.driver = driver

        # Patch driver writes so chunks get their stage-entry timestamp.
        self._instrument_driver(driver)

        # Containers bottom-up: output links must exist before replicas are
        # spawned, so create containers in stage order, then allocate nodes.
        downstream_of: Dict[str, List[str]] = {}
        for stage in self.stages:
            if stage.upstream is not None:
                downstream_of.setdefault(stage.upstream, []).append(stage.component)

        # Topology-aware placement (the paper's future-work extension):
        # precompute a stage -> node assignment minimizing hop-weighted data
        # movement; otherwise stages take nodes first-fit.
        planned: Optional[Dict[str, List]] = None
        if self.placement == "topology":
            from repro.containers.placement import (
                TopologyAwarePlacement,
                pipeline_placement_problem,
            )

            ratios = {s.component: s.spec().output_ratio for s in self.stages}
            edges = []
            for stage in self.stages:
                upstream = stage.upstream or "sim"
                volume = wl.bytes_per_step
                if stage.upstream is not None:
                    volume *= ratios.get(stage.upstream, 1.0)
                edges.append((upstream, stage.component, volume))
            problem = pipeline_placement_problem(
                machine,
                {s.component: s.units for s in self.stages},
                edges,
                staging_nodes=scheduler.peek_free(),
                sim_io_nodes=list(sim_part.nodes),
            )
            planned = TopologyAwarePlacement().plan(machine, problem).assignment

        for stage in self.stages:
            name = stage.component
            spec = stage.spec()
            consumers = downstream_of.get(name, [])
            standby_names = {s.component for s in self.stages if s.standby}
            # Each active consumer gets its own link (every consumer sees the
            # full stream).  Standby consumers (CNA) do not get a link up
            # front: the paper's branch *swaps* the reader set — on
            # activation, CNA's readers join the first consumer's link in
            # place of the retiring CSym (see Pipeline._fire_branch).  A
            # stage whose consumers are all standby keeps one link so the
            # branch has something to join; until then it emits to disk.
            active_consumers = [c for c in consumers if c not in standby_names]
            if active_consumers:
                output_links = [links[c] for c in active_consumers]
            elif consumers:
                output_links = [links[consumers[0]]]
            else:
                output_links = []
            container = Container(
                env,
                messenger,
                spec,
                stage.model,
                # the *stage* name, not spec.name: several stages may run the
                # same component, and managers/recovery key on this
                name=name,
                input_link=links[name],
                output_links=output_links,
                queue_capacity=stage.queue_capacity,
                gather_count=self.num_sim_writers if stage.upstream is None else 1,
                # DataStager scheduling gates the pulls that cross from the
                # simulation into the staging area (the first stage); pulls
                # between staging nodes stay unscheduled.
                pull_scheduler=pull_sched if stage.upstream is None else None,
                sink_fs=fs,
                active=not stage.standby,
                natoms_hint=wl.natoms,
                writer_buffer_bytes=self.stage_buffer_bytes,
                sla_factor=stage.sla_factor,
                retain_output=self.fault_tolerance,
            )
            pipe.containers[name] = container

            if planned is not None:
                job = scheduler.allocate_specific(planned[name], name=name)
            else:
                job = scheduler.allocate(stage.units, name=name)
            if stage.standby:
                container.standby_nodes = list(job.nodes)
            else:
                for node in job.nodes:
                    container.add_replica(node)

            manager = LocalManager(
                env,
                messenger,
                container,
                node=job.nodes[0],
                scheduler=scheduler,
                tracer=pipe.tracer,
                telemetry=pipe.telemetry,
                monitor_interval=self.monitor_interval,
                sla_interval=self.sla_interval,
                engine=pipe.control_plane,
            )
            pipe.managers[name] = manager
            gm.register(manager, depends_on=stage.upstream)

        # Completion hooks: per-container latency telemetry, pipeline-exit
        # end-to-end latency, and the CSym crack branch.
        for name, container in pipe.containers.items():
            container.on_complete = pipe.make_on_complete(name)

        # Shed accounting is always wired (recording is pure bookkeeping —
        # a run that never sheds is unchanged); the controllers that *cause*
        # sheds are strictly opt-in below.
        for container in pipe.containers.values():
            container.shed_ledger = pipe.shed_ledger
        gm.shed_ledger = pipe.shed_ledger
        driver.on_shed = lambda step: pipe.shed_ledger.record(
            step, "lammps", "backpressure_stride", env.now
        )

        # Ladder transitions and shed records publish their deltas into
        # telemetry as they happen (pure bookkeeping: no events, and a run
        # that never degrades or sheds records nothing).
        telemetry = pipe.telemetry

        def _publish_transition(step, trace, _t=telemetry):
            _t.record("overload", "degradation_level", step.time,
                      float(trace.overall_level))
            _t.record("overload", "time_in_degraded", step.time,
                      trace.time_in_degraded(step.time))

        def _publish_shed(record, ledger, _t=telemetry):
            _t.record("overload", "shed_steps", record.time,
                      float(len(ledger.steps())))

        pipe.degradation.subscribers.append(_publish_transition)
        pipe.shed_ledger.subscribers.append(_publish_shed)

        predictor = None
        if self.predictive:
            from repro.analytics import PredictiveConfig, PredictiveManager

            pm_kwargs = self.predictive if isinstance(self.predictive, dict) else {}
            predictor = PredictiveManager(
                env, pipe, config=PredictiveConfig(**pm_kwargs)
            )
            predictor.attach(pipe)
            pipe.analytics = predictor

        if self.backpressure:
            from repro.overload import BackpressureController, LinkCredits

            for link in links.values():
                link.credits = LinkCredits(env, link)
            bp_kwargs = self.backpressure if isinstance(self.backpressure, dict) else {}
            pipe.backpressure = BackpressureController(
                env, pipe, degradation=pipe.degradation, predictor=predictor,
                **bp_kwargs
            )
        if self.brownout:
            from repro.overload import BrownoutConfig, BrownoutController, NullPolicy

            # The ladder owns remediation; the legacy policy loop would
            # fight it (and its offline decisions are permanent).
            gm.policy = NullPolicy()
            bo_kwargs = self.brownout if isinstance(self.brownout, dict) else {}
            pipe.brownout = BrownoutController(
                env, gm, config=BrownoutConfig(**bo_kwargs),
                degradation=pipe.degradation, predictor=predictor,
            )

        # Monitoring transport: direct manager-to-manager messages (default)
        # or a windowed aggregation overlay (Section III-E) whose root sits
        # on the global manager's node.
        if self.monitoring == "overlay":
            from repro.evpath.overlay import OverlayTree

            leaf_nodes = []
            seen_ids = set()
            for manager in pipe.managers.values():
                if manager.node.node_id not in seen_ids:
                    seen_ids.add(manager.node.node_id)
                    leaf_nodes.append(manager.node)
            overlay = OverlayTree(
                env,
                messenger,
                gm_node,
                leaf_nodes,
                on_report=lambda msg: gm.ingest_report(msg.payload),
                flush_interval=self.monitor_interval,
            )
            pipe.monitoring_overlay = overlay
            for manager in pipe.managers.values():
                manager.send_report = (
                    lambda message, _node=manager.node: overlay.submit(_node, message)
                )

        # Fault tolerance: replica heartbeat leases into each local manager,
        # manager liveness tracked off the metric-report stream, and the
        # recovery protocols behind both.
        if self.fault_tolerance:
            from repro.containers.recovery import RecoveryManager

            for manager in pipe.managers.values():
                manager.enable_fault_detection(
                    lease_timeout=self.lease_timeout,
                    heartbeat_interval=self.heartbeat_interval,
                )
            pipe.recovery = RecoveryManager(
                env, messenger, gm,
                manager_lease_timeout=self.manager_lease_timeout,
            )

        # Degrade-to-disk failover: intercept sheds into the spill store,
        # replay them once the consumer side is healthy again.  Attached
        # last so it sees the recovery manager and the credit-equipped
        # links; the fault plan arms after it so injected crashes hit a
        # fully wired failover path.
        if self.failover:
            from repro.adios.failover import FailoverManager, FailoverPolicy

            fo_kwargs = self.failover if isinstance(self.failover, dict) else {}
            FailoverManager(env, pipe, policy=FailoverPolicy(**fo_kwargs))

        if self.fault_plan is not None:
            pipe.arm_faults(self.fault_plan)

        return pipe

    # -- hooks ------------------------------------------------------------------------------

    def _instrument_driver(self, driver: LammpsDriver) -> None:
        for writer in driver.writers:
            original = writer.write

            def stamped(chunk, _orig=original, _env=self.env):
                chunk.entered_stage_at = _env.now
                return _orig(chunk)

            writer.write = stamped

