"""Topology-aware container placement.

The paper's future work (Section V): "how to place and co-locate containers
on the petascale machine to reduce simulation-to-analytics data movement
and taking into account node and interconnect topologies."

This module implements that extension.  Given the pipeline's stage graph,
per-edge data volumes, and the machine topology, a placement assigns each
stage's replicas to staging nodes so that the *hop-weighted* data movement
is minimized:

    cost(placement) = sum over edges (u -> v) of
        volume(u, v) * mean_hops(nodes(u), nodes(v))

Two planners are provided:

* :class:`NaivePlacement` — first-fit in stage order (what the base builder
  does implicitly); the baseline.
* :class:`TopologyAwarePlacement` — greedy chain placement: stages are laid
  out in pipeline order, each stage picking the free nodes closest (in
  topology hops) to its upstream stage's nodes, with the first stage pulled
  toward the simulation partition's I/O nodes.

The ablation bench (`bench_placement.py`) quantifies the reduction in
mean per-chunk transfer latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cluster.machine import Machine
from repro.cluster.node import Node


@dataclass
class PlacementProblem:
    """Inputs to a placement planner.

    ``stages`` maps stage name -> node count; ``edges`` lists
    ``(producer, consumer, bytes_per_step)``; producers named in ``edges``
    but absent from ``stages`` are *anchors* — already-placed endpoints such
    as the simulation's I/O writer nodes, given in ``anchors``.
    """

    stages: Dict[str, int]
    edges: List[Tuple[str, str, float]]
    candidate_nodes: List[Node]
    anchors: Dict[str, List[Node]] = field(default_factory=dict)

    def validate(self) -> None:
        demand = sum(self.stages.values())
        if demand > len(self.candidate_nodes):
            raise ValueError(
                f"placement needs {demand} nodes, {len(self.candidate_nodes)} available"
            )
        names = set(self.stages) | set(self.anchors)
        for producer, consumer, volume in self.edges:
            if producer not in names or consumer not in names:
                raise ValueError(f"edge ({producer}->{consumer}) references unknown stage")
            if volume < 0:
                raise ValueError("edge volume must be non-negative")


@dataclass
class Placement:
    """A stage -> nodes assignment plus its evaluated cost."""

    assignment: Dict[str, List[Node]]
    cost: float

    def nodes_of(self, stage: str) -> List[Node]:
        return self.assignment[stage]


def mean_hops(machine: Machine, a: Sequence[Node], b: Sequence[Node]) -> float:
    """Average topology hop count over the bipartite node pairs."""
    if not a or not b:
        return 0.0
    total = 0
    for left in a:
        for right in b:
            total += machine.network.hops(left.node_id, right.node_id)
    return total / (len(a) * len(b))


def placement_cost(machine: Machine, problem: PlacementProblem,
                   assignment: Dict[str, List[Node]]) -> float:
    """Hop-weighted bytes moved per output step under ``assignment``."""
    located = dict(problem.anchors)
    located.update(assignment)
    cost = 0.0
    for producer, consumer, volume in problem.edges:
        cost += volume * mean_hops(machine, located[producer], located[consumer])
    return cost


class NaivePlacement:
    """Baseline: assign stages first-fit in declaration order."""

    def plan(self, machine: Machine, problem: PlacementProblem) -> Placement:
        problem.validate()
        free = list(problem.candidate_nodes)
        assignment: Dict[str, List[Node]] = {}
        for stage, count in problem.stages.items():
            assignment[stage] = [free.pop(0) for _ in range(count)]
        return Placement(assignment, placement_cost(machine, problem, assignment))


class TopologyAwarePlacement:
    """Greedy chain placement minimizing hop-weighted data movement.

    Stages are processed in order of their largest incoming data volume
    (heaviest consumers first, so they get the prime spots next to their
    producers).  Each stage's nodes are chosen greedily: the free node with
    the smallest volume-weighted hop distance to all already-placed
    neighbours of the stage.
    """

    def plan(self, machine: Machine, problem: PlacementProblem) -> Placement:
        problem.validate()
        free = list(problem.candidate_nodes)
        located: Dict[str, List[Node]] = dict(problem.anchors)
        assignment: Dict[str, List[Node]] = {}

        # Neighbour volumes per stage (incoming and outgoing both pull).
        neighbor_volumes: Dict[str, List[Tuple[str, float]]] = {s: [] for s in problem.stages}
        for producer, consumer, volume in problem.edges:
            if consumer in neighbor_volumes:
                neighbor_volumes[consumer].append((producer, volume))
            if producer in neighbor_volumes:
                neighbor_volumes[producer].append((consumer, volume))

        order = sorted(
            problem.stages,
            key=lambda s: -max((v for _, v in neighbor_volumes[s]), default=0.0),
        )
        for stage in order:
            chosen: List[Node] = []
            for _ in range(problem.stages[stage]):
                best_node, best_score = None, None
                for node in free:
                    score = 0.0
                    for neighbor, volume in neighbor_volumes[stage]:
                        anchor_nodes = located.get(neighbor)
                        if not anchor_nodes:
                            continue
                        hops = min(
                            machine.network.hops(node.node_id, other.node_id)
                            for other in anchor_nodes
                        )
                        score += volume * hops
                    if best_score is None or score < best_score:
                        best_node, best_score = node, score
                chosen.append(best_node)
                free.remove(best_node)
            assignment[stage] = chosen
            located[stage] = chosen
        return Placement(assignment, placement_cost(machine, problem, assignment))


def pipeline_placement_problem(
    machine: Machine,
    stage_units: Dict[str, int],
    stage_edges: List[Tuple[str, str, float]],
    staging_nodes: List[Node],
    sim_io_nodes: List[Node],
) -> PlacementProblem:
    """Convenience constructor for the standard LAMMPS pipeline shape."""
    return PlacementProblem(
        stages=dict(stage_units),
        edges=list(stage_edges),
        candidate_nodes=list(staging_nodes),
        anchors={"sim": list(sim_io_nodes)},
    )
