"""The global manager: pipeline-wide properties and control.

Maintains the dependency configuration, receives metric reports from the
local managers, runs the management policy on a control period, and executes
the resulting actions as message protocols against the local managers.
Resource trades can optionally be wrapped in D2T control transactions (the
resilient path evaluated in Figure 6), guaranteeing that a node removed from
a donor is either delivered to the recipient or returned.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.simkernel import Environment, Interrupt
from repro.simkernel.errors import SimulationError
from repro.simkernel.resources import Resource
from repro.cluster.node import Node
from repro.cluster.scheduler import BatchScheduler
from repro.containers.local_manager import LocalManager
from repro.containers.policy import (
    ContainerState,
    Increase,
    LatencyPolicy,
    ManagementPolicy,
    Offline,
    Steal,
)
from repro.containers.protocol import ProtocolTracer
from repro.controlplane import ControlPlaneEngine, ProtocolAbort, protocols
from repro.evpath.channel import Messenger
from repro.evpath.messages import Message, MessageType
from repro.monitoring.metrics import LatencyWindow, Telemetry


class GlobalManager:
    """Hierarchy root: one per pipeline."""

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        node: Node,
        scheduler: BatchScheduler,
        sla_interval: float,
        policy: Optional[ManagementPolicy] = None,
        tracer: Optional[ProtocolTracer] = None,
        telemetry: Optional[Telemetry] = None,
        control_interval: float = 30.0,
        overflow_horizon: float = 120.0,
        transaction_manager=None,
        engine: Optional[ControlPlaneEngine] = None,
    ):
        self.env = env
        self.messenger = messenger
        self.node = node
        self.scheduler = scheduler
        self.sla_interval = sla_interval
        self.policy = policy or LatencyPolicy()
        self.tracer = tracer or ProtocolTracer()
        self.engine = engine or ControlPlaneEngine(env)
        self.telemetry = telemetry or Telemetry()
        self.control_interval = control_interval
        self.overflow_horizon = overflow_horizon
        self.transaction_manager = transaction_manager

        self.endpoint = messenger.endpoint(node, "global-mgr")
        self.locals: Dict[str, LocalManager] = {}
        #: upstream -> downstream dependency edges (the "configuration file")
        self.dependencies = nx.DiGraph()
        self._reports: Dict[str, dict] = {}
        self._occupancy_hist: Dict[str, List] = {}
        self._queue_hist: Dict[str, List] = {}
        self.actions_taken: List[str] = []
        #: serializes policy actions against crash-recovery protocols so a
        #: REPLACE never interleaves with a resize of the same container
        self.control_lock = Resource(env, capacity=1)
        #: attached RecoveryManager, if fault tolerance is enabled
        self.recovery = None
        #: pipeline-wide shed ledger, when shed accounting is wired
        self.shed_ledger = None
        #: fleet identity: multi-tenant runs shard one GM per tenant and
        #: route spare-pool traffic through the shared FleetArbiter
        self.tenant = "default"
        self.arbiter = None
        self._recv_proc = env.process(self._recv_loop(), name="gm-recv")
        self._control_proc = env.process(self._control_loop(), name="gm-control")
        self._stopped = False

    # -- registration ------------------------------------------------------------------

    def register(self, manager: LocalManager, depends_on: Optional[str] = None) -> None:
        name = manager.container.name
        if name in self.locals:
            raise SimulationError(f"container {name!r} already registered")
        self.locals[name] = manager
        self.dependencies.add_node(name)
        if depends_on is not None:
            if depends_on not in self.locals:
                raise SimulationError(f"unknown upstream container {depends_on!r}")
            self.dependencies.add_edge(depends_on, name)

    def dependents_of(self, name: str) -> List[str]:
        """All containers downstream of ``name`` (must go offline with it)."""
        return list(nx.descendants(self.dependencies, name))

    def upstream_of(self, name: str) -> List[str]:
        return list(self.dependencies.predecessors(name))

    # -- message handling ----------------------------------------------------------------

    def _recv_loop(self):
        while True:
            try:
                msg = yield self.endpoint.recv(MessageType.METRIC_REPORT)
            except Interrupt:
                return
            self.ingest_report(msg.payload)

    def ingest_report(self, report: dict) -> None:
        """Record one metric report (from a direct message or an overlay)."""
        name = report["container"]
        if self.recovery is not None:
            # Manager liveness rides the existing monitoring path: every
            # report doubles as that local manager's heartbeat.
            self.recovery.note_report(name)
        self._reports[name] = report
        occ = self._occupancy_hist.setdefault(name, [])
        occ.append((report["time"], report["buffer_occupancy"]))
        del occ[:-16]
        qh = self._queue_hist.setdefault(name, [])
        qh.append((report["time"], float(report["queued"])))
        del qh[:-16]

    # -- control loop ------------------------------------------------------------------------

    def snapshot(self) -> Dict[str, ContainerState]:
        states = {}
        for name, manager in self.locals.items():
            container = manager.container
            report = self._reports.get(name, {})
            states[name] = ContainerState(
                name=name,
                units=container.units,
                latency_mean=report.get("latency_mean"),
                latency_est=report.get("latency_est"),
                queued=report.get("queued", 0),
                queue_samples=tuple(self._queue_hist.get(name, ())),
                occupancy_samples=tuple(self._occupancy_hist.get(name, ())),
                buffer_occupancy=report.get("buffer_occupancy", 0.0),
                # Prefer the local manager's own sizing figures (it knows
                # its component's cost model); fall back to asking directly.
                shortfall=report.get("shortfall", manager.shortfall(self.sla_interval)),
                headroom=report.get("headroom", manager.headroom(self.sla_interval)),
                essential=container.essential,
                offline=container.offline,
                active=container.active,
                sla_factor=container.sla_factor,
            )
        return states

    def _control_loop(self):
        while True:
            try:
                yield self.env.timeout(self.control_interval)
            except Interrupt:
                return
            if self._stopped:
                return
            states = self.snapshot()
            actions = self.policy.decide(
                states,
                spare_nodes=self.spare_capacity(),
                sla_interval=self.sla_interval,
                now=self.env.now,
                horizon=self.overflow_horizon,
            )
            if not actions:
                continue
            request = self.control_lock.request()
            yield request
            try:
                for action in actions:
                    if isinstance(action, Increase):
                        yield self.increase(action.container, action.count)
                    elif isinstance(action, Steal):
                        yield self.steal(action.donor, action.recipient, action.count)
                    elif isinstance(action, Offline):
                        yield self.take_offline(action.container)
            except SimulationError as exc:
                # The capacity the policy saw can be claimed out from under
                # the protocol — in a fleet, another tenant's GM races this
                # one for the arbiter's spares.  A lost race is a transient:
                # log it and let the next control period re-decide.
                self.actions_taken.append(f"action failed: {exc}")
                self.telemetry.mark(self.env.now, f"control action failed: {exc}")
            finally:
                self.control_lock.release(request)

    # -- fleet spare pool ---------------------------------------------------------------------

    def spare_capacity(self) -> int:
        """Spare nodes reachable by this GM: the tenant scheduler's free
        pool plus whatever the fleet arbiter would grant us right now."""
        extra = 0
        if self.arbiter is not None:
            extra = self.arbiter.available_to(self.tenant)
        return self.scheduler.free_nodes + extra

    def _borrow(self, count: int) -> int:
        """Top up the tenant free pool from the arbiter to cover ``count``.

        Synchronous (the arbiter is in-memory state, like the scheduler),
        so it is safe inside sync protocol rounds.  Returns the number of
        nodes actually granted; the grant may fall short of the shortfall
        when quota or spares run out.
        """
        if self.arbiter is None:
            return 0
        shortfall = count - self.scheduler.free_nodes
        if shortfall <= 0:
            return 0
        granted = self.arbiter.request(self.tenant, shortfall)
        return len(granted)

    def _return_borrowed(self, nodes: List[Node]) -> int:
        """Route any *borrowed* (and free) nodes back to the arbiter.

        Abort paths call this after restocking the tenant free list: loaned
        capacity must land back in the shared spare pool, not linger as a
        tenant-held spare the quota audit would flag.
        """
        if self.arbiter is None:
            return 0
        loaned = [
            n for n in nodes
            if self.scheduler.is_borrowed(n) and n in self.scheduler._free
        ]
        if loaned:
            self.arbiter.give_back(self.tenant, loaned)
        return len(loaned)

    # -- operations ---------------------------------------------------------------------------

    def increase(self, name: str, count: int, nodes: Optional[List[Node]] = None):
        """Process: grow ``name`` by ``count`` nodes (from spares or given)."""
        return self.env.process(self._increase(name, count, nodes), name=f"gm-incr:{name}")

    def _increase(self, name: str, count: int, nodes: Optional[List[Node]] = None):
        manager = self._manager(name)
        result = yield self.engine.execute(
            protocols.GM_INCREASE, subject=name,
            data={"gm": self, "manager": manager, "name": name,
                  "count": count, "nodes": nodes},
        )
        return result

    def _gmi_allocate(self, ctx) -> None:
        if ctx["nodes"] is None:
            name, count = ctx["name"], ctx["count"]
            if count > self.scheduler.free_nodes:
                self._borrow(count)
            if count > self.scheduler.free_nodes:
                raise SimulationError(
                    f"increase {name!r} by {count}: only {self.scheduler.free_nodes} spare"
                )
            job = self.scheduler.allocate(count, name=f"incr:{name}")
            ctx["nodes"] = job.nodes

    def _gmi_validate(self, ctx) -> None:
        # A target node died mid-protocol (e.g. between the donor's
        # decrease and this increase): abort, quarantine the dead nodes,
        # and return the survivors to the spare pool rather than handing
        # a dead node to the recipient.
        dead = [n for n in ctx["nodes"] if n.failed]
        if dead:
            raise ProtocolAbort(f"{len(dead)} target nodes dead")

    def _gmi_abort(self, ctx):
        name, nodes = ctx["name"], ctx["nodes"] or []
        dead = [n for n in nodes if n.failed]
        for node in dead:
            self.scheduler.mark_failed(node)
        alive = [n for n in nodes if not n.failed]
        for node in alive:
            if node not in self.scheduler._free:
                self.scheduler._free.append(node)
        # Loaned capacity goes back to the fleet arbiter, not this tenant's
        # spare pool — an aborted grow must not convert a loan into a hold.
        self._return_borrowed(alive)
        self.actions_taken.append(
            f"increase {name} aborted ({len(dead)} target nodes dead)"
        )
        yield self.env.timeout(0)
        ctx.result = {"aborted": True, "units": ctx["manager"].container.units,
                      "returned": len(alive)}

    def _gmi_request(self, ctx):
        name, nodes = ctx["name"], ctx["nodes"]
        request = Message(
            MessageType.INCREASE_REQUEST,
            sender="global-mgr",
            payload={"nodes": nodes},
        )
        reply = yield self.messenger.request(
            self.node, self.endpoint, ctx["manager"].endpoint.name, request
        )
        self.actions_taken.append(f"increase {name} +{len(nodes)}")
        ctx.result = reply.payload

    def decrease(self, name: str, count: int):
        """Process: shrink ``name`` by ``count`` nodes; value is the freed nodes."""
        return self.env.process(self._decrease(name, count), name=f"gm-decr:{name}")

    def _decrease(self, name: str, count: int):
        manager = self._manager(name)
        request = Message(
            MessageType.DECREASE_REQUEST,
            sender="global-mgr",
            payload={"count": count},
        )
        reply = yield self.messenger.request(
            self.node, self.endpoint, manager.endpoint.name, request
        )
        self.actions_taken.append(f"decrease {name} -{count}")
        return reply.payload["nodes"]

    def steal(self, donor: str, recipient: str, count: int):
        """Process: move ``count`` nodes donor -> recipient.

        With a transaction manager attached, the trade runs under a D2T
        control transaction; on any participant failure the transaction
        aborts and the freed nodes return to the spare pool rather than
        being lost (the consistency guarantee of Section III-A item 5).
        """
        return self.env.process(self._steal(donor, recipient, count), name="gm-steal")

    def _steal(self, donor: str, recipient: str, count: int):
        if self.transaction_manager is not None:
            outcome = yield self.transaction_manager.run_trade(
                self, donor, recipient, count
            )
            return outcome
        result = yield self.engine.execute(
            protocols.GM_STEAL, subject=f"{donor}->{recipient}",
            data={"gm": self, "donor": donor, "recipient": recipient,
                  "count": count, "freed": []},
        )
        return result

    def _gms_decrease(self, ctx):
        ctx["freed"] = yield self.decrease(ctx["donor"], ctx["count"])

    def _gms_validate(self, ctx) -> None:
        # The mid-protocol crash case: the trade aborts and the freed
        # nodes return to the spare pool rather than being lost.
        if any(n.failed for n in ctx["freed"]):
            raise ProtocolAbort("freed nodes died mid-trade", result=[])

    def _gms_abort(self, ctx) -> None:
        freed = ctx["freed"]
        for node in freed:
            if node.failed:
                self.scheduler.mark_failed(node)
            elif node not in self.scheduler._free:
                self.scheduler._free.append(node)
        self._return_borrowed([n for n in freed if not n.failed])
        alive = sum(1 for n in freed if not n.failed)
        self.actions_taken.append(
            f"steal {ctx['donor']}->{ctx['recipient']} aborted; "
            f"{alive} freed nodes returned to spare pool"
        )
        ctx.result = []

    def _gms_increase(self, ctx):
        freed = ctx["freed"]
        yield self.increase(ctx["recipient"], len(freed), nodes=freed)

    def _gms_commit(self, ctx) -> None:
        freed = ctx["freed"]
        self.actions_taken.append(
            f"steal {ctx['donor']}->{ctx['recipient']} x{len(freed)}"
        )
        ctx.result = freed

    def take_offline(self, name: str):
        """Process: offline ``name`` and every downstream dependent.

        After the affected containers are down, their upstream (still
        online) containers flush buffered chunks to disk and future output
        goes to the file system with provenance attributes.
        """
        return self.env.process(self._take_offline(name), name=f"gm-offline:{name}")

    def _take_offline(self, name: str):
        affected = [name] + self.dependents_of(name)
        # Downstream-last order so each teardown strands as little as possible.
        order = [c for c in nx.topological_sort(self.dependencies) if c in affected]
        for cname in reversed(order):
            manager = self._manager(cname)
            if manager.container.offline:
                continue
            request = Message(
                MessageType.OFFLINE_REQUEST, sender="global-mgr", payload={}
            )
            reply = yield self.messenger.request(
                self.node, self.endpoint, manager.endpoint.name, request
            )
            for node in reply.payload["nodes"]:
                self.scheduler._free.append(node)
            self.actions_taken.append(f"offline {cname}")
        # Flush: chunks buffered in the writers feeding each pruned stage
        # will never be pulled; write them to disk with their provenance.
        # (This covers both the live upstream's writers — e.g. Helper's when
        # Bonds goes down — and the pruned stages' own inter-stage writers.)
        for cname in affected:
            pruned = self._manager(cname).container
            if pruned.input_link is None:
                continue
            for writer in pruned.input_link.writers:
                for chunk in writer.drain_buffer():
                    # An accounted drop: the prune, not silence, owns this
                    # timestep (suppressed if it already exited downstream).
                    recorded = True
                    if self.shed_ledger is not None:
                        recorded = self.shed_ledger.record(
                            chunk.timestep, cname, "offline_prune",
                            self.env.now, chunk_id=chunk.chunk_id,
                        )
                    # With a failover interceptor installed, a diverted
                    # (spilled) chunk is already durable in the spill store;
                    # flushing it here too would double-write.  Without one,
                    # flush unconditionally — the legacy strand path.
                    diverted = (
                        not recorded
                        and self.shed_ledger is not None
                        and self.shed_ledger.intercept is not None
                    )
                    if pruned.sink_fs is not None and not diverted:
                        yield pruned.sink_fs.write(
                            writer.node,
                            f"{writer.name}.flush.ts{chunk.timestep:06d}.bp",
                            chunk.nbytes,
                            {
                                "provenance": list(chunk.provenance),
                                "timestep": chunk.timestep,
                                "incomplete_pipeline": True,
                            },
                        )
        self.telemetry.mark(self.env.now, f"offline cascade from {name}")
        return affected

    def set_stride(self, name: str, stride: int):
        """Process: ask a container to process only every ``stride``-th
        timestep; value is True when the local manager accepted."""
        return self.env.process(self._set_stride(name, stride), name=f"gm-stride:{name}")

    def _set_stride(self, name: str, stride: int):
        manager = self._manager(name)
        request = Message(
            MessageType.SET_STRIDE, sender="global-mgr", payload={"stride": stride}
        )
        reply = yield self.messenger.request(
            self.node, self.endpoint, manager.endpoint.name, request
        )
        accepted = reply.mtype is MessageType.ACK
        if accepted:
            self.actions_taken.append(f"stride {name} 1/{stride}")
        return accepted

    def set_hashing(self, name: str, enabled: bool = True):
        """Process: toggle output hashing (soft-error detection) on ``name``."""
        return self.env.process(self._set_hashing(name, enabled), name=f"gm-hash:{name}")

    def _set_hashing(self, name: str, enabled: bool):
        manager = self._manager(name)
        request = Message(
            MessageType.SET_HASHING, sender="global-mgr", payload={"enabled": enabled}
        )
        reply = yield self.messenger.request(
            self.node, self.endpoint, manager.endpoint.name, request
        )
        self.actions_taken.append(f"hashing {name} {'on' if enabled else 'off'}")
        return reply.mtype is MessageType.ACK

    def activate(self, name: str, units: Optional[int] = None):
        """Process: bring a standby container online (the dynamic branch),
        or re-activate an offline one (the brownout ladder's de-escalation).

        Used when CSym detects a broken bond: CNA "start[s] reading data
        from Bonds".  The standby container already holds nodes; activation
        spawns its replicas and wires them into the upstream link.  For an
        *offline* container ``units`` sizes the rebuild (capped by the
        spare pool; defaults to 1).
        """
        return self.env.process(self._activate(name, units=units),
                                name=f"gm-activate:{name}")

    def _activate(self, name: str, nodes: Optional[List[Node]] = None,
                  units: Optional[int] = None):
        manager = self._manager(name)
        container = manager.container
        if container.offline:
            result = yield from self._reactivate(manager, units)
            return result
        if container.active:
            yield self.env.timeout(0)
            return container.units
        container.active = True
        if nodes is None:
            nodes = container.standby_nodes
        request = Message(
            MessageType.INCREASE_REQUEST, sender="global-mgr", payload={"nodes": nodes}
        )
        reply = yield self.messenger.request(
            self.node, self.endpoint, manager.endpoint.name, request
        )
        self.actions_taken.append(f"activate {name}")
        return reply.payload["units"]

    def _reactivate(self, manager: LocalManager, units: Optional[int]):
        """Rebuild a pruned container from the spare pool.

        The reverse of the offline cascade: flush (as accounted sheds)
        whatever piled up in the still-paused upstream writers while the
        stage was down, respawn replicas through the regular INCREASE
        protocol, reinstall the link's credit window, and only then resume
        the writers — so the first post-recovery dispatch is always
        credit-gated against the fresh window, never the stale one.
        """
        container = manager.container
        name = container.name
        container.offline = False
        if container.input_link is not None:
            for writer in list(container.input_link.writers):
                for chunk in writer.drain_buffer():
                    recorded = True
                    if self.shed_ledger is not None:
                        recorded = self.shed_ledger.record(
                            chunk.timestep, name, "offline_prune",
                            self.env.now, chunk_id=chunk.chunk_id,
                        )
                    # A suppressed record means the timestep already exited
                    # the pipeline; flushing it again would double-write.
                    if recorded and container.sink_fs is not None:
                        yield container.sink_fs.write(
                            writer.node,
                            f"{writer.name}.flush.ts{chunk.timestep:06d}.bp",
                            chunk.nbytes,
                            {
                                "provenance": list(chunk.provenance),
                                "timestep": chunk.timestep,
                                "incomplete_pipeline": True,
                            },
                        )
        wanted = units if units else 1
        if wanted > self.scheduler.free_nodes:
            self._borrow(wanted)
        count = min(wanted, self.scheduler.free_nodes)
        if count <= 0:
            container.offline = True
            return 0
        job = self.scheduler.allocate(count, name=f"react:{name}")
        request = Message(
            MessageType.INCREASE_REQUEST, sender="global-mgr",
            payload={"nodes": job.nodes},
        )
        reply = yield self.messenger.request(
            self.node, self.endpoint, manager.endpoint.name, request
        )
        if container.input_link is not None:
            if container.input_link.credits is not None:
                # Reinstall the credit window *before* the writers resume:
                # the stale window described a downstream that no longer
                # exists, and resuming first would let the first
                # post-recovery dispatch go out creditless (or be deferred
                # against credits still held by pruned chunks).
                container.input_link.credits.reset()
            yield container.input_link.resume_writers()
        # Fresh latency state: the stale pre-offline window must not trip
        # an immediate re-escalation.
        container.latency = LatencyWindow(maxlen=8)
        self._reports.pop(name, None)
        self.actions_taken.append(f"reactivate {name} +{count}")
        self.telemetry.mark(self.env.now, f"reactivate {name}")
        return reply.payload["units"]

    def retire(self, name: str):
        """Process: permanently retire a container (e.g. CSym after the
        branch fires), returning its nodes to the spare pool."""
        return self.env.process(self._take_offline_single(name), name=f"gm-retire:{name}")

    def _take_offline_single(self, name: str):
        manager = self._manager(name)
        request = Message(MessageType.OFFLINE_REQUEST, sender="global-mgr", payload={})
        reply = yield self.messenger.request(
            self.node, self.endpoint, manager.endpoint.name, request
        )
        for node in reply.payload["nodes"]:
            self.scheduler._free.append(node)
        self.actions_taken.append(f"retire {name}")
        return reply.payload["nodes"]

    # -- helpers --------------------------------------------------------------------------------

    def _manager(self, name: str) -> LocalManager:
        try:
            return self.locals[name]
        except KeyError:
            raise SimulationError(f"unknown container {name!r}") from None

    def stop(self) -> None:
        self._stopped = True
        if self.recovery is not None:
            self.recovery.stop()
        for proc in (self._recv_proc, self._control_proc):
            if proc.is_alive:
                proc.interrupt("stop")
        for manager in self.locals.values():
            manager.stop()
