"""Control protocols: the message rounds of increase / decrease / offline.

Figure 3 of the paper sketches the *increase* protocol: the global manager
asks a container manager to grow; rounds of messages distribute end-point
contact information to the new replicas and notify the parties that actions
started or completed.  Figures 4 and 5 measure the resulting overheads and
find that (a) intra-container metadata exchange dominates increase cost and
grows with the number of new replicas, (b) manager-to-manager messages are
nearly negligible, and (c) decrease cost is dominated by waiting for the
upstream DataTap writers to pause.

:class:`ProtocolTracer` records every round with its wall-clock cost and
category (``manager`` vs ``intra_container`` vs ``writer_pause`` vs
``launch``), so the Figure 4/5 benches can print the same breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ProtocolCost:
    """Cost breakdown of one control operation."""

    operation: str
    container: str
    amount: int
    started_at: float
    finished_at: float = 0.0
    #: seconds per category
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: message count per category
    messages: Dict[str, int] = field(default_factory=dict)
    rounds: List[str] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.finished_at - self.started_at

    def charge(self, category: str, seconds: float, messages: int = 0) -> None:
        self.breakdown[category] = self.breakdown.get(category, 0.0) + seconds
        if messages:
            self.messages[category] = self.messages.get(category, 0) + messages

    def round(self, label: str) -> None:
        self.rounds.append(label)


class ProtocolTracer:
    """Accumulates :class:`ProtocolCost` records across a run."""

    def __init__(self):
        self.records: List[ProtocolCost] = []

    def begin(self, operation: str, container: str, amount: int, now: float) -> ProtocolCost:
        record = ProtocolCost(
            operation=operation, container=container, amount=amount, started_at=now
        )
        self.records.append(record)
        return record

    def of(self, operation: str) -> List[ProtocolCost]:
        return [r for r in self.records if r.operation == operation]

    def last(self) -> Optional[ProtocolCost]:
        return self.records[-1] if self.records else None
