"""I/O containers: the paper's primary contribution.

A :class:`Container` wraps one analysis component in a managed execution
environment: a set of replicas on staging nodes, DataTap input/output, and
per-chunk latency accounting.  A :class:`LocalManager` owns each container —
it executes the increase/decrease/offline protocols against the component
and reports metrics upward.  The :class:`GlobalManager` maintains pipeline-
wide properties: it detects the bottleneck container, trades nodes between
containers (using the spare pool or stealing from over-provisioned donors),
and takes non-essential containers offline — with their downstream
dependents — when nothing else can prevent the pipeline from blocking the
application.
"""

from repro.containers.replica import Replica
from repro.containers.container import Container
from repro.containers.protocol import ProtocolCost, ProtocolTracer
from repro.containers.local_manager import LocalManager
from repro.containers.global_manager import GlobalManager
from repro.containers.policy import LatencyPolicy, ManagementPolicy, QueueDerivativePolicy
from repro.containers.recovery import RecoveryManager
from repro.containers.pipeline import Pipeline, PipelineBuilder, StageConfig

__all__ = [
    "Container",
    "GlobalManager",
    "LatencyPolicy",
    "LocalManager",
    "ManagementPolicy",
    "Pipeline",
    "PipelineBuilder",
    "ProtocolCost",
    "ProtocolTracer",
    "QueueDerivativePolicy",
    "RecoveryManager",
    "Replica",
    "StageConfig",
]
