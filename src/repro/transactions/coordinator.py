"""The D2T coordinator: two-phase commit across group roots."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List

from repro.simkernel import Environment
from repro.cluster.node import Node
from repro.evpath.channel import Messenger
from repro.evpath.messages import Message, MessageType
from repro.transactions.participants import TxnGroup

_TXN_IDS = itertools.count(1)


@dataclass
class TxnOutcome:
    """Result of one transaction."""

    txn_id: int
    committed: bool
    started_at: float
    decided_at: float
    finished_at: float
    timed_out_groups: List[str] = field(default_factory=list)
    acks_complete: bool = True

    @property
    def vote_phase(self) -> float:
        return self.decided_at - self.started_at

    @property
    def total(self) -> float:
        return self.finished_at - self.started_at


class D2TCoordinator:
    """Runs two-phase commit over a set of :class:`TxnGroup` roots.

    Presumed abort: a group that does not deliver its aggregated vote within
    ``vote_timeout`` is treated as voting abort.  The decision phase waits
    up to ``ack_timeout`` for aggregated acks; missing acks do not change
    the decision (participants recover via their logs in real D2T), but are
    reported in the outcome.
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        node: Node,
        name: str = "txn-coord",
        vote_timeout: float = 5.0,
        ack_timeout: float = 5.0,
    ):
        self.env = env
        self.messenger = messenger
        self.node = node
        self.name = name
        self.vote_timeout = vote_timeout
        self.ack_timeout = ack_timeout
        self.endpoint = messenger.endpoint(node, name)
        self.outcomes: List[TxnOutcome] = []

    def run(self, groups: List[TxnGroup]):
        """Process: one transaction across ``groups``; value is TxnOutcome."""
        return self.env.process(self._run(groups), name="txn")

    def _run(self, groups: List[TxnGroup]):
        txn_id = next(_TXN_IDS)
        started = self.env.now
        # Phase 1: vote requests to every group root.
        for group in groups:
            yield self.messenger.send(
                self.node,
                group.root.endpoint.name,
                Message(MessageType.TXN_VOTE_REQUEST, sender=self.name,
                        payload={"txn_id": txn_id}),
            )
        votes: List[bool] = []
        timed_out: List[str] = []
        deadline = self.env.timeout(self.vote_timeout)
        pending = {group.root.endpoint.name: group.name for group in groups}
        while pending:
            recv = self.endpoint.recv(
                MessageType.TXN_VOTE,
                where=lambda m: m.payload["txn_id"] == txn_id,
            )
            result = yield recv | deadline
            if deadline in result:
                timed_out.extend(pending.values())
                break
            reply = result[recv]
            pending.pop(reply.sender, None)
            votes.append(reply.payload["vote"])
        committed = bool(votes) and all(votes) and not timed_out
        decided = self.env.now

        # Phase 2: decision + aggregated acks.
        decision = MessageType.TXN_COMMIT if committed else MessageType.TXN_ABORT
        reachable = [g for g in groups if g.name not in timed_out]
        for group in reachable:
            yield self.messenger.send(
                self.node,
                group.root.endpoint.name,
                Message(decision, sender=self.name, payload={"txn_id": txn_id}),
            )
        acks_complete = True
        ack_deadline = self.env.timeout(self.ack_timeout)
        remaining = len(reachable)
        while remaining:
            recv = self.endpoint.recv(
                MessageType.TXN_ACK,
                where=lambda m: m.payload["txn_id"] == txn_id,
            )
            result = yield recv | ack_deadline
            if ack_deadline in result:
                acks_complete = False
                break
            remaining -= 1
        outcome = TxnOutcome(
            txn_id=txn_id,
            committed=committed,
            started_at=started,
            decided_at=decided,
            finished_at=self.env.now,
            timed_out_groups=timed_out,
            acks_complete=acks_complete,
        )
        self.outcomes.append(outcome)
        return outcome
