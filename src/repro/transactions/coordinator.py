"""The D2T coordinator: two-phase commit across group roots."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.simkernel import Environment
from repro.cluster.node import Node
from repro.controlplane import ControlPlaneEngine, protocols
from repro.evpath.channel import Messenger
from repro.evpath.messages import Message, MessageType
from repro.transactions.participants import TxnGroup

_TXN_IDS = itertools.count(1)


@dataclass
class TxnOutcome:
    """Result of one transaction."""

    txn_id: int
    committed: bool
    started_at: float
    decided_at: float
    finished_at: float
    timed_out_groups: List[str] = field(default_factory=list)
    acks_complete: bool = True
    #: aggregated votes actually collected (presumed-abort audit trail: a
    #: commit requires every group's explicit yes — see repro.dst invariants)
    votes: List[bool] = field(default_factory=list)

    @property
    def vote_phase(self) -> float:
        return self.decided_at - self.started_at

    @property
    def total(self) -> float:
        return self.finished_at - self.started_at


class D2TCoordinator:
    """Runs two-phase commit over a set of :class:`TxnGroup` roots.

    Presumed abort: a group that does not deliver its aggregated vote within
    ``vote_timeout`` is treated as voting abort.  The decision phase waits
    up to ``ack_timeout`` for aggregated acks; missing acks do not change
    the decision (participants recover via their logs in real D2T), but are
    reported in the outcome.
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        node: Node,
        name: str = "txn-coord",
        vote_timeout: float = 5.0,
        ack_timeout: float = 5.0,
        engine: Optional[ControlPlaneEngine] = None,
    ):
        self.env = env
        self.messenger = messenger
        self.node = node
        self.name = name
        self.vote_timeout = vote_timeout
        self.ack_timeout = ack_timeout
        self.endpoint = messenger.endpoint(node, name)
        self.engine = engine if engine is not None else ControlPlaneEngine(env)
        self.outcomes: List[TxnOutcome] = []

    def run(self, groups: List[TxnGroup]):
        """Process: one transaction across ``groups``; value is TxnOutcome."""
        return self.env.process(self._run(groups), name="txn")

    def _run(self, groups: List[TxnGroup]):
        txn_id = next(_TXN_IDS)
        outcome = yield self.engine.execute(
            protocols.D2T_COMMIT,
            subject=f"txn-{txn_id}",
            data={
                "coord": self,
                "groups": groups,
                "txn_id": txn_id,
                "started": self.env.now,
                "votes": [],
                "pending": {g.root.endpoint.name: g.name for g in groups},
            },
        )
        return outcome

    # D2T_COMMIT round bodies ----------------------------------------------------------

    def _cp_vote_request(self, ctx):
        """Phase 1: vote requests to every group root."""
        for group in ctx["groups"]:
            yield self.messenger.send(
                self.node,
                group.root.endpoint.name,
                Message(MessageType.TXN_VOTE_REQUEST, sender=self.name,
                        payload={"txn_id": ctx["txn_id"]}),
            )

    def _cp_collect_votes(self, ctx):
        """Gather aggregated votes; the engine's round timeout is the
        presumed-abort deadline — groups still pending when it interrupts
        this collector are treated as voting abort."""
        txn_id = ctx["txn_id"]
        pending = ctx["pending"]
        while pending:
            reply = yield self.endpoint.recv(
                MessageType.TXN_VOTE,
                where=lambda m: m.payload["txn_id"] == txn_id,
            )
            pending.pop(reply.sender, None)
            ctx["votes"].append(reply.payload["vote"])

    def _cp_decide(self, ctx):
        """Phase 2: decide and broadcast to the reachable roots."""
        votes = ctx["votes"]
        timed_out = list(ctx["pending"].values())
        committed = bool(votes) and all(votes) and not timed_out
        ctx["timed_out"] = timed_out
        ctx["committed"] = committed
        ctx["decided"] = self.env.now
        decision = MessageType.TXN_COMMIT if committed else MessageType.TXN_ABORT
        reachable = [g for g in ctx["groups"] if g.name not in timed_out]
        ctx["reachable"] = reachable
        ctx["remaining"] = len(reachable)
        for group in reachable:
            yield self.messenger.send(
                self.node,
                group.root.endpoint.name,
                Message(decision, sender=self.name,
                        payload={"txn_id": ctx["txn_id"]}),
            )

    def _cp_collect_acks(self, ctx):
        """Aggregated acks; missing acks (deadline interrupt) do not change
        the decision, only the outcome's ``acks_complete`` flag."""
        txn_id = ctx["txn_id"]
        while ctx["remaining"]:
            yield self.endpoint.recv(
                MessageType.TXN_ACK,
                where=lambda m: m.payload["txn_id"] == txn_id,
            )
            ctx["remaining"] -= 1

    def _cp_finalize(self, ctx) -> None:
        outcome = TxnOutcome(
            txn_id=ctx["txn_id"],
            committed=ctx["committed"],
            started_at=ctx["started"],
            decided_at=ctx["decided"],
            finished_at=self.env.now,
            timed_out_groups=ctx["timed_out"],
            acks_complete=ctx["remaining"] == 0,
            votes=list(ctx["votes"]),
        )
        self.outcomes.append(outcome)
        ctx.result = outcome
