"""Transaction participants arranged in k-ary aggregation trees."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.simkernel import Environment, Interrupt
from repro.simkernel.errors import SimulationError
from repro.cluster.node import Node
from repro.evpath.channel import Messenger
from repro.evpath.messages import Message, MessageType
from repro.transactions.failures import FailureInjector


class TxnParticipant:
    """One process in a transaction group.

    Receives TXN_VOTE_REQUEST, relays it to its tree children, combines the
    children's aggregated votes with its own, and sends one aggregated
    TXN_VOTE to its parent.  Decisions (TXN_COMMIT / TXN_ABORT) flow down
    the same tree and acks aggregate back up.
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        node: Node,
        name: str,
        vote_fn: Optional[Callable[[int], bool]] = None,
        on_commit: Optional[Callable[[int], None]] = None,
        on_abort: Optional[Callable[[int], None]] = None,
        injector: Optional[FailureInjector] = None,
        vote_compute_seconds: float = 1e-4,
    ):
        self.env = env
        self.messenger = messenger
        self.node = node
        self.name = name
        self.vote_fn = vote_fn or (lambda txn_id: True)
        self.on_commit = on_commit
        self.on_abort = on_abort
        self.injector = injector
        self.vote_compute_seconds = vote_compute_seconds
        self.children: List["TxnParticipant"] = []
        self.endpoint = messenger.endpoint(node, name)
        self._proc = env.process(self._run(), name=f"txn:{name}")
        #: commit/abort decisions this participant applied
        self.committed: List[int] = []
        self.aborted: List[int] = []

    # -- tree wiring -------------------------------------------------------------------

    def add_child(self, child: "TxnParticipant") -> None:
        self.children.append(child)

    # -- protocol ----------------------------------------------------------------------

    def _run(self):
        while True:
            try:
                msg = yield self.endpoint.recv(
                    where=lambda m: m.mtype
                    in (MessageType.TXN_VOTE_REQUEST, MessageType.TXN_COMMIT,
                        MessageType.TXN_ABORT)
                )
            except Interrupt:
                return
            txn_id = msg.payload["txn_id"]
            fault = self.injector.check(self.name, txn_id) if self.injector else None
            if msg.mtype is MessageType.TXN_VOTE_REQUEST:
                if fault == "crash":
                    continue  # never answer; coordinator times out
                yield self.env.process(self._handle_vote_request(msg, txn_id, fault))
            else:
                if fault == "crash_after_vote":
                    continue  # decision lost on this subtree's root
                yield self.env.process(self._handle_decision(msg, txn_id))

    def _handle_vote_request(self, msg: Message, txn_id: int, fault: Optional[str]):
        # Relay down the tree first, then gather aggregated child votes.
        for child in self.children:
            yield self.messenger.send(
                self.node,
                child.endpoint.name,
                Message(MessageType.TXN_VOTE_REQUEST, sender=self.name,
                        payload={"txn_id": txn_id}),
            )
        yield self.env.timeout(self.vote_compute_seconds)
        my_vote = bool(self.vote_fn(txn_id)) and fault != "abort"
        votes = [my_vote]
        for _ in self.children:
            reply = yield self.endpoint.recv(
                MessageType.TXN_VOTE,
                where=lambda m: m.payload["txn_id"] == txn_id,
            )
            votes.append(reply.payload["vote"])
        aggregated = all(votes)
        yield self.messenger.send(
            self.node,
            msg.sender,
            Message(MessageType.TXN_VOTE, sender=self.endpoint.name,
                    payload={"txn_id": txn_id, "vote": aggregated}),
        )

    def _handle_decision(self, msg: Message, txn_id: int):
        for child in self.children:
            yield self.messenger.send(
                self.node,
                child.endpoint.name,
                Message(msg.mtype, sender=self.name, payload={"txn_id": txn_id}),
            )
        if msg.mtype is MessageType.TXN_COMMIT:
            self.committed.append(txn_id)
            if self.on_commit is not None:
                self.on_commit(txn_id)
        else:
            self.aborted.append(txn_id)
            if self.on_abort is not None:
                self.on_abort(txn_id)
        # Gather child acks, then ack upward.
        for _ in self.children:
            yield self.endpoint.recv(
                MessageType.TXN_ACK,
                where=lambda m: m.payload["txn_id"] == txn_id,
            )
        yield self.messenger.send(
            self.node,
            msg.sender,
            Message(MessageType.TXN_ACK, sender=self.endpoint.name,
                    payload={"txn_id": txn_id}),
        )

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("stop")


class TxnGroup:
    """A k-ary tree of participants with a single root.

    The coordinator talks only to the root; vote aggregation and decision
    fan-out stay inside the group, giving the O(log n) rounds that make the
    protocol scale (the Figure 6 result).
    """

    def __init__(self, name: str, participants: List[TxnParticipant], fanout: int = 8):
        if not participants:
            raise SimulationError(f"group {name!r} needs at least one participant")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.name = name
        self.participants = participants
        self.fanout = fanout
        # Heap-style k-ary tree over the participant list.
        for i, participant in enumerate(participants):
            if i == 0:
                continue
            parent = participants[(i - 1) // fanout]
            parent.add_child(participant)

    @property
    def root(self) -> TxnParticipant:
        return self.participants[0]

    def depth(self) -> int:
        depth, span = 0, 1
        total = len(self.participants)
        covered = 1
        while covered < total:
            span *= self.fanout
            covered += span
            depth += 1
        return depth

    def stop(self) -> None:
        for participant in self.participants:
            participant.stop()
