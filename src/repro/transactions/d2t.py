"""High-level transaction API, including the container-trade transaction."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.simkernel import Environment
from repro.cluster.node import Node
from repro.evpath.channel import Messenger
from repro.transactions.coordinator import D2TCoordinator, TxnOutcome
from repro.transactions.failures import FailureInjector
from repro.transactions.participants import TxnGroup, TxnParticipant


class TransactionManager:
    """Owns a coordinator and offers composed transactional operations."""

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        node: Node,
        injector: Optional[FailureInjector] = None,
        vote_timeout: float = 5.0,
        ack_timeout: float = 5.0,
    ):
        self.env = env
        self.messenger = messenger
        self.node = node
        self.injector = injector
        self.coordinator = D2TCoordinator(
            env, messenger, node, vote_timeout=vote_timeout, ack_timeout=ack_timeout
        )
        #: scripted trade failures: list of ("decrease"|"increase") to fail,
        #: consumed in order — used by resilience tests
        self.trade_faults: List[str] = []
        self.trades_committed = 0
        self.trades_aborted = 0
        self.trades_compensated = 0

    # -- generic transactions ---------------------------------------------------------

    def build_group(
        self,
        name: str,
        nodes: List[Node],
        fanout: int = 8,
        vote_fn: Optional[Callable[[int], bool]] = None,
    ) -> TxnGroup:
        participants = [
            TxnParticipant(
                self.env,
                self.messenger,
                node,
                name=f"{name}-p{i}",
                vote_fn=vote_fn,
                injector=self.injector,
            )
            for i, node in enumerate(nodes)
        ]
        return TxnGroup(name, participants, fanout=fanout)

    def run(self, groups: List[TxnGroup]):
        """Process: run one transaction; value is :class:`TxnOutcome`."""
        return self.coordinator.run(groups)

    # -- the resource-trade transaction --------------------------------------------------

    def run_trade(self, global_manager, donor: str, recipient: str, count: int):
        """Process: move ``count`` nodes donor -> recipient, atomically-ish.

        The guarantee the paper asks for: a node removed from the donor is
        either added to the recipient or returned to the spare pool — never
        lost.  Prepare checks both parties can perform their half; the
        commit executes decrease-then-increase; a failure after the decrease
        triggers compensation (freed nodes go to the spare pool) and is
        reported, not silently dropped.
        """
        return self.env.process(
            self._run_trade(global_manager, donor, recipient, count), name="trade"
        )

    def _run_trade(self, global_manager, donor: str, recipient: str, count: int):
        gm = global_manager
        donor_mgr = gm._manager(donor)
        recipient_mgr = gm._manager(recipient)

        # Prepare / vote: both parties check feasibility.
        donor_can = donor_mgr.container.units > count and not donor_mgr.container.offline
        recipient_can = (
            not recipient_mgr.container.offline and recipient_mgr.container.active
        )
        if not (donor_can and recipient_can):
            self.trades_aborted += 1
            gm.actions_taken.append(f"trade {donor}->{recipient} aborted (prepare)")
            yield self.env.timeout(0)
            return []

        if self.trade_faults and self.trade_faults[0] == "decrease":
            self.trade_faults.pop(0)
            self.trades_aborted += 1
            gm.actions_taken.append(f"trade {donor}->{recipient} aborted (decrease failed)")
            return []

        freed = yield gm.decrease(donor, count)

        if self.trade_faults and self.trade_faults[0] == "increase":
            self.trade_faults.pop(0)
            # Compensation: the freed nodes must not be lost — return them
            # to the spare pool where the next control round can use them.
            for node in freed:
                gm.scheduler._free.append(node)
            self.trades_compensated += 1
            gm.actions_taken.append(
                f"trade {donor}->{recipient} compensated ({len(freed)} nodes to spare)"
            )
            return []

        if freed:
            yield gm.increase(recipient, len(freed), nodes=freed)
        self.trades_committed += 1
        gm.actions_taken.append(f"trade {donor}->{recipient} committed x{len(freed)}")
        return freed
