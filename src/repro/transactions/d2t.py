"""High-level transaction API, including the container-trade transaction."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.simkernel import Environment
from repro.cluster.node import Node
from repro.controlplane import ControlPlaneEngine, ProtocolAbort, protocols
from repro.evpath.channel import Messenger
from repro.transactions.coordinator import D2TCoordinator, TxnOutcome
from repro.transactions.failures import FailureInjector
from repro.transactions.participants import TxnGroup, TxnParticipant


class TransactionManager:
    """Owns a coordinator and offers composed transactional operations."""

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        node: Node,
        injector: Optional[FailureInjector] = None,
        vote_timeout: float = 5.0,
        ack_timeout: float = 5.0,
        engine: Optional[ControlPlaneEngine] = None,
    ):
        self.env = env
        self.messenger = messenger
        self.node = node
        self.injector = injector
        self.engine = engine if engine is not None else ControlPlaneEngine(env)
        self.coordinator = D2TCoordinator(
            env, messenger, node, vote_timeout=vote_timeout, ack_timeout=ack_timeout,
            engine=self.engine,
        )
        #: scripted trade failures: list of ("decrease"|"increase") to fail,
        #: consumed in order — used by resilience tests
        self.trade_faults: List[str] = []
        self.trades_committed = 0
        self.trades_aborted = 0
        self.trades_compensated = 0

    # -- generic transactions ---------------------------------------------------------

    def build_group(
        self,
        name: str,
        nodes: List[Node],
        fanout: int = 8,
        vote_fn: Optional[Callable[[int], bool]] = None,
    ) -> TxnGroup:
        participants = [
            TxnParticipant(
                self.env,
                self.messenger,
                node,
                name=f"{name}-p{i}",
                vote_fn=vote_fn,
                injector=self.injector,
            )
            for i, node in enumerate(nodes)
        ]
        return TxnGroup(name, participants, fanout=fanout)

    def run(self, groups: List[TxnGroup]):
        """Process: run one transaction; value is :class:`TxnOutcome`."""
        return self.coordinator.run(groups)

    # -- the resource-trade transaction --------------------------------------------------

    def run_trade(self, global_manager, donor: str, recipient: str, count: int):
        """Process: move ``count`` nodes donor -> recipient, atomically-ish.

        The guarantee the paper asks for: a node removed from the donor is
        either added to the recipient or returned to the spare pool — never
        lost.  Prepare checks both parties can perform their half; the
        commit executes decrease-then-increase; a failure after the decrease
        triggers compensation (freed nodes go to the spare pool) and is
        reported, not silently dropped.
        """
        return self.env.process(
            self._run_trade(global_manager, donor, recipient, count), name="trade"
        )

    def _run_trade(self, global_manager, donor: str, recipient: str, count: int):
        result = yield self.engine.execute(
            protocols.TRADE,
            subject=f"{donor}->{recipient}",
            data={
                "tm": self,
                "gm": global_manager,
                "donor": donor,
                "recipient": recipient,
                "count": count,
                "freed": [],
            },
        )
        return result if result is not None else []

    # TRADE round bodies ---------------------------------------------------------------

    def _tr_prepare(self, ctx):
        """Prepare / vote: both parties check feasibility."""
        gm = ctx["gm"]
        donor, recipient = ctx["donor"], ctx["recipient"]
        donor_mgr = gm._manager(donor)
        recipient_mgr = gm._manager(recipient)
        donor_can = (
            donor_mgr.container.units > ctx["count"]
            and not donor_mgr.container.offline
        )
        recipient_can = (
            not recipient_mgr.container.offline and recipient_mgr.container.active
        )
        if not (donor_can and recipient_can):
            self.trades_aborted += 1
            gm.actions_taken.append(f"trade {donor}->{recipient} aborted (prepare)")
            yield self.env.timeout(0)
            raise ProtocolAbort("prepare refused", result=[])

    def _tr_fault(self, ctx, kind: str) -> None:
        """Scripted failure injection point (resilience tests)."""
        if not (self.trade_faults and self.trade_faults[0] == kind):
            return
        self.trade_faults.pop(0)
        gm = ctx["gm"]
        donor, recipient = ctx["donor"], ctx["recipient"]
        if kind == "decrease":
            self.trades_aborted += 1
            gm.actions_taken.append(
                f"trade {donor}->{recipient} aborted (decrease failed)"
            )
            raise ProtocolAbort("decrease failed", result=[])
        # An increase-side failure aborts *after* the decrease committed:
        # the decrease round's compensation returns the freed nodes.
        raise ProtocolAbort("increase failed", result=[])

    def _tr_decrease(self, ctx):
        ctx["freed"] = yield ctx["gm"].decrease(ctx["donor"], ctx["count"])

    def _tr_compensate(self, ctx) -> None:
        """The freed nodes must not be lost — back to the spare pool."""
        gm = ctx["gm"]
        freed = ctx["freed"]
        for node in freed:
            gm.scheduler._free.append(node)
        self.trades_compensated += 1
        gm.actions_taken.append(
            f"trade {ctx['donor']}->{ctx['recipient']} compensated "
            f"({len(freed)} nodes to spare)"
        )

    def _tr_increase(self, ctx):
        freed = ctx["freed"]
        yield ctx["gm"].increase(ctx["recipient"], len(freed), nodes=freed)

    def _tr_commit(self, ctx) -> None:
        gm = ctx["gm"]
        freed = ctx["freed"]
        self.trades_committed += 1
        gm.actions_taken.append(
            f"trade {ctx['donor']}->{ctx['recipient']} committed x{len(freed)}"
        )
        ctx.result = freed
