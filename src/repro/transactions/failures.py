"""Deterministic failure injection for transaction testing."""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple


class FailureInjector:
    """Scripted faults: (participant, txn_id) -> behaviour.

    Behaviours:

    * ``"abort"`` — the participant votes abort;
    * ``"crash"`` — the participant never answers (the coordinator's
      timeout must handle it, presumed abort);
    * ``"crash_after_vote"`` — votes commit, then never acks the decision
      (the coordinator still completes; recovery is the participant's
      problem, as in D2T).
    """

    VALID = ("abort", "crash", "crash_after_vote")

    def __init__(self):
        self._faults: Dict[Tuple[str, int], str] = {}
        self.triggered: Set[Tuple[str, int]] = set()

    def inject(self, participant: str, txn_id: int, behaviour: str) -> None:
        if behaviour not in self.VALID:
            raise ValueError(f"unknown behaviour {behaviour!r}")
        self._faults[(participant, txn_id)] = behaviour

    def check(self, participant: str, txn_id: int) -> Optional[str]:
        fault = self._faults.get((participant, txn_id))
        if fault is not None:
            self.triggered.add((participant, txn_id))
        return fault
