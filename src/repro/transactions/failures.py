"""Deterministic failure injection for transaction testing.

Since the ``repro.faults`` subsystem landed, scripted transaction faults
are just one domain (``"txn"``) of a :class:`~repro.faults.FaultPlan`; this
injector is a thin adapter that keeps the original API (and its validation
contract) while delegating storage, validation, and trigger accounting to
the plan.  Passing a shared plan lets a chaos schedule script transaction
behaviours alongside timed cluster faults under one seed.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.faults.plan import FaultPlan


class FailureInjector:
    """Scripted faults: (participant, txn_id) -> behaviour.

    Behaviours:

    * ``"abort"`` — the participant votes abort;
    * ``"crash"`` — the participant never answers (the coordinator's
      timeout must handle it, presumed abort);
    * ``"crash_after_vote"`` — votes commit, then never acks the decision
      (the coordinator still completes; recovery is the participant's
      problem, as in D2T).
    """

    DOMAIN = "txn"
    VALID = FaultPlan.SCRIPT_DOMAINS[DOMAIN]

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan if plan is not None else FaultPlan()

    def inject(self, participant: str, txn_id: int, behaviour: str) -> None:
        self.plan.script(self.DOMAIN, (participant, txn_id), behaviour)

    def check(self, participant: str, txn_id: int) -> Optional[str]:
        return self.plan.lookup(self.DOMAIN, (participant, txn_id))

    @property
    def triggered(self) -> Set[Tuple[str, int]]:
        """Keys whose scripted behaviour has fired."""
        return {
            key for domain, key in self.plan.triggered if domain == self.DOMAIN
        }
