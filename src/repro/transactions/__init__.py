"""D2T: doubly distributed transactions for resilient control operations.

The paper (Section III-A item 5, Figure 6, and reference [14] — Lofstead et
al., "D2T: Doubly Distributed Transactions") wraps multi-party control
actions in transactions so that failures cannot leave the system
inconsistent — e.g. a node removed from one container but never added to
another.

"Doubly distributed" means both sides of the operation are process *groups*
(e.g. 512 writer cores and 4 reader cores): a coordinator runs two-phase
commit across group roots, and each group aggregates votes/acks internally
over a k-ary tree, which is what gives the protocol its scalability (Fig 6).

Components:

* :class:`TxnParticipant` / :class:`TxnGroup` — tree-structured members;
* :class:`D2TCoordinator` — two-phase commit across group roots with
  presumed-abort timeouts;
* :class:`TransactionManager` — high-level API, including the
  container-trade transaction used by the global manager;
* :class:`FailureInjector` — deterministic fault injection for tests.
"""

from repro.transactions.failures import FailureInjector
from repro.transactions.participants import TxnGroup, TxnParticipant
from repro.transactions.coordinator import D2TCoordinator, TxnOutcome
from repro.transactions.d2t import TransactionManager

__all__ = [
    "D2TCoordinator",
    "FailureInjector",
    "TransactionManager",
    "TxnGroup",
    "TxnOutcome",
    "TxnParticipant",
]
