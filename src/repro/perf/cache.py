"""Snapshot-keyed kernel cache.

Several pipeline stages derive the same intermediates from one simulation
snapshot: Bonds computes the bonded-pair list, and CSym and CNA both need
that adjacency again.  The cache keys results by a content digest of the
input arrays (plus the kernel parameters), so *any* stage asking for the
same computation on the same snapshot gets the memoized result — one
computation per timestep, however many consumers.

Content hashing (rather than ``id()``) makes the cache safe against in-place
mutation: a moved snapshot hashes differently and simply misses.  Cached
arrays are returned read-only so one consumer cannot corrupt another's view.
Entries are LRU-evicted; hit/miss totals feed the perf registry under
``kernelcache.hit`` / ``kernelcache.miss``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Hashable, Tuple

import numpy as np

from repro.perf.registry import REGISTRY


def array_digest(array: np.ndarray) -> bytes:
    """Content fingerprint of an array (dtype, shape, and raw bytes)."""
    array = np.ascontiguousarray(array)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(array.dtype).encode())
    h.update(str(array.shape).encode())
    h.update(array.tobytes())
    return h.digest()


class SnapshotKernelCache:
    """LRU cache of kernel results keyed by input-content digests."""

    def __init__(self, max_entries: int = 32):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.enabled = True
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def get_or_compute(self, key: Hashable, compute):
        """Return the cached value for ``key``, computing it on a miss."""
        if not self.enabled:
            return compute()
        if key in self._entries:
            self._entries.move_to_end(key)
            REGISTRY.count("kernelcache.hit")
            return self._entries[key]
        REGISTRY.count("kernelcache.miss")
        value = compute()
        self._entries[key] = value
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return value

    # -- kernel-specific entry points --------------------------------------------

    def pairs(self, positions: np.ndarray, cutoff: float) -> np.ndarray:
        """Cell-list bonded pairs for a snapshot, lexsorted and read-only."""
        positions = np.asarray(positions, dtype=np.float64)
        key = ("pairs", array_digest(positions), float(cutoff))

        def compute() -> np.ndarray:
            from repro.lammps.neighbor import CellList

            pairs = CellList(positions, cutoff).pairs()
            if len(pairs):
                pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
            pairs.setflags(write=False)
            return pairs

        return self.get_or_compute(key, compute)

    def csr(self, pairs: np.ndarray, natoms: int) -> Tuple[np.ndarray, np.ndarray]:
        """CSR adjacency ``(indptr, indices)`` for a pair list, read-only."""
        pairs = np.asarray(pairs, dtype=np.int64)
        key = ("csr", array_digest(pairs), int(natoms))

        def compute() -> Tuple[np.ndarray, np.ndarray]:
            from repro.smartpointer.bonds import adjacency_csr

            indptr, indices = adjacency_csr(pairs, natoms)
            indptr.setflags(write=False)
            indices.setflags(write=False)
            return indptr, indices

        return self.get_or_compute(key, compute)


#: Default cache shared by the analytics kernels.
KERNEL_CACHE = SnapshotKernelCache()
