"""``BENCH_kernels.json`` emitter with baseline comparison.

The kernel micro-bench (``benchmarks/bench_kernels.py``) produces a flat
mapping of ``metric name -> seconds`` plus the perf-registry counters; this
module writes them to disk in a stable schema and, when a previous report
exists, annotates every shared numeric metric with its speedup relative to
that baseline, so cross-PR regressions show up as ``speedup < 1`` entries
without any extra tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

SCHEMA_VERSION = 1

PathLike = Union[str, Path]


def load_kernel_report(path: PathLike) -> Optional[Dict]:
    """Load a previously written report; ``None`` if absent or unreadable."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def compare_to_baseline(
    results: Dict[str, float], baseline_results: Dict[str, float]
) -> Dict[str, Dict[str, float]]:
    """Per-metric speedup of ``results`` over ``baseline_results``.

    ``speedup > 1`` means the current run is faster (metrics are seconds).
    Only metrics present in both runs with positive numeric values compare.
    """
    comparison: Dict[str, Dict[str, float]] = {}
    for name, current in results.items():
        previous = baseline_results.get(name)
        if not isinstance(current, (int, float)) or not isinstance(
            previous, (int, float)
        ):
            continue
        if current <= 0 or previous <= 0:
            continue
        comparison[name] = {
            "baseline_seconds": float(previous),
            "current_seconds": float(current),
            "speedup": float(previous) / float(current),
        }
    return comparison


def regressions(comparison: Dict[str, Dict[str, float]],
                threshold: float = 0.8) -> Dict[str, float]:
    """Metrics whose speedup fell below ``threshold`` (i.e. got slower)."""
    return {
        name: entry["speedup"]
        for name, entry in comparison.items()
        if entry["speedup"] < threshold
    }


def write_kernel_report(
    path: PathLike,
    results: Dict[str, float],
    counters: Optional[Dict[str, int]] = None,
    meta: Optional[Dict] = None,
    baseline: Optional[Dict] = None,
) -> Dict:
    """Write ``BENCH_kernels.json`` and return the written document.

    ``baseline`` defaults to whatever report already exists at ``path`` —
    re-running the bench therefore always reports speedups versus the last
    recorded run.  Pass an explicit baseline document to pin a reference.
    """
    path = Path(path)
    if baseline is None:
        baseline = load_kernel_report(path)
    baseline_results = (baseline or {}).get("results", {})
    comparison = compare_to_baseline(results, baseline_results)
    doc = {
        "schema": SCHEMA_VERSION,
        "meta": meta or {},
        "results": {k: results[k] for k in sorted(results)},
        "counters": dict(sorted((counters or {}).items())),
        "baseline_comparison": {k: comparison[k] for k in sorted(comparison)},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc
