"""Kernel performance instrumentation.

Three small pieces, shared by the analytics kernels, the MD integrator, and
the benchmark harness:

* :mod:`repro.perf.registry` — wall-clock kernel timers and event counters
  (cell-list rebuilds, cache hits, ...) accumulated in a process-global
  registry that benches snapshot and reset;
* :mod:`repro.perf.report` — the ``BENCH_kernels.json`` emitter with
  baseline comparison, so kernel speedups and regressions are
  machine-readable across PRs;
* :mod:`repro.perf.cache` — a snapshot-keyed kernel cache letting pipeline
  stages that re-derive the same intermediate (CSym and CNA both need the
  Bonds adjacency) share one computation per timestep.
"""

from repro.perf.registry import (
    REGISTRY,
    KernelStats,
    PerfRegistry,
    count,
    counter,
    reset,
    snapshot,
    timed,
    timer,
)
from repro.perf.report import (
    compare_to_baseline,
    load_kernel_report,
    write_kernel_report,
)
from repro.perf.cache import KERNEL_CACHE, SnapshotKernelCache

__all__ = [
    "KERNEL_CACHE",
    "KernelStats",
    "PerfRegistry",
    "REGISTRY",
    "SnapshotKernelCache",
    "compare_to_baseline",
    "count",
    "counter",
    "load_kernel_report",
    "reset",
    "snapshot",
    "timed",
    "timer",
    "write_kernel_report",
]
