"""Wall-clock kernel timers and event counters.

The hot kernels are instrumented with ``REGISTRY.timer("kernel.name")``
context blocks and ``REGISTRY.count("event.name")`` counters; the registry
accumulates per-kernel call counts and wall-clock totals cheaply enough to
stay on in production (one ``perf_counter`` pair per call).  Benches and
tests ``reset()`` the registry, run a scenario, and read ``snapshot()`` —
a plain-dict view that serializes straight into ``BENCH_kernels.json``.

Timer names are dotted paths (``celllist.pairs``, ``md.rebuild``) so
reports group naturally by subsystem.
"""

from __future__ import annotations

import functools
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional


@dataclass
class KernelStats:
    """Accumulated wall-clock statistics for one timed kernel."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0

    def record(self, seconds: float) -> None:
        self.calls += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds if self.calls else 0.0,
            "max_seconds": self.max_seconds,
        }


class CounterHandle:
    """A pre-resolved counter: one attribute bump instead of a dict lookup.

    Hot loops (datatap buffer inserts, the engine counter publisher) hold a
    handle and call :meth:`add`; the registry folds handle values into
    :meth:`PerfRegistry.counter` / :meth:`PerfRegistry.snapshot` reads, and
    :meth:`PerfRegistry.reset` zeroes them in place so long-lived holders
    stay valid across bench scenarios.
    """

    __slots__ = ("name", "value", "_registry")

    def __init__(self, registry: "PerfRegistry", name: str):
        self._registry = registry
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if self._registry.enabled:
            self.value += amount


@dataclass
class PerfRegistry:
    """Process-wide accumulator for kernel timers and event counters."""

    enabled: bool = True
    _timers: Dict[str, KernelStats] = field(default_factory=dict)
    _counters: Dict[str, int] = field(default_factory=dict)
    _handles: Dict[str, CounterHandle] = field(default_factory=dict)

    # -- timers -----------------------------------------------------------------

    @contextmanager
    def timer(self, name: str):
        """Time a block of code under ``name`` (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stats = self._timers.get(name)
            if stats is None:
                stats = self._timers[name] = KernelStats(name)
            stats.record(elapsed)

    def timed(self, name: Optional[str] = None) -> Callable:
        """Decorator form of :meth:`timer`; defaults to the function name."""

        def decorate(fn: Callable) -> Callable:
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.timer(label):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def record_duration(self, name: str, seconds: float) -> None:
        """Record an externally measured duration under ``name``.

        Used for durations the registry cannot time itself — notably
        *simulated*-time intervals such as fault MTTR, which share the
        report schema with wall-clock timers.
        """
        if not self.enabled:
            return
        stats = self._timers.get(name)
        if stats is None:
            stats = self._timers[name] = KernelStats(name)
        stats.record(seconds)

    def stats(self, name: str) -> Optional[KernelStats]:
        return self._timers.get(name)

    # -- counters ---------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def count_max(self, name: str, value: int) -> None:
        """Fold a high-water mark into ``name`` (keeps the maximum seen)."""
        if not self.enabled:
            return
        if value > self._counters.get(name, 0):
            self._counters[name] = value

    def handle(self, name: str) -> CounterHandle:
        """A reusable :class:`CounterHandle` for ``name`` (cached per name)."""
        h = self._handles.get(name)
        if h is None:
            h = self._handles[name] = CounterHandle(self, name)
        return h

    def counter(self, name: str) -> int:
        total = self._counters.get(name, 0)
        h = self._handles.get(name)
        return total + h.value if h is not None else total

    # -- lifecycle --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-serializable view of all timers and counters."""
        counters = dict(self._counters)
        for name, h in self._handles.items():
            if h.value:
                counters[name] = counters.get(name, 0) + h.value
        return {
            "timers": {k: v.as_dict() for k, v in sorted(self._timers.items())},
            "counters": dict(sorted(counters.items())),
        }

    def reset(self) -> None:
        self._timers.clear()
        self._counters.clear()
        for h in self._handles.values():
            h.value = 0


#: The default registry every instrumented kernel reports to.
REGISTRY = PerfRegistry()

# Module-level conveniences bound to the default registry.
timer = REGISTRY.timer
timed = REGISTRY.timed
count = REGISTRY.count
counter = REGISTRY.counter
snapshot = REGISTRY.snapshot
reset = REGISTRY.reset
