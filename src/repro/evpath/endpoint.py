"""Endpoints: addressable mailboxes pinned to cluster nodes."""

from __future__ import annotations

from typing import Callable, Optional

from repro.simkernel import Environment, FilterStore
from repro.evpath.messages import Message, MessageType
from repro.cluster.node import Node


class Endpoint:
    """A named mailbox on a node.

    Processes receive with ``yield endpoint.recv()`` (optionally filtered by
    message type or predicate).  Delivery into the mailbox is done by a
    :class:`~repro.evpath.channel.Messenger` after the simulated network
    transfer completes.
    """

    def __init__(self, env: Environment, node: Node, name: str):
        self.env = env
        self.node = node
        self.name = name
        self._inbox = FilterStore(env, name=f"inbox:{name}")
        #: count of messages ever delivered (monitoring)
        self.delivered = 0

    def deliver(self, message: Message):
        """Put a message into the mailbox (called by the messenger)."""
        self.delivered += 1
        return self._inbox.put(message)

    def recv(
        self,
        mtype: Optional[MessageType] = None,
        where: Optional[Callable[[Message], bool]] = None,
    ):
        """Event that fires with the next matching message.

        Parameters
        ----------
        mtype:
            Restrict to one message type.
        where:
            Additional predicate over the message.
        """
        if mtype is None and where is None:
            return self._inbox.get()

        def matches(msg: Message) -> bool:
            if mtype is not None and msg.mtype is not mtype:
                return False
            if where is not None and not where(msg):
                return False
            return True

        return self._inbox.get(matches)

    def recv_reply(self, to: Message):
        """Event for the reply correlated with message ``to``."""
        return self._inbox.get(lambda m: m.reply_to == to.seq)

    @property
    def pending(self) -> int:
        return self._inbox.size

    def __repr__(self) -> str:
        return f"<Endpoint {self.name!r} node={self.node.node_id} pending={self.pending}>"
