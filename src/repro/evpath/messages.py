"""Typed control and monitoring messages.

The container control protocol (Section III-D, Figure 3) consists of rounds
of small typed messages.  Every message records its type, sender, a payload,
and a monotonically increasing sequence number per sender so tests can assert
ordering and the benches can count protocol rounds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class MessageType(Enum):
    """Union of the message kinds used by the container framework."""

    # Global manager -> container manager
    INCREASE_REQUEST = "increase_request"
    DECREASE_REQUEST = "decrease_request"
    OFFLINE_REQUEST = "offline_request"
    # Container manager -> component executables
    SPAWN_REPLICA = "spawn_replica"
    RETIRE_REPLICA = "retire_replica"
    PAUSE_WRITERS = "pause_writers"
    RESUME_WRITERS = "resume_writers"
    SWITCH_OUTPUT_METHOD = "switch_output_method"
    SET_STRIDE = "set_stride"
    SET_HASHING = "set_hashing"
    # Upward notifications / acks
    ACK = "ack"
    NACK = "nack"
    REPLICA_READY = "replica_ready"
    WRITERS_PAUSED = "writers_paused"
    RESIZE_COMPLETE = "resize_complete"
    OFFLINE_COMPLETE = "offline_complete"
    # Metadata exchange among replicas during a resize
    ENDPOINT_INFO = "endpoint_info"
    ENDPOINT_INFO_ACK = "endpoint_info_ack"
    # Monitoring
    METRIC_REPORT = "metric_report"
    METRIC_AGGREGATE = "metric_aggregate"
    # Failure detection and recovery (repro.faults)
    HEARTBEAT = "heartbeat"
    REPLICA_SUSPECT = "replica_suspect"
    REPLACE_REQUEST = "replace_request"
    REPLACE_COMPLETE = "replace_complete"
    # Queries between managers
    SPEEDUP_QUERY = "speedup_query"
    SPEEDUP_REPLY = "speedup_reply"
    # Transactions (D2T)
    TXN_BEGIN = "txn_begin"
    TXN_VOTE_REQUEST = "txn_vote_request"
    TXN_VOTE = "txn_vote"
    TXN_COMMIT = "txn_commit"
    TXN_ABORT = "txn_abort"
    TXN_ACK = "txn_ack"
    # DataTap data plane
    DATA_METADATA = "data_metadata"
    DATA_PULL_DONE = "data_pull_done"


_SEQ = itertools.count()

#: Default wire size of a bare control message, bytes.  EVPath control
#: messages are small FFS-encoded records.
CONTROL_MESSAGE_BYTES = 256


@dataclass
class Message:
    """A typed message with sender identity and payload.

    ``size_bytes`` is the wire size charged to the network; control messages
    default to :data:`CONTROL_MESSAGE_BYTES`, while metadata-bearing messages
    (e.g. ENDPOINT_INFO carrying contact lists) set it explicitly.
    """

    mtype: MessageType
    sender: str
    payload: Any = None
    size_bytes: int = CONTROL_MESSAGE_BYTES
    seq: int = field(default_factory=lambda: next(_SEQ))
    reply_to: Optional[int] = None

    def reply(self, mtype: MessageType, sender: str, payload: Any = None,
              size_bytes: int = CONTROL_MESSAGE_BYTES) -> "Message":
        """Construct a reply correlated to this message's sequence number."""
        return Message(mtype=mtype, sender=sender, payload=payload,
                       size_bytes=size_bytes, reply_to=self.seq)

    def __repr__(self) -> str:
        return f"<Msg {self.mtype.value} from={self.sender} seq={self.seq}>"
