"""Typed control and monitoring messages, and their payload schemas.

The container control protocol (Section III-D, Figure 3) consists of rounds
of small typed messages.  Every message records its type, sender, a payload,
and a monotonically increasing sequence number per sender so tests can assert
ordering and the benches can count protocol rounds.

Control messages also carry *declared* payloads: :data:`SCHEMAS` maps each
protocol message type to a :class:`MessageSchema` naming its required and
optional fields.  The messenger validates payloads at send time, so a
malformed control message fails loudly at the sender (with the offending
field named) instead of as a ``KeyError`` deep inside the receiving
protocol handler.  Ack/query/report types whose payloads are intentionally
open-ended are registered ``freeform``.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Tuple

from repro.simkernel.errors import SimulationError


class MessageType(Enum):
    """Union of the message kinds used by the container framework."""

    # Global manager -> container manager
    INCREASE_REQUEST = "increase_request"
    DECREASE_REQUEST = "decrease_request"
    OFFLINE_REQUEST = "offline_request"
    # Container manager -> component executables
    SPAWN_REPLICA = "spawn_replica"
    RETIRE_REPLICA = "retire_replica"
    PAUSE_WRITERS = "pause_writers"
    RESUME_WRITERS = "resume_writers"
    SWITCH_OUTPUT_METHOD = "switch_output_method"
    SET_STRIDE = "set_stride"
    SET_HASHING = "set_hashing"
    # Upward notifications / acks
    ACK = "ack"
    NACK = "nack"
    REPLICA_READY = "replica_ready"
    WRITERS_PAUSED = "writers_paused"
    RESIZE_COMPLETE = "resize_complete"
    OFFLINE_COMPLETE = "offline_complete"
    # Metadata exchange among replicas during a resize
    ENDPOINT_INFO = "endpoint_info"
    ENDPOINT_INFO_ACK = "endpoint_info_ack"
    # Monitoring
    METRIC_REPORT = "metric_report"
    METRIC_AGGREGATE = "metric_aggregate"
    # Failure detection and recovery (repro.faults)
    HEARTBEAT = "heartbeat"
    REPLICA_SUSPECT = "replica_suspect"
    REPLACE_REQUEST = "replace_request"
    REPLACE_COMPLETE = "replace_complete"
    # Queries between managers
    SPEEDUP_QUERY = "speedup_query"
    SPEEDUP_REPLY = "speedup_reply"
    # Transactions (D2T)
    TXN_BEGIN = "txn_begin"
    TXN_VOTE_REQUEST = "txn_vote_request"
    TXN_VOTE = "txn_vote"
    TXN_COMMIT = "txn_commit"
    TXN_ABORT = "txn_abort"
    TXN_ACK = "txn_ack"
    # DataTap data plane
    DATA_METADATA = "data_metadata"
    DATA_PULL_DONE = "data_pull_done"


_SEQ = itertools.count()

#: Default wire size of a bare control message, bytes.  EVPath control
#: messages are small FFS-encoded records.
CONTROL_MESSAGE_BYTES = 256


@dataclass
class Message:
    """A typed message with sender identity and payload.

    ``size_bytes`` is the wire size charged to the network; control messages
    default to :data:`CONTROL_MESSAGE_BYTES`, while metadata-bearing messages
    (e.g. ENDPOINT_INFO carrying contact lists) set it explicitly.
    """

    mtype: MessageType
    sender: str
    payload: Any = None
    size_bytes: int = CONTROL_MESSAGE_BYTES
    seq: int = field(default_factory=lambda: next(_SEQ))
    reply_to: Optional[int] = None

    def reply(self, mtype: MessageType, sender: str, payload: Any = None,
              size_bytes: int = CONTROL_MESSAGE_BYTES) -> "Message":
        """Construct a reply correlated to this message's sequence number."""
        return Message(mtype=mtype, sender=sender, payload=payload,
                       size_bytes=size_bytes, reply_to=self.seq)

    def __repr__(self) -> str:
        return f"<Msg {self.mtype.value} from={self.sender} seq={self.seq}>"


# ---------------------------------------------------------------------------
# Payload schemas
# ---------------------------------------------------------------------------

class MessageSchemaError(SimulationError):
    """A message's payload does not match its declared schema."""


@dataclass(frozen=True)
class MessageSchema:
    """Declared payload shape for one message type.

    ``freeform`` schemas accept any payload (acks, queries, metric reports
    whose fields vary by sender).  Otherwise the payload must be a mapping
    with every ``required`` field; fields outside ``required``/``optional``
    are rejected unless ``allow_extra`` is set.
    """

    mtype: MessageType
    required: Tuple[str, ...] = ()
    optional: Tuple[str, ...] = ()
    allow_extra: bool = False
    freeform: bool = False

    def validate(self, message: "Message") -> None:
        if self.freeform:
            return
        payload = message.payload
        if not isinstance(payload, Mapping):
            raise MessageSchemaError(
                f"{self.mtype.value} payload must be a mapping with fields "
                f"{sorted(self.required)}, got {type(payload).__name__}"
            )
        missing = [f for f in self.required if f not in payload]
        if missing:
            raise MessageSchemaError(
                f"{self.mtype.value} payload missing required fields "
                f"{missing} (got {sorted(payload)})"
            )
        if not self.allow_extra:
            known = set(self.required) | set(self.optional)
            extra = [f for f in payload if f not in known]
            if extra:
                raise MessageSchemaError(
                    f"{self.mtype.value} payload has undeclared fields "
                    f"{extra} (declared: {sorted(known)})"
                )


def _schema(mtype: MessageType, *required: str, optional: Tuple[str, ...] = (),
            allow_extra: bool = False, freeform: bool = False) -> MessageSchema:
    return MessageSchema(mtype, tuple(required), tuple(optional),
                         allow_extra, freeform)


#: The message-schema registry: every control-protocol payload, declared.
SCHEMAS: Dict[MessageType, MessageSchema] = {s.mtype: s for s in (
    # Global manager -> local manager (Figure 3 protocol requests)
    _schema(MessageType.INCREASE_REQUEST, "nodes"),
    _schema(MessageType.DECREASE_REQUEST, "count"),
    _schema(MessageType.OFFLINE_REQUEST),
    _schema(MessageType.SET_STRIDE, "stride"),
    _schema(MessageType.SET_HASHING, "enabled"),
    _schema(MessageType.REPLACE_REQUEST, "replica", "node"),
    # Local manager -> global manager completions
    _schema(MessageType.RESIZE_COMPLETE, "units", optional=("nodes",)),
    _schema(MessageType.OFFLINE_COMPLETE, "nodes", "unpulled"),
    _schema(MessageType.REPLACE_COMPLETE, "units", "redelivered"),
    # Failure detection and recovery
    _schema(MessageType.HEARTBEAT, "member"),
    _schema(MessageType.REPLICA_SUSPECT, "container", "replica", "suspected_at"),
    # Transactions (D2T, Figure 6)
    _schema(MessageType.TXN_VOTE_REQUEST, "txn_id"),
    _schema(MessageType.TXN_VOTE, "txn_id", "vote"),
    _schema(MessageType.TXN_COMMIT, "txn_id"),
    _schema(MessageType.TXN_ABORT, "txn_id"),
    _schema(MessageType.TXN_ACK, "txn_id"),
    # DataTap metadata (re-sent verbatim by the link on redelivery)
    _schema(MessageType.DATA_METADATA, "chunk_id", "seq", "nbytes", "natoms",
            "timestep", "writer", "writer_node"),
    # Intentionally open-ended payloads
    _schema(MessageType.ACK, freeform=True),
    _schema(MessageType.NACK, freeform=True),
    _schema(MessageType.METRIC_REPORT, freeform=True),
    _schema(MessageType.METRIC_AGGREGATE, freeform=True),
    _schema(MessageType.SPEEDUP_QUERY, freeform=True),
    _schema(MessageType.SPEEDUP_REPLY, freeform=True),
)}


def validate_message(message: "Message") -> None:
    """Validate ``message`` against its declared schema, if it has one.

    Message types without a registry entry are accepted as-is: the registry
    constrains the protocol messages it declares without forbidding ad-hoc
    types in tests and examples.
    """
    schema = SCHEMAS.get(message.mtype)
    if schema is not None:
        schema.validate(message)
