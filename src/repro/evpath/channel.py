"""Message delivery over the simulated network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.simkernel import Environment
from repro.simkernel.errors import FaultError, SimulationError
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.evpath.endpoint import Endpoint
from repro.evpath.messages import Message, validate_message
from repro.perf.registry import REGISTRY


class RequestTimeout(FaultError):
    """A request saw no correlated reply within its timeout."""


@dataclass
class RetryPolicy:
    """Retry-with-exponential-backoff for control-plane sends.

    A send that fails with a :class:`FaultError` (dead endpoint node, drop
    or partition window) is retried up to ``attempts`` total tries, sleeping
    ``base_delay * backoff**i`` between them.  Anything that still fails
    propagates the last error to the sender.
    """

    attempts: int = 4
    base_delay: float = 0.05
    backoff: float = 2.0

    def delays(self):
        delay = self.base_delay
        for _ in range(max(0, self.attempts - 1)):
            yield delay
            delay *= self.backoff


class Messenger:
    """Registry + transport for endpoints.

    One messenger per experiment; it owns the endpoint namespace and moves
    messages across the :class:`~repro.cluster.network.Network`, charging
    each message's wire size.  Statistics distinguish *control-plane* bytes
    (what Figure 4 calls "point-to-point messages between managers") from the
    data plane, which goes through DataTap instead.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        retry: Optional[RetryPolicy] = None,
    ):
        self.env = env
        self.network = network
        self.retry = retry if retry is not None else RetryPolicy()
        self._endpoints: Dict[str, Endpoint] = {}
        #: control-plane accounting
        self.messages_sent = 0
        self.bytes_sent = 0
        self.retries = 0

    # -- registry -------------------------------------------------------------

    def endpoint(self, node: Node, name: str) -> Endpoint:
        """Create and register an endpoint with a unique name."""
        if name in self._endpoints:
            raise SimulationError(f"endpoint {name!r} already registered")
        ep = Endpoint(self.env, node, name)
        self._endpoints[name] = ep
        return ep

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def lookup(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise SimulationError(f"unknown endpoint {name!r}") from None

    # -- sending ---------------------------------------------------------------

    def send(self, src_node: Node, to: str, message: Message):
        """Send ``message`` to the endpoint named ``to``.

        Returns a process event that fires after the message is delivered
        into the destination mailbox.  The payload is validated against the
        message type's declared schema *before* the send process is created,
        so malformed control messages raise at the call site.
        """
        validate_message(message)
        dest = self.lookup(to)
        return self.env.process(
            self._send(src_node, dest, message), name=f"send {message.mtype.value}"
        )

    def _send(self, src_node: Node, dest: Endpoint, message: Message):
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        delays = iter(self.retry.delays())
        while True:
            try:
                # dest.node is read per attempt: a rehosted endpoint's new
                # placement takes effect on the retry.
                yield self.network.transfer(src_node, dest.node, message.size_bytes)
                break
            except FaultError:
                delay = next(delays, None)
                if delay is None:  # retries exhausted: surface the FaultError
                    raise
                self.retries += 1
                REGISTRY.count("evpath.retries")
                yield self.env.timeout(delay)
        yield dest.deliver(message)
        return message

    def request(
        self,
        src_node: Node,
        src_endpoint: Endpoint,
        to: str,
        message: Message,
        timeout: Optional[float] = None,
    ):
        """Send and wait for the correlated reply; value is the reply message.

        With ``timeout`` set, a reply that does not arrive in time fails the
        request with :class:`RequestTimeout` (a :class:`FaultError`, so
        callers can treat it as routine and retry at protocol level).
        """
        return self.env.process(
            self._request(src_node, src_endpoint, to, message, timeout),
            name=f"request {message.mtype.value}",
        )

    def _request(
        self,
        src_node: Node,
        src_endpoint: Endpoint,
        to: str,
        message: Message,
        timeout: Optional[float] = None,
    ):
        yield self.send(src_node, to, message)
        reply_get = src_endpoint.recv_reply(message)
        if timeout is None:
            reply = yield reply_get
            return reply
        timer = self.env.timeout(timeout)
        yield self.env.any_of([reply_get, timer])
        if not reply_get.triggered:
            src_endpoint._inbox.cancel_get(reply_get)
            raise RequestTimeout(
                f"no reply to {message!r} from {to!r} within {timeout}s"
            )
        return reply_get.value


class Channel:
    """A fixed point-to-point pipe between two endpoints.

    Thin convenience over :class:`Messenger` for component-to-component
    links whose ends do not change (e.g. manager <-> replica).
    """

    def __init__(self, messenger: Messenger, src: Endpoint, dst: Endpoint):
        self.messenger = messenger
        self.src = src
        self.dst = dst

    def send(self, message: Message):
        return self.messenger.send(self.src.node, self.dst.name, message)

    def request(self, message: Message):
        return self.messenger.request(self.src.node, self.src, self.dst.name, message)
