"""Message delivery over the simulated network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.simkernel import Environment, Event
from repro.simkernel.errors import FaultError, SimulationError
from repro.simkernel.events import NORMAL, URGENT
from repro.cluster.network import Network, TransferError
from repro.cluster.node import Node
from repro.evpath.endpoint import Endpoint
from repro.evpath.messages import Message, validate_message
from repro.perf.registry import REGISTRY


class RequestTimeout(FaultError):
    """A request saw no correlated reply within its timeout."""


@dataclass
class RetryPolicy:
    """Retry-with-exponential-backoff for control-plane sends.

    A send that fails with a :class:`FaultError` (dead endpoint node, drop
    or partition window) is retried up to ``attempts`` total tries, sleeping
    ``base_delay * backoff**i`` between them.  Anything that still fails
    propagates the last error to the sender.

    With ``jitter`` > 0 each sleep is scattered by a *deterministic*
    per-(seed, sender, attempt) factor in ``[1 - jitter, 1 + jitter)``:
    retry schedules stay exactly reproducible per DST seed, but two nodes
    retrying into the same healed partition no longer wake in lockstep
    (the thundering-herd the fixed ladder produced).  ``jitter=0`` (the
    default) yields the historical fixed ladder, byte-identical — no
    randomness is consumed, no key is hashed.
    """

    attempts: int = 4
    base_delay: float = 0.05
    backoff: float = 2.0
    #: relative scatter applied to each delay; 0 = legacy fixed ladder
    jitter: float = 0.0
    #: DST seed the scatter derives from (threaded by the builder)
    seed: int = 0

    def _scatter(self, key, attempt: int) -> float:
        """Deterministic factor in [1 - jitter, 1 + jitter) for one sleep.

        SHA-256 of (seed, key, attempt), independent of PYTHONHASHSEED —
        the same seed and sender always produce the same schedule, and
        different senders (or seeds) decorrelate.
        """
        import hashlib

        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        frac = int.from_bytes(digest[:8], "big") / 2**64
        return 1.0 + self.jitter * (2.0 * frac - 1.0)

    def delays(self, key=None):
        delay = self.base_delay
        for attempt in range(max(0, self.attempts - 1)):
            if self.jitter > 0.0 and key is not None:
                yield delay * self._scatter(key, attempt)
            else:
                yield delay
            delay *= self.backoff


class _FastSend:
    """Hand-compiled send chain for the fault-free common case.

    The process-based send costs two generators, two ``Initialize`` events,
    a ``Condition`` and several f-string names per message.  When no faults
    are armed this class walks the *identical* event sequence with bare
    events and plain callbacks:

    ==  =========================  ============================
    #   process path               fast path
    ==  =========================  ============================
    1   Initialize(send proc)      step event -> _begin
    2   Initialize(xfer proc)      step event -> _transfer_start
    3   send-channel Request       same (real Request)
    4   recv-channel Request       same (real Request)
    5   AllOf condition fires      step event -> _serialize
    6   serialization Timeout      same (real Timeout)
    7   xfer process completes     step event -> _deliver
    8   mailbox StorePut           same (real StorePut)
    9   send process completes     ``result`` event
    ==  =========================  ============================

    Each row schedules at the same priority/time and in the same global
    ``schedule()`` call order, so with the default ``InsertionOrder``
    tie-breaker the heap — and therefore every downstream schedule — is
    byte-identical to the process path.  NIC channel contention is real:
    rows 3/4 are ordinary :class:`Resource` requests that queue exactly as
    before.  An intra-node send (``src is dst``) walks the shorter
    1-2-overhead-7-8-9 chain, mirroring the process path's early return.

    :meth:`Messenger.send` only takes this path when ``network.faults`` is
    unarmed and both endpoints are up — the configurations in which the
    process path provably performs no retry and no fault check fires — and
    falls back to the process path otherwise (fault windows, retry/backoff,
    endpoint rehosting all stay on the fully general code).
    """

    __slots__ = (
        "messenger", "src", "dest", "message", "result",
        "_dst", "_granted", "_send_req", "_recv_req", "_start", "_duration",
    )

    def __init__(self, messenger: "Messenger", src_node: Node, dest: Endpoint, message: Message):
        self.messenger = messenger
        self.src = src_node
        self.dest = dest
        self.message = message
        #: fires with the message after mailbox delivery — the drop-in
        #: replacement for the send process's own completion event
        self.result = Event(messenger.env)
        self._granted = 0
        self._step(self._begin, URGENT)

    def _step(self, fn, priority: int) -> None:
        """Schedule a bare event that runs ``fn`` when popped."""
        env = self.messenger.env
        ev = Event(env)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(fn)
        env.schedule(ev, priority)

    def _begin(self, _event) -> None:
        # [1] what the send process did first: control-plane accounting.
        messenger = self.messenger
        messenger.messages_sent += 1
        messenger.bytes_sent += self.message.size_bytes
        self._step(self._transfer_start, URGENT)

    def _transfer_start(self, _event) -> None:
        # [2] the transfer process body up to its first yield.
        src = self.src
        dst = self._dst = self.dest.node  # read here, like the process path
        if src.failed or dst.failed:
            # Unreachable while the send() guard holds (nodes only fail via
            # armed fault plans); kept for parity with _check_endpoints.
            self.result.fail(TransferError(f"node {src.node_id if src.failed else dst.node_id} is down"))
            return
        env = self.messenger.env
        if src is dst:
            # Intra-node move: software overhead only, then deliver.
            t = env.timeout(self.messenger.network.software_overhead)
            t.callbacks.append(self._local_done)
            return
        self._start = env.now
        send_req = self._send_req = src.nic.send_channel.request()
        recv_req = self._recv_req = dst.nic.recv_channel.request()
        send_req.callbacks.append(self._on_grant)
        recv_req.callbacks.append(self._on_grant)

    def _on_grant(self, _event) -> None:
        # [3]/[4] pop; when both channels are held, [5] fires the condition.
        self._granted += 1
        if self._granted == 2:
            self._step(self._serialize, NORMAL)

    def _serialize(self, _event) -> None:
        # [5] pop: start the wire-time clock.
        network = self.messenger.network
        env = network.env
        self._start = env.now - self._start  # now holds the waited time
        duration = self._duration = network.ideal_transfer_time(
            self.src, self._dst, self.message.size_bytes
        )
        t = env.timeout(duration)
        t.callbacks.append(self._transfer_done)

    def _transfer_done(self, _event) -> None:
        # [6] pop: release channels (may grant queued requests, exactly as
        # the process path's finally block), account, complete the transfer.
        src, dst = self.src, self._dst
        src.nic.send_channel.release(self._send_req)
        dst.nic.recv_channel.release(self._recv_req)
        if src.failed or dst.failed:  # parity with the post-check
            self.result.fail(TransferError(f"node {src.node_id if src.failed else dst.node_id} is down"))
            return
        nbytes = self.message.size_bytes
        src.nic.bytes_sent += nbytes
        dst.nic.bytes_received += nbytes
        self.messenger.network.stats.record(
            src.node_id, dst.node_id, nbytes, self._duration, self._start
        )
        self._step(self._deliver, NORMAL)

    def _local_done(self, _event) -> None:
        # Intra-node [overhead] pop -> the transfer process's completion.
        self._step(self._deliver, NORMAL)

    def _deliver(self, _event) -> None:
        # [7] pop: the send process resumed and called dest.deliver().
        put = self.dest.deliver(self.message)
        put.callbacks.append(self._complete)

    def _complete(self, _event) -> None:
        # [8] pop: the send process returned the message -> [9].
        self.result.succeed(self.message)


class Messenger:
    """Registry + transport for endpoints.

    One messenger per experiment; it owns the endpoint namespace and moves
    messages across the :class:`~repro.cluster.network.Network`, charging
    each message's wire size.  Statistics distinguish *control-plane* bytes
    (what Figure 4 calls "point-to-point messages between managers") from the
    data plane, which goes through DataTap instead.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        retry: Optional[RetryPolicy] = None,
    ):
        self.env = env
        self.network = network
        self.retry = retry if retry is not None else RetryPolicy()
        self._endpoints: Dict[str, Endpoint] = {}
        #: control-plane accounting
        self.messages_sent = 0
        self.bytes_sent = 0
        self.retries = 0

    # -- registry -------------------------------------------------------------

    def endpoint(self, node: Node, name: str) -> Endpoint:
        """Create and register an endpoint with a unique name."""
        if name in self._endpoints:
            raise SimulationError(f"endpoint {name!r} already registered")
        ep = Endpoint(self.env, node, name)
        self._endpoints[name] = ep
        return ep

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def lookup(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise SimulationError(f"unknown endpoint {name!r}") from None

    # -- sending ---------------------------------------------------------------

    def send(self, src_node: Node, to: str, message: Message):
        """Send ``message`` to the endpoint named ``to``.

        Returns an event that fires after the message is delivered into the
        destination mailbox.  The payload is validated against the message
        type's declared schema *before* the send is created, so malformed
        control messages raise at the call site.

        Fault-free sends take the :class:`_FastSend` chain — byte-identical
        event sequence, no generator machinery; anything that could drop,
        delay, retry, or lose the message goes through the process path.
        """
        validate_message(message)
        dest = self.lookup(to)
        if self.network.faults is None and not src_node.failed and not dest.node.failed:
            return _FastSend(self, src_node, dest, message).result
        return self.env.process(
            self._send(src_node, dest, message), name=("send {}", message.mtype.value)
        )

    def _send(self, src_node: Node, dest: Endpoint, message: Message):
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        # The jitter key names this send uniquely and deterministically:
        # sender node, destination endpoint, and the send's sequence number.
        key = f"{src_node.node_id}:{dest.name}:{self.messages_sent}"
        delays = iter(self.retry.delays(key))
        while True:
            try:
                # dest.node is read per attempt: a rehosted endpoint's new
                # placement takes effect on the retry.
                yield self.network.transfer(src_node, dest.node, message.size_bytes)
                break
            except FaultError:
                delay = next(delays, None)
                if delay is None:  # retries exhausted: surface the FaultError
                    raise
                self.retries += 1
                REGISTRY.count("evpath.retries")
                yield self.env.timeout(delay)
        yield dest.deliver(message)
        return message

    def request(
        self,
        src_node: Node,
        src_endpoint: Endpoint,
        to: str,
        message: Message,
        timeout: Optional[float] = None,
    ):
        """Send and wait for the correlated reply; value is the reply message.

        With ``timeout`` set, a reply that does not arrive in time fails the
        request with :class:`RequestTimeout` (a :class:`FaultError`, so
        callers can treat it as routine and retry at protocol level).
        """
        return self.env.process(
            self._request(src_node, src_endpoint, to, message, timeout),
            name=("request {}", message.mtype.value),
        )

    def _request(
        self,
        src_node: Node,
        src_endpoint: Endpoint,
        to: str,
        message: Message,
        timeout: Optional[float] = None,
    ):
        yield self.send(src_node, to, message)
        reply_get = src_endpoint.recv_reply(message)
        if timeout is None:
            reply = yield reply_get
            return reply
        timer = self.env.timeout(timeout)
        yield self.env.any_of([reply_get, timer])
        if not reply_get.triggered:
            src_endpoint._inbox.cancel_get(reply_get)
            raise RequestTimeout(
                f"no reply to {message!r} from {to!r} within {timeout}s"
            )
        return reply_get.value


class Channel:
    """A fixed point-to-point pipe between two endpoints.

    Thin convenience over :class:`Messenger` for component-to-component
    links whose ends do not change (e.g. manager <-> replica).
    """

    def __init__(self, messenger: Messenger, src: Endpoint, dst: Endpoint):
        self.messenger = messenger
        self.src = src
        self.dst = dst

    def send(self, message: Message):
        return self.messenger.send(self.src.node, self.dst.name, message)

    def request(self, message: Message):
        return self.messenger.request(self.src.node, self.src, self.dst.name, message)
