"""Message delivery over the simulated network."""

from __future__ import annotations

from typing import Dict

from repro.simkernel import Environment
from repro.simkernel.errors import SimulationError
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.evpath.endpoint import Endpoint
from repro.evpath.messages import Message


class Messenger:
    """Registry + transport for endpoints.

    One messenger per experiment; it owns the endpoint namespace and moves
    messages across the :class:`~repro.cluster.network.Network`, charging
    each message's wire size.  Statistics distinguish *control-plane* bytes
    (what Figure 4 calls "point-to-point messages between managers") from the
    data plane, which goes through DataTap instead.
    """

    def __init__(self, env: Environment, network: Network):
        self.env = env
        self.network = network
        self._endpoints: Dict[str, Endpoint] = {}
        #: control-plane accounting
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- registry -------------------------------------------------------------

    def endpoint(self, node: Node, name: str) -> Endpoint:
        """Create and register an endpoint with a unique name."""
        if name in self._endpoints:
            raise SimulationError(f"endpoint {name!r} already registered")
        ep = Endpoint(self.env, node, name)
        self._endpoints[name] = ep
        return ep

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def lookup(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise SimulationError(f"unknown endpoint {name!r}") from None

    # -- sending ---------------------------------------------------------------

    def send(self, src_node: Node, to: str, message: Message):
        """Send ``message`` to the endpoint named ``to``.

        Returns a process event that fires after the message is delivered
        into the destination mailbox.
        """
        dest = self.lookup(to)
        return self.env.process(
            self._send(src_node, dest, message), name=f"send {message.mtype.value}"
        )

    def _send(self, src_node: Node, dest: Endpoint, message: Message):
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        yield self.network.transfer(src_node, dest.node, message.size_bytes)
        yield dest.deliver(message)
        return message

    def request(self, src_node: Node, src_endpoint: Endpoint, to: str, message: Message):
        """Send and wait for the correlated reply; value is the reply message."""
        return self.env.process(
            self._request(src_node, src_endpoint, to, message),
            name=f"request {message.mtype.value}",
        )

    def _request(self, src_node: Node, src_endpoint: Endpoint, to: str, message: Message):
        yield self.send(src_node, to, message)
        reply = yield src_endpoint.recv_reply(message)
        return reply


class Channel:
    """A fixed point-to-point pipe between two endpoints.

    Thin convenience over :class:`Messenger` for component-to-component
    links whose ends do not change (e.g. manager <-> replica).
    """

    def __init__(self, messenger: Messenger, src: Endpoint, dst: Endpoint):
        self.messenger = messenger
        self.src = src
        self.dst = dst

    def send(self, message: Message):
        return self.messenger.send(self.src.node, self.dst.name, message)

    def request(self, message: Message):
        return self.messenger.request(self.src.node, self.src, self.dst.name, message)
