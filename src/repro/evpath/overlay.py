"""Dynamic monitoring overlays: k-ary aggregation trees over nodes.

The paper (Section III-E, leaning on Wang et al., ICAC'11) gathers metrics
through lightweight 'dynamic overlays' so monitoring traffic does not
perturb the application.  We build a k-ary tree over the participating
nodes; leaves submit metric records, and the tree offers two delivery
modes:

* **immediate** (``flush_interval=None``) — each record propagates leaf to
  root as it arrives, paying network cost per tree edge;
* **windowed** (``flush_interval=w``) — interior vertices buffer records
  and forward one aggregated message per window, so the root's NIC sees
  ``fanout`` messages per window instead of one per leaf report.  This is
  the configurability the paper highlights: "(ii) how often they are
  captured, and (iii) how they are processed and where such processing is
  done".

Edge traffic is counted per vertex so benches can quantify the perturbation
difference between direct reporting and overlay aggregation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.simkernel import Environment, Interrupt
from repro.simkernel.errors import FaultError, SimulationError
from repro.cluster.node import Node
from repro.evpath.channel import Messenger


class _OverlayVertex:
    __slots__ = ("node", "parent", "children", "buffer", "flusher")

    def __init__(self, node: Node, parent: Optional["_OverlayVertex"]):
        self.node = node
        self.parent = parent
        self.children: List["_OverlayVertex"] = []
        self.buffer: List[Any] = []
        self.flusher = None


class OverlayTree:
    """A k-ary aggregation tree rooted at ``root_node``.

    Parameters
    ----------
    aggregate:
        ``aggregate(records: list) -> list`` combining buffered records into
        the (possibly smaller) list forwarded upward.  Defaults to identity
        (records travel individually but share one message per window).
    fanout:
        Maximum children per interior vertex.
    report_bytes:
        Wire size of one report message (aggregated or not).
    flush_interval:
        None for immediate propagation; a window length for batching.
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        root_node: Node,
        leaf_nodes: Sequence[Node],
        on_report: Callable[[Any], None],
        aggregate: Optional[Callable[[List[Any]], List[Any]]] = None,
        fanout: int = 4,
        report_bytes: int = 512,
        flush_interval: Optional[float] = None,
    ):
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        if not leaf_nodes:
            raise ValueError("overlay needs at least one leaf node")
        if flush_interval is not None and flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        self.env = env
        self.messenger = messenger
        self.on_report = on_report
        self.aggregate = aggregate or (lambda records: list(records))
        self.fanout = fanout
        self.report_bytes = report_bytes
        self.flush_interval = flush_interval
        #: total tree-edge messages (perturbation accounting)
        self.messages = 0
        #: messages arriving at the root vertex's node (hot-spot accounting)
        self.root_ingress = 0
        #: reports lost on a faulted tree edge (dead node, drop window)
        self.dropped_reports = 0

        self.root = _OverlayVertex(root_node, None)
        self._leaves: Dict[int, _OverlayVertex] = {}
        self._vertices: List[_OverlayVertex] = [self.root]
        self._build(list(leaf_nodes))
        if flush_interval is not None:
            for vertex in self._vertices:
                if vertex.children or vertex is self.root:
                    vertex.flusher = env.process(
                        self._flush_loop(vertex), name="overlay-flush"
                    )

    def _build(self, leaf_nodes: List[Node]) -> None:
        """Arrange leaves under the root in a balanced k-ary tree."""
        vertices = [_OverlayVertex(node, None) for node in leaf_nodes]
        for vertex in vertices:
            # Last writer wins when several leaves share a node; submit()
            # accepts any registered leaf node.
            self._leaves[vertex.node.node_id] = vertex
        self._vertices.extend(vertices)
        layer = vertices
        while len(layer) > self.fanout:
            parents: List[_OverlayVertex] = []
            for i in range(0, len(layer), self.fanout):
                group = layer[i : i + self.fanout]
                # Parent vertex co-located with its first child: interior
                # aggregation runs on a participating node, not a new one.
                parent = _OverlayVertex(group[0].node, None)
                for child in group:
                    child.parent = parent
                    parent.children.append(child)
                parents.append(parent)
            self._vertices.extend(parents)
            layer = parents
        for vertex in layer:
            vertex.parent = self.root
            self.root.children.append(vertex)

    # -- reporting -----------------------------------------------------------------

    def depth(self) -> int:
        """Longest leaf-to-root edge count."""

        def walk(vertex: _OverlayVertex) -> int:
            if not vertex.children:
                return 0
            return 1 + max(walk(child) for child in vertex.children)

        return walk(self.root)

    def submit(self, leaf_node: Node, record: Any):
        """Submit a metric record at a leaf; returns the delivery process."""
        vertex = self._leaves.get(leaf_node.node_id)
        if vertex is None:
            raise SimulationError(f"node {leaf_node.node_id} is not an overlay leaf")
        if self.flush_interval is None:
            return self.env.process(self._propagate_immediate(vertex, record),
                                    name="overlay-report")
        return self.env.process(self._submit_windowed(vertex, record),
                                name="overlay-report")

    def _send_edge(self, src: _OverlayVertex, dst: _OverlayVertex):
        if dst.node is not src.node:
            self.messages += 1
            if dst is self.root or dst.node is self.root.node:
                self.root_ingress += 1
            return self.messenger.network.transfer(src.node, dst.node, self.report_bytes)
        return self.env.timeout(0)

    def _propagate_immediate(self, vertex: _OverlayVertex, record: Any):
        current = [record]
        while vertex.parent is not None:
            parent = vertex.parent
            try:
                yield self._send_edge(vertex, parent)
            except FaultError:
                # Monitoring is best-effort: a faulted edge loses the
                # report, it must not kill the reporting process.
                self.dropped_reports += 1
                return current
            if parent is self.root:
                break
            current = self.aggregate(current)
            vertex = parent
        for item in self.aggregate(current):
            self.on_report(item)
        return current

    def _submit_windowed(self, vertex: _OverlayVertex, record: Any):
        parent = vertex.parent
        try:
            yield self._send_edge(vertex, parent)
        except FaultError:
            self.dropped_reports += 1
            return
        parent.buffer.append(record)

    def _flush_loop(self, vertex: _OverlayVertex):
        while True:
            try:
                yield self.env.timeout(self.flush_interval)
            except Interrupt:
                return
            if not vertex.buffer:
                continue
            records, vertex.buffer = self.aggregate(vertex.buffer), []
            if vertex is self.root:
                for record in records:
                    self.on_report(record)
                continue
            try:
                yield self._send_edge(vertex, vertex.parent)
            except Interrupt:
                return
            except FaultError:
                # The whole window is lost, but the flusher survives to
                # forward the next one once the fault clears.
                self.dropped_reports += len(records)
                continue
            vertex.parent.buffer.extend(records)

    def stop(self) -> None:
        for vertex in self._vertices:
            if vertex.flusher is not None and vertex.flusher.is_alive:
                vertex.flusher.interrupt("stop")
