"""EVPath-like event messaging: stones, channels, monitoring overlays.

The real system uses Georgia Tech's EVPath library for two things:

1. carrying the container-management *control messages* (the rounds in
   Figure 3) between the global manager, container managers, and component
   executables, and
2. building the *dynamic monitoring overlays* that aggregate per-container
   metrics up to the managers.

This package reproduces that functionality on top of the simulated network:

* :class:`Endpoint` — a mailbox pinned to a cluster node;
* :class:`Stone` — an EVPath "stone": a processing vertex with a handler
  action and output links, composable into dataflow graphs;
* :class:`Channel` — typed point-to-point delivery between endpoints with a
  control-message cost model;
* :class:`OverlayTree` — a k-ary aggregation tree over a set of leaf nodes,
  used by container monitoring.
"""

from repro.evpath.messages import Message, MessageType
from repro.evpath.endpoint import Endpoint
from repro.evpath.channel import Channel, Messenger, RequestTimeout, RetryPolicy
from repro.evpath.stone import Stone, StoneGraph
from repro.evpath.overlay import OverlayTree

__all__ = [
    "Channel",
    "Endpoint",
    "Message",
    "MessageType",
    "Messenger",
    "OverlayTree",
    "RequestTimeout",
    "RetryPolicy",
    "Stone",
    "StoneGraph",
]
