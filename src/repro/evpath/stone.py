"""Stones: EVPath's dataflow vertices.

EVPath structures processing as graphs of *stones*.  Each stone carries an
*action* — a handler, filter, or router — and zero or more output links to
other stones (possibly on other nodes).  We reproduce the subset the paper's
infrastructure needs: handler stones (terminal sinks), filter stones
(predicate drops), transform stones (map), and router stones (choose output
by function), wired into a :class:`StoneGraph` whose cross-node edges incur
network cost.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.simkernel import Environment
from repro.simkernel.errors import SimulationError
from repro.cluster.node import Node
from repro.evpath.channel import Messenger


class Stone:
    """A single dataflow vertex.

    Parameters
    ----------
    action:
        ``handler(event) -> None`` for sinks, ``filter(event) -> bool``,
        ``transform(event) -> event'``, or ``router(event) -> int`` (output
        index).  The ``kind`` parameter selects the interpretation.
    """

    VALID_KINDS = ("handler", "filter", "transform", "router")

    def __init__(
        self,
        graph: "StoneGraph",
        stone_id: int,
        node: Node,
        kind: str,
        action: Callable[[Any], Any],
        name: str = "",
    ):
        if kind not in self.VALID_KINDS:
            raise ValueError(f"unknown stone kind {kind!r}")
        self.graph = graph
        self.stone_id = stone_id
        self.node = node
        self.kind = kind
        self.action = action
        self.name = name or f"stone{stone_id}"
        self.outputs: List["Stone"] = []
        #: events that reached this stone (monitoring)
        self.events_in = 0
        self.events_out = 0

    def link(self, target: "Stone") -> "Stone":
        """Append an output edge to ``target``; returns ``target`` to chain."""
        self.outputs.append(target)
        return target

    def __repr__(self) -> str:
        return f"<Stone {self.name!r} kind={self.kind} node={self.node.node_id}>"


class StoneGraph:
    """A set of stones plus the machinery to push events through them.

    ``submit(stone, event, size_bytes)`` starts a process that applies the
    stone's action and forwards results along output edges, paying network
    cost on cross-node edges.
    """

    def __init__(self, env: Environment, messenger: Messenger):
        self.env = env
        self.messenger = messenger
        self._stones: Dict[int, Stone] = {}
        self._next_id = 0

    def create_stone(
        self,
        node: Node,
        kind: str,
        action: Callable[[Any], Any],
        name: str = "",
    ) -> Stone:
        stone = Stone(self, self._next_id, node, kind, action, name)
        self._stones[self._next_id] = stone
        self._next_id += 1
        return stone

    def submit(self, stone: Stone, event: Any, size_bytes: int = 256):
        """Inject ``event`` at ``stone``; returns the traversal process."""
        return self.env.process(
            self._walk(stone, event, size_bytes), name=("evflow@{}", stone.name)
        )

    def _walk(self, stone: Stone, event: Any, size_bytes: int):
        stone.events_in += 1
        if stone.kind == "handler":
            stone.action(event)
            return event
        if stone.kind == "filter":
            if not stone.action(event):
                return None
            forwarded = event
            targets = stone.outputs
        elif stone.kind == "transform":
            forwarded = stone.action(event)
            targets = stone.outputs
        elif stone.kind == "router":
            index = stone.action(event)
            if index is None:
                return None
            if not (0 <= index < len(stone.outputs)):
                raise SimulationError(
                    f"router {stone.name!r} chose output {index} of {len(stone.outputs)}"
                )
            forwarded = event
            targets = [stone.outputs[index]]
        else:  # pragma: no cover - guarded in Stone.__init__
            raise SimulationError(f"bad stone kind {stone.kind}")

        stone.events_out += len(targets)
        for target in targets:
            if target.node is not stone.node:
                yield self.messenger.network.transfer(stone.node, target.node, size_bytes)
            yield self.env.process(self._walk(target, forwarded, size_bytes))
        return forwarded
