"""Fixed-capacity, sim-time-stamped metric ring buffers.

:class:`MetricSeries` is the storage primitive of the analytics layer: a
preallocated circular buffer of ``(time, value)`` float pairs.  Appends
on the hot path touch two list slots and two integers — no allocation,
no resizing — so the sampling process and the ladder-transition
subscribers can record without perturbing the event schedule.

:class:`SeriesStore` is the per-pipeline registry mapping metric names
to series, with a bridge (:meth:`SeriesStore.sample_counters`) that
snapshots named counters out of the :mod:`repro.perf` registry.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["MetricSeries", "SeriesStore"]


class MetricSeries:
    """Ring buffer of ``(sim_time, value)`` samples with fixed capacity.

    Once ``capacity`` samples have been appended the oldest sample is
    overwritten; ``count`` keeps the lifetime total so callers can tell
    a wrapped buffer from a partially filled one.
    """

    __slots__ = ("name", "capacity", "count", "_times", "_values", "_next")

    def __init__(self, name: str, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.count = 0
        self._times = [0.0] * capacity
        self._values = [0.0] * capacity
        self._next = 0

    def append(self, time: float, value: float) -> None:
        i = self._next
        self._times[i] = time
        self._values[i] = value
        self._next = i + 1 if i + 1 < self.capacity else 0
        self.count += 1

    def __len__(self) -> int:
        return self.capacity if self.count >= self.capacity else self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def last(self) -> Optional[Tuple[float, float]]:
        if self.count == 0:
            return None
        i = self._next - 1 if self._next else self.capacity - 1
        return (self._times[i], self._values[i])

    def window(self, n: Optional[int] = None) -> List[Tuple[float, float]]:
        """The most recent ``n`` samples (all retained ones by default),
        oldest first.  Allocates — meant for queries, not the hot path."""
        size = len(self)
        if n is None or n > size:
            n = size
        if n <= 0:
            return []
        start = (self._next - n) % self.capacity
        out = []
        for k in range(n):
            i = (start + k) % self.capacity
            out.append((self._times[i], self._values[i]))
        return out

    def times(self) -> List[float]:
        return [t for t, _ in self.window()]

    def values(self) -> List[float]:
        return [v for _, v in self.window()]

    def since(self, time: float) -> List[Tuple[float, float]]:
        """Retained samples with timestamp >= ``time``, oldest first."""
        return [(t, v) for t, v in self.window() if t >= time]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "count": self.count,
            "samples": [list(p) for p in self.window()],
        }


class SeriesStore:
    """Name -> :class:`MetricSeries` registry for one pipeline."""

    def __init__(self, default_capacity: int = 256):
        if default_capacity < 1:
            raise ValueError("default_capacity must be >= 1")
        self.default_capacity = default_capacity
        self._series: Dict[str, MetricSeries] = {}

    def series(self, name: str, capacity: Optional[int] = None) -> MetricSeries:
        """Get-or-create the series for ``name``."""
        s = self._series.get(name)
        if s is None:
            s = MetricSeries(name, capacity or self.default_capacity)
            self._series[name] = s
        return s

    def get(self, name: str) -> Optional[MetricSeries]:
        return self._series.get(name)

    def append(self, name: str, time: float, value: float) -> None:
        self.series(name).append(time, value)

    def names(self) -> List[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __len__(self) -> int:
        return len(self._series)

    def sample_counters(
        self,
        registry,
        names: Iterable[str],
        time: float,
        baseline: Optional[Dict[str, float]] = None,
    ) -> None:
        """Append the current value of each named perf counter.

        Missing counters sample as 0 so a series exists from the first
        tick even when the event that bumps the counter hasn't happened
        yet — forecasters want a gapless series.  ``baseline`` maps
        counter name to the count to subtract: the registry is
        process-global, so run-local series must deduct whatever earlier
        runs in the same process accumulated (replay identity depends on
        it).
        """
        for name in names:
            value = float(registry.counter(name))
            if baseline is not None:
                value -= baseline.get(name, 0.0)
            self.append(f"counter.{name}", time, value)

    def as_dict(self) -> dict:
        return {name: self._series[name].as_dict() for name in self.names()}
