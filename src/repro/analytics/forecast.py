"""Online forecasters over metric streams.

Two deliberately small models, both O(1) state per observation and both
pure float arithmetic — no RNG, no wall clock — so a replay of the same
seeded run produces bit-identical forecasts:

* :class:`EWMAForecaster` — an exponentially weighted level.  Uses the
  ``level += alpha * (value - level)`` update form, which is exact (not
  just close) on constant series: the correction term is exactly zero.
* :class:`TrendForecaster` — ordinary least squares over a rolling
  window of the last N samples, extrapolated ``horizon`` seconds past
  the newest sample.  Centred on the window means for numerical
  stability; recovers affine series exactly up to float rounding.

Both return ``None`` until they have seen at least one sample, so
callers can distinguish "no data yet" from "forecast says zero".
"""

from __future__ import annotations

from typing import Optional

from repro.analytics.series import MetricSeries

__all__ = ["EWMAForecaster", "TrendForecaster"]


class EWMAForecaster:
    """Exponentially weighted moving average; flat-line extrapolation."""

    __slots__ = ("alpha", "level", "last_time")

    def __init__(self, alpha: float = 0.4):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.level: Optional[float] = None
        self.last_time: Optional[float] = None

    def observe(self, time: float, value: float) -> None:
        if self.level is None:
            self.level = float(value)
        else:
            # Incremental form: exactly stationary on constant input.
            self.level += self.alpha * (value - self.level)
        self.last_time = time

    def forecast(self, horizon: float = 0.0) -> Optional[float]:
        """EWMA models level only, so the horizon does not move it."""
        return self.level


class TrendForecaster:
    """Rolling least-squares line over the last ``window`` samples."""

    __slots__ = ("_ring",)

    def __init__(self, window: int = 8):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self._ring = MetricSeries("trend", window)

    @property
    def window(self) -> int:
        return self._ring.capacity

    def observe(self, time: float, value: float) -> None:
        self._ring.append(time, value)

    def forecast(self, horizon: float = 0.0) -> Optional[float]:
        n = len(self._ring)
        if n == 0:
            return None
        pts = self._ring.window()
        if n == 1:
            return pts[0][1]
        t_mean = sum(t for t, _ in pts) / n
        v_mean = sum(v for _, v in pts) / n
        num = 0.0
        den = 0.0
        for t, v in pts:
            dt = t - t_mean
            num += dt * (v - v_mean)
            den += dt * dt
        if den == 0.0:
            # All samples at one timestamp: no slope information.
            return v_mean
        slope = num / den
        t_last = pts[-1][0]
        return v_mean + slope * (t_last + horizon - t_mean)
