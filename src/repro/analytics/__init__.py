"""Predictive, metric-driven management (`repro.analytics`).

The paper's global manager is *reactive*: it inspects the current
monitoring snapshot and escalates only after an SLA violation is already
visible.  This package closes the loop ahead of the violation, in the
style of LASSi's derived I/O metrics and low-level time-series I/O
monitoring:

* :mod:`repro.analytics.series` — fixed-capacity, sim-time-stamped ring
  buffers (:class:`MetricSeries`) collected in a :class:`SeriesStore`,
  cheap enough to append on the hot path and fed from the existing
  :mod:`repro.perf` counter registry plus the GM's metric snapshot;
* :mod:`repro.analytics.derived` — LASSi-style per-container risk/ops
  metrics (queue-occupancy risk, buffer-headroom trend, stride-amplified
  demand), computed incrementally as samples arrive;
* :mod:`repro.analytics.forecast` — online forecasters (EWMA level and
  rolling linear trend), deterministic and replay-identical, exposing
  ``forecast(horizon)``;
* :mod:`repro.analytics.predictive` — the :class:`PredictiveManager`
  gluing it together: a sampling process that feeds the series store and
  forecasters, and the signals the overload controllers
  (:class:`~repro.overload.brownout.BrownoutController`,
  :class:`~repro.overload.backpressure.BackpressureController`) consult
  to escalate, stride, and tighten credits *before* the SLA ratio
  crosses its threshold.

Everything is opt-in: a pipeline built without ``mode: predictive`` in
its spec's overload block never constructs any of this, and the reactive
control paths are byte-identical to the pre-analytics tree.
"""

from repro.analytics.series import MetricSeries, SeriesStore
from repro.analytics.derived import ContainerRiskModel, DerivedSample
from repro.analytics.forecast import EWMAForecaster, TrendForecaster
from repro.analytics.predictive import PredictiveConfig, PredictiveManager

__all__ = [
    "MetricSeries",
    "SeriesStore",
    "ContainerRiskModel",
    "DerivedSample",
    "EWMAForecaster",
    "TrendForecaster",
    "PredictiveConfig",
    "PredictiveManager",
]
