"""The predictive policy: sample, derive, forecast, signal.

:class:`PredictiveManager` is the runtime object a pipeline built with
``overload: {mode: predictive}`` carries (``pipe.analytics``).  It owns

* a sampling process that, every ``sample_interval`` simulated seconds,
  folds the GM snapshot, the driver's staging-buffer occupancy, the
  derived risk metrics and a few perf-registry counters into the
  :class:`~repro.analytics.series.SeriesStore`;
* one EWMA + one rolling-trend forecaster per metric, updated as the
  samples land; and
* the query surface the overload controllers consult:
  :meth:`sla_risk` (worst forecast SLA ratio over live containers),
  :meth:`forecast` (per-metric, conservative max of level and trend),
  and :meth:`signal`, which records the forecaster evidence *before* a
  proactive action executes — the DST invariant
  ``predictive_actions_bounded`` audits exactly this ordering.

Everything here is driven by the simulation clock and the deterministic
snapshot order of the GM's insertion-ordered manager dict, so two
replays of the same seeded run produce bit-identical stores, forecasts
and signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.simkernel import Interrupt
from repro.perf.registry import REGISTRY
from repro.analytics.series import SeriesStore
from repro.analytics.derived import ContainerRiskModel
from repro.analytics.forecast import EWMAForecaster, TrendForecaster

__all__ = ["PredictiveConfig", "PredictiveManager"]

#: perf-registry counters mirrored into the series store each sample
SAMPLED_COUNTERS = ("overload.shed", "overload.escalations")


@dataclass(frozen=True)
class PredictiveConfig:
    """Tuning of the sampling/forecasting loop and the proactive policy."""

    #: seconds between metric samples
    sample_interval: float = 5.0
    #: how far ahead (seconds) the controllers ask the forecasters to look
    horizon: float = 30.0
    #: ring-buffer capacity per metric series
    capacity: int = 256
    #: EWMA smoothing factor
    ewma_alpha: float = 0.4
    #: rolling window (samples) for the linear-trend forecaster
    trend_window: int = 8
    #: samples a metric needs before its forecast counts
    min_observations: int = 3
    #: forecast SLA ratio that triggers a proactive escalation
    risk_threshold: float = 1.0
    #: ladder rungs a forecast alone may take; shedding rungs (stride,
    #: offline) always wait for a real violation
    proactive_kinds: Tuple[str, ...] = ("increase", "steal")
    #: ladder height a forecast alone may build — beyond this, escalation
    #: again requires an observed violation
    max_proactive_level: int = 2
    #: recovery dwell multiplier when the forecast confirms the calm
    recovery_dwell_factor: float = 0.5
    #: brownout check-interval multiplier while the forecast confirms the
    #: violation persists — the ladder climbs rung-by-rung but faster
    escalation_check_factor: float = 0.5
    #: cap on the undo_offline dwell multiplier built by premature-recovery
    #: backoff (1.0 disables the backoff entirely)
    offline_backoff_cap: float = 2.0

    def __post_init__(self):
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if self.horizon < 0:
            raise ValueError("horizon must be >= 0")
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if not 0.0 < self.recovery_dwell_factor <= 1.0:
            raise ValueError("recovery_dwell_factor must be in (0, 1]")
        if not 0.0 < self.escalation_check_factor <= 1.0:
            raise ValueError("escalation_check_factor must be in (0, 1]")
        if self.offline_backoff_cap < 1.0:
            raise ValueError("offline_backoff_cap must be >= 1.0")
        unknown = set(self.proactive_kinds) - {"increase", "steal", "stride", "offline"}
        if unknown:
            raise ValueError(f"unknown proactive kinds: {sorted(unknown)}")

    def as_dict(self) -> dict:
        return {
            "sample_interval": self.sample_interval,
            "horizon": self.horizon,
            "capacity": self.capacity,
            "ewma_alpha": self.ewma_alpha,
            "trend_window": self.trend_window,
            "min_observations": self.min_observations,
            "risk_threshold": self.risk_threshold,
            "proactive_kinds": list(self.proactive_kinds),
            "max_proactive_level": self.max_proactive_level,
            "recovery_dwell_factor": self.recovery_dwell_factor,
            "escalation_check_factor": self.escalation_check_factor,
            "offline_backoff_cap": self.offline_backoff_cap,
        }


class PredictiveManager:
    """Samples pipeline metrics and serves forecasts to the controllers."""

    def __init__(self, env, pipe, config: Optional[PredictiveConfig] = None):
        self.env = env
        self.pipe = pipe
        self.config = config or PredictiveConfig()
        self.store = SeriesStore(default_capacity=self.config.capacity)
        self._ewma: Dict[str, EWMAForecaster] = {}
        self._trend: Dict[str, TrendForecaster] = {}
        self._risk: Optional[ContainerRiskModel] = None
        self.signals = 0
        self.samples = 0
        # The perf registry is process-global; snapshot its counts at
        # construction so the mirrored series are run-local deltas and
        # replays are bit-identical regardless of prior runs.
        self._counter_baseline = {
            name: float(REGISTRY.counter(name)) for name in SAMPLED_COUNTERS
        }
        self._stopped = False
        self._proc = env.process(self._run(), name="analytics")

    def stop(self) -> None:
        self._stopped = True
        if self._proc.is_alive:
            self._proc.interrupt("stop")

    # -- transition subscribers (ladder deltas, shed deltas) ------------------------

    def attach(self, pipe) -> None:
        """Subscribe to ladder transitions and shed records so the store
        sees `time_in_degraded` / shed deltas *as they happen*, not at
        pipeline end."""
        pipe.degradation.subscribers.append(self._on_degradation)
        pipe.shed_ledger.subscribers.append(self._on_shed)

    def _on_degradation(self, step, trace) -> None:
        self.store.append("overload.degradation_level", step.time,
                          float(trace.overall_level))
        self.store.append("overload.time_in_degraded", step.time,
                          trace.time_in_degraded(step.time))

    def _on_shed(self, record, ledger) -> None:
        self.store.append("overload.shed_steps", record.time, float(len(ledger.steps())))
        self.store.append(f"shed.{record.stage}", record.time, float(record.timestep))

    # -- the sampling loop ----------------------------------------------------------

    def _run(self):
        interval = self.config.sample_interval
        while True:
            try:
                yield self.env.timeout(interval)
            except Interrupt:
                return
            if self._stopped:
                return
            self.sample()

    def sample(self) -> None:
        """Fold one observation of the whole pipeline into the store."""
        now = self.env.now
        gm = self.pipe.global_manager
        driver = self.pipe.driver
        if gm is None:
            return
        if self._risk is None:
            self._risk = ContainerRiskModel(
                gm.sla_interval, trend_window=self.config.trend_window
            )
        for name, state in gm.snapshot().items():
            if state.offline or not state.active or state.units <= 0:
                continue
            latency = state.effective_latency()
            if latency is not None:
                budget = gm.sla_interval * state.sla_factor
                self.observe(f"{name}.sla_ratio", now, latency / budget)
            self.observe(f"{name}.buffer_occupancy", now, state.buffer_occupancy)
            stride = gm.locals[name].container.stride
            derived = self._risk.update(now, state, stride=stride)
            self.observe(f"{name}.queue_risk", now, derived.queue_risk)
            self.observe(f"{name}.headroom_trend", now, derived.headroom_trend)
            self.observe(f"{name}.stride_demand", now, derived.stride_demand)
        if driver is not None and driver.writers:
            occ = max(w.buffer.occupancy for w in driver.writers)
            self.observe("sim.buffer_occupancy", now, occ)
        self.store.sample_counters(
            REGISTRY, SAMPLED_COUNTERS, now, baseline=self._counter_baseline
        )
        self.samples += 1

    def observe(self, metric: str, time: float, value: float) -> None:
        """Record one sample and update that metric's forecasters."""
        self.store.append(metric, time, value)
        ewma = self._ewma.get(metric)
        if ewma is None:
            ewma = self._ewma[metric] = EWMAForecaster(self.config.ewma_alpha)
            self._trend[metric] = TrendForecaster(self.config.trend_window)
        ewma.observe(time, value)
        self._trend[metric].observe(time, value)

    # -- the query surface ----------------------------------------------------------

    def forecast(self, metric: str, horizon: Optional[float] = None) -> Optional[float]:
        """Conservative forecast for ``metric`` at ``now + horizon``.

        Takes the max of the EWMA level and the trend extrapolation: for
        risk-like metrics a controller should act on whichever model
        paints the darker picture.  None until ``min_observations``
        samples have landed.
        """
        series = self.store.get(metric)
        if series is None or series.count < self.config.min_observations:
            return None
        ewma = self._ewma.get(metric)
        trend_model = self._trend.get(metric)
        if ewma is None and trend_model is None:
            # Series fed straight into the store (counter mirrors,
            # subscriber deltas) carry no forecasters.
            return None
        if horizon is None:
            horizon = self.config.horizon
        level = None if ewma is None else ewma.forecast(horizon)
        trend = None if trend_model is None else trend_model.forecast(horizon)
        if level is None:
            return trend
        if trend is None:
            return level
        return level if level >= trend else trend

    def sla_risk(
        self, horizon: Optional[float] = None, max_age: Optional[float] = None,
    ) -> Optional[Tuple[str, float]]:
        """Worst forecast SLA ratio over live containers: (name, ratio).

        Containers whose ratio series has gone quiet — offline, idle, or
        strided so hard they stopped completing steps — are excluded
        after ``max_age`` (default two sample intervals): a forecaster
        frozen on its last pre-outage sample is evidence of nothing.
        """
        gm = self.pipe.global_manager
        if gm is None:
            return None
        if max_age is None:
            max_age = 2.0 * self.config.sample_interval
        now = self.env.now
        worst: Optional[Tuple[str, float]] = None
        for name, manager in gm.locals.items():
            container = manager.container
            if container.offline or not getattr(container, "active", True):
                continue
            series = self.store.get(f"{name}.sla_ratio")
            last = series.last() if series is not None else None
            if last is None or now - last[0] > max_age:
                continue
            value = self.forecast(f"{name}.sla_ratio", horizon)
            if value is None:
                continue
            if worst is None or value > worst[1]:
                worst = (name, value)
        return worst

    def shed_pressure(self, stage: str, window: Optional[float] = None) -> int:
        """Sheds attributed to ``stage`` within the trailing ``window``.

        Counts the ``shed.{stage}`` series (fed by the ledger subscriber
        the moment each record lands), so a recovery decision can rank
        ladder rungs by which stage is *currently* losing work.  The
        window defaults to the forecast horizon.
        """
        series = self.store.get(f"shed.{stage}")
        if series is None:
            return 0
        if window is None:
            window = self.config.horizon
        return len(series.since(self.env.now - window))

    def signal(self, kind: str, value: float, subject: str = "") -> float:
        """Record forecaster evidence ahead of a proactive action.

        Returns the signal time; the ``predictive_actions_bounded`` DST
        invariant requires every proactive trace step to be preceded by
        one of these at or before its transition time.
        """
        now = self.env.now
        self.store.append(f"signal.{kind}", now, float(value))
        self.signals += 1
        REGISTRY.count("analytics.signals")
        if subject:
            self.pipe.telemetry.mark(
                now, f"predictive signal {kind}: {subject} -> {value:.3f}"
            )
        return now

    def as_dict(self) -> dict:
        return {
            "config": self.config.as_dict(),
            "samples": self.samples,
            "signals": self.signals,
            "series": self.store.names(),
        }
