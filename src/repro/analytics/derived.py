"""LASSi-style derived per-container risk/ops metrics.

LASSi distils raw Lustre counters into a small set of *derived* metrics
(risk, ops intensity) that rank applications by how close they are to
hurting the filesystem.  The analogue here works off the GM's
:class:`~repro.containers.policy.ContainerState` snapshot and derives,
incrementally per sample:

* ``queue_risk`` — queued chunks per allocated unit, scaled by how far
  the container's latency estimate sits above its SLA share.  Rises
  before the SLA ratio itself crosses 1.0 because backlog accumulates
  first.
* ``headroom_trend`` — least-squares slope (per second) of the output
  buffer *headroom* ``1 - occupancy``.  Negative means the buffer is
  filling; the magnitude says how fast.
* ``stride_demand`` — node shortfall amplified by the current output
  stride: work currently being decimated returns in full once the
  stride unwinds, so the true demand is the shortfall scaled back up.

The model keeps one rolling trend window per container and updates in
O(window) per sample with no allocation beyond the returned tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analytics.forecast import TrendForecaster

__all__ = ["DerivedSample", "ContainerRiskModel"]


@dataclass(frozen=True)
class DerivedSample:
    """One container's derived metrics at one sample time."""

    name: str
    time: float
    queue_risk: float
    headroom_trend: float
    stride_demand: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "time": self.time,
            "queue_risk": self.queue_risk,
            "headroom_trend": self.headroom_trend,
            "stride_demand": self.stride_demand,
        }


class ContainerRiskModel:
    """Incremental derived-metric computation for a set of containers."""

    def __init__(self, sla_interval: float, trend_window: int = 8):
        if sla_interval <= 0:
            raise ValueError("sla_interval must be positive")
        self.sla_interval = sla_interval
        self.trend_window = trend_window
        self._headroom: Dict[str, TrendForecaster] = {}

    def update(self, time: float, state, stride: int = 1) -> DerivedSample:
        """Fold one snapshot row in and return the derived metrics.

        ``state`` is a :class:`~repro.containers.policy.ContainerState`;
        ``stride`` is the pipeline's current output stride (>= 1).
        """
        units = max(1, state.units)
        backlog_per_unit = state.queued / units

        latency = state.effective_latency()
        budget = self.sla_interval * state.sla_factor
        pressure = 1.0 if latency is None or budget <= 0 else max(1.0, latency / budget)
        queue_risk = backlog_per_unit * pressure

        trend = self._headroom.get(state.name)
        if trend is None:
            trend = self._headroom[state.name] = TrendForecaster(self.trend_window)
        trend.observe(time, 1.0 - state.buffer_occupancy)
        headroom_trend = self._slope(trend)

        stride_demand = float(max(0, state.shortfall)) * max(1, stride)

        return DerivedSample(
            name=state.name,
            time=time,
            queue_risk=queue_risk,
            headroom_trend=headroom_trend,
            stride_demand=stride_demand,
        )

    def headroom_forecast(self, name: str, horizon: float) -> Optional[float]:
        """Forecast headroom for ``name`` at ``now + horizon`` (None if unseen)."""
        trend = self._headroom.get(name)
        return None if trend is None else trend.forecast(horizon)

    @staticmethod
    def _slope(trend: TrendForecaster) -> float:
        """Slope of the fitted line in units per second (0 until 2 samples)."""
        now_val = trend.forecast(0.0)
        ahead_val = trend.forecast(1.0)
        if now_val is None or ahead_val is None:
            return 0.0
        return ahead_val - now_val
