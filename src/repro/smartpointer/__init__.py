"""SmartPointer analytics toolkit: real kernels + DES cost models.

The four analysis actions of Table I, each implemented twice:

* a **real NumPy kernel** operating on atom arrays (used by the examples and
  tests, and validated against the crack experiment's ground truth);
* a **cost model** with the complexity, compute model, and branching
  behaviour of Table I, used when the pipeline runs at Franklin scale inside
  the discrete-event simulation.

===========  ==========  ===================  =================
Action       Complexity  Compute model        Dynamic branching
===========  ==========  ===================  =================
Helper       O(n)        Tree                 No
Bonds        O(n^2)      Serial, RR, Parallel Yes
CSym         O(n)        Serial, RR           No
CNA          O(n^3)      Serial, RR           No
===========  ==========  ===================  =================
"""

from repro.smartpointer.helper import helper_merge
from repro.smartpointer.bonds import bonds_adjacency, adjacency_csr, adjacency_list
from repro.smartpointer.csym import central_symmetry, detect_break
from repro.smartpointer.cna import common_neighbor_analysis, CNA_FCC, CNA_HCP, CNA_OTHER
from repro.smartpointer.costs import ComputeModel, CostModel, SMARTPOINTER_COSTS
from repro.smartpointer.component import ComponentSpec, SMARTPOINTER_COMPONENTS

__all__ = [
    "CNA_FCC",
    "CNA_HCP",
    "CNA_OTHER",
    "ComponentSpec",
    "ComputeModel",
    "CostModel",
    "SMARTPOINTER_COMPONENTS",
    "SMARTPOINTER_COSTS",
    "adjacency_csr",
    "adjacency_list",
    "bonds_adjacency",
    "central_symmetry",
    "common_neighbor_analysis",
    "detect_break",
    "helper_merge",
]
