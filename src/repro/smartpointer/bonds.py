"""Bonds: determine which atom pairs are currently bonded.

The SmartPointer Bonds action reads atom positions and emits (a) the atom
data it ingested and (b) an adjacency list of bonded pairs.  Table I
characterizes it as O(n^2) — the original toolkit's brute-force scan — with
Serial, round-robin, and parallel compute models.  Both the faithful O(n^2)
kernel and the cell-list O(n) kernel are provided; the benchmarks fit both
scaling exponents.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.lammps.neighbor import CellList, neighbor_pairs


def bonds_adjacency(
    positions: np.ndarray, cutoff: float, method: str = "naive"
) -> np.ndarray:
    """Bonded pairs ``(m, 2)`` with ``i < j``.

    ``method='naive'`` is the O(n^2) scan of Table I; ``method='celllist'``
    is the O(n) spatial-binning variant.  Both return identical pair sets.
    """
    if method == "naive":
        return neighbor_pairs(positions, cutoff)
    if method == "celllist":
        pairs = CellList(positions, cutoff).pairs()
        if len(pairs) == 0:
            return pairs
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        return pairs[order]
    raise ValueError(f"unknown method {method!r}")


def adjacency_list(pairs: np.ndarray, natoms: int) -> List[np.ndarray]:
    """Per-atom neighbour index lists from a pair array."""
    if natoms < 0:
        raise ValueError("natoms must be non-negative")
    neighbors: List[List[int]] = [[] for _ in range(natoms)]
    for i, j in pairs:
        neighbors[int(i)].append(int(j))
        neighbors[int(j)].append(int(i))
    return [np.array(sorted(lst), dtype=np.int64) for lst in neighbors]


def coordination_numbers(pairs: np.ndarray, natoms: int) -> np.ndarray:
    """Number of bonds per atom, vectorized."""
    counts = np.zeros(natoms, dtype=np.int64)
    if len(pairs):
        np.add.at(counts, pairs[:, 0], 1)
        np.add.at(counts, pairs[:, 1], 1)
    return counts
