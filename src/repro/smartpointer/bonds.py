"""Bonds: determine which atom pairs are currently bonded.

The SmartPointer Bonds action reads atom positions and emits (a) the atom
data it ingested and (b) an adjacency list of bonded pairs.  Table I
characterizes it as O(n^2) — the original toolkit's brute-force scan — with
Serial, round-robin, and parallel compute models.  Both the faithful O(n^2)
kernel and the cell-list O(n) kernel are provided; the benchmarks fit both
scaling exponents.

Adjacency is held in CSR form (``indptr``/``indices`` arrays, neighbours
ascending within each row): one ``lexsort`` over the doubled pair array
replaces the seed's O(m) Python append loop, and the same representation is
reused by CSym's neighbour gathering and CNA's common-neighbour
intersections.  Cell-list results are memoized per snapshot through
:data:`repro.perf.cache.KERNEL_CACHE`, so pipeline stages that re-derive the
Bonds adjacency share one computation per timestep.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.lammps.neighbor import CellList, neighbor_pairs
from repro.perf.cache import KERNEL_CACHE
from repro.perf.registry import REGISTRY as _perf


def bonds_adjacency(
    positions: np.ndarray, cutoff: float, method: str = "naive"
) -> np.ndarray:
    """Bonded pairs ``(m, 2)`` with ``i < j``, in lexicographic order.

    ``method='naive'`` is the O(n^2) scan of Table I; ``method='celllist'``
    is the O(n) spatial-binning variant.  Both return identical pair sets;
    the cell-list path is snapshot-cached (and therefore read-only).
    """
    if method == "naive":
        return neighbor_pairs(positions, cutoff)
    if method == "celllist":
        with _perf.timer("bonds.adjacency"):
            return KERNEL_CACHE.pairs(positions, cutoff)
    raise ValueError(f"unknown method {method!r}")


def adjacency_csr(pairs: np.ndarray, natoms: int) -> Tuple[np.ndarray, np.ndarray]:
    """CSR adjacency from a pair array: ``(indptr, indices)``.

    Atom ``i``'s neighbours are ``indices[indptr[i]:indptr[i + 1]]``, sorted
    ascending.  Built with one lexsort of the doubled pair array — no
    per-pair Python loop.
    """
    if natoms < 0:
        raise ValueError("natoms must be non-negative")
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    if len(pairs) == 0:
        return np.zeros(natoms + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    src = np.concatenate([pairs[:, 0], pairs[:, 1]])
    dst = np.concatenate([pairs[:, 1], pairs[:, 0]])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=natoms)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return indptr, dst


def adjacency_list(pairs: np.ndarray, natoms: int) -> List[np.ndarray]:
    """Per-atom neighbour index lists from a pair array.

    Same list-of-arrays API as the seed (each entry sorted ascending), but
    sliced out of the CSR arrays instead of appended pair by pair.
    """
    indptr, indices = adjacency_csr(pairs, natoms)
    return [indices[indptr[i] : indptr[i + 1]] for i in range(natoms)]


def _reference_adjacency_list(pairs: np.ndarray, natoms: int) -> List[np.ndarray]:
    """Seed O(m) Python append-loop implementation (kept for the
    equivalence tests and the before/after bench numbers)."""
    if natoms < 0:
        raise ValueError("natoms must be non-negative")
    neighbors: List[List[int]] = [[] for _ in range(natoms)]
    for i, j in pairs:
        neighbors[int(i)].append(int(j))
        neighbors[int(j)].append(int(i))
    return [np.array(sorted(lst), dtype=np.int64) for lst in neighbors]


def coordination_numbers(pairs: np.ndarray, natoms: int) -> np.ndarray:
    """Number of bonds per atom, vectorized."""
    counts = np.zeros(natoms, dtype=np.int64)
    if len(pairs):
        np.add.at(counts, pairs[:, 0], 1)
        np.add.at(counts, pairs[:, 1], 1)
    return counts
