"""Calibrated cost models for running SmartPointer actions at Franklin scale.

The DES experiments (Figures 7-10) need per-chunk *service times* for each
analysis action at Table II data sizes.  We cannot measure the original
toolkit on a Cray, so the models here are calibrated to reproduce the
*relationships* the paper reports (see DESIGN.md "shape criteria"):

* Bonds is the pipeline bottleneck at every scale; its initial allocation
  falls short by a small number of replicas at 256 simulation nodes
  (fixable by stealing), by slightly more at 512 (insufficient but
  survivable), and unrecoverably at 1024 (must go offline).
* Helper is over-provisioned at the default allocation — the donor
  container.
* CSym sustains the rate at 256/512 and fails at 1024 (taken offline with
  Bonds in Figure 9).
* CNA is expensive and only merited after a crack event.

Service-time law: ``t(n) = base_seconds * (n / reference_atoms) ** exponent``
scaled by the compute model:

* TREE / PARALLEL divide by the allocated units (+ per-rank overhead for
  PARALLEL);
* SERIAL and ROUND_ROBIN keep per-chunk time constant — round-robin
  replication raises *throughput*, not per-chunk speed, exactly as the
  paper describes ("spawn additional parallel instances fed by subsequent
  simulation output steps").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ComputeModel(Enum):
    TREE = "tree"
    SERIAL = "serial"
    ROUND_ROBIN = "rr"
    PARALLEL = "parallel"


#: Table II reference point: the 256-node run's atom count.
REFERENCE_ATOMS = 8_819_989


@dataclass(frozen=True)
class CostModel:
    """Per-chunk service time for one analysis action."""

    name: str
    base_seconds: float
    exponent: float
    reference_atoms: int = REFERENCE_ATOMS
    parallel_overhead: float = 0.05

    def __post_init__(self):
        if self.base_seconds <= 0:
            raise ValueError("base_seconds must be positive")
        if self.reference_atoms <= 0:
            raise ValueError("reference_atoms must be positive")

    def serial_time(self, natoms: int) -> float:
        """Per-chunk service time on one unit."""
        if natoms < 0:
            raise ValueError("natoms must be non-negative")
        return self.base_seconds * (natoms / self.reference_atoms) ** self.exponent

    def service_time(self, natoms: int, units: int = 1,
                     model: ComputeModel = ComputeModel.ROUND_ROBIN) -> float:
        """Per-chunk service time given ``units`` allocated nodes/ranks."""
        if units < 1:
            raise ValueError("units must be >= 1")
        base = self.serial_time(natoms)
        if model in (ComputeModel.SERIAL, ComputeModel.ROUND_ROBIN):
            return base
        if model is ComputeModel.TREE:
            return base / units
        if model is ComputeModel.PARALLEL:
            return base / units + self.parallel_overhead * units
        raise ValueError(f"unknown compute model {model}")

    def throughput(self, natoms: int, units: int = 1,
                   model: ComputeModel = ComputeModel.ROUND_ROBIN) -> float:
        """Sustainable chunks/second with ``units`` allocated."""
        per_chunk = self.service_time(natoms, units, model)
        if model is ComputeModel.ROUND_ROBIN:
            return units / per_chunk
        return 1.0 / per_chunk

    def units_to_sustain(self, natoms: int, interval: float,
                         model: ComputeModel = ComputeModel.ROUND_ROBIN,
                         max_units: int = 4096) -> int:
        """Minimum units whose throughput matches a 1/interval arrival rate.

        Returns ``max_units + 1`` if unreachable (e.g. a SERIAL component
        slower than the interval).
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        rate = 1.0 / interval
        for units in range(1, max_units + 1):
            if self.throughput(natoms, units, model) >= rate:
                return units
        return max_units + 1


#: Calibrated models (see module docstring for the calibration targets).
SMARTPOINTER_COSTS = {
    "helper": CostModel("helper", base_seconds=20.0, exponent=1.0),
    "bonds": CostModel("bonds", base_seconds=70.0, exponent=1.515),
    "csym": CostModel("csym", base_seconds=30.0, exponent=1.1),
    "cna": CostModel("cna", base_seconds=80.0, exponent=1.2),
}
