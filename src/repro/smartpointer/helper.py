"""LAMMPS Helper: the aggregation stage.

The Helper is an aggregation tree that accepts atom data from the parallel
simulation's many writers and presents downstream actions with one coherent
per-timestep dataset.  The real kernel merges the per-writer fragments and
re-orders by atom id — O(n) work dominated by the sort/scatter.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def helper_merge(fragments: Sequence[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
    """Merge per-writer fragments into one id-ordered dataset.

    Each fragment is a dict of equally-long arrays that must include ``id``.
    Returns the concatenation of every field, re-ordered so ``id`` is
    ascending.  Raises on duplicate or missing ids relative to the combined
    id set (the aggregation tree must not silently lose atoms).
    """
    if not fragments:
        raise ValueError("helper_merge needs at least one fragment")
    keys = set(fragments[0].keys())
    if "id" not in keys:
        raise ValueError("fragments must carry an 'id' field")
    for frag in fragments:
        if set(frag.keys()) != keys:
            raise ValueError("all fragments must have the same fields")
        lengths = {len(v) for v in frag.values()}
        if len(lengths) != 1:
            raise ValueError("fields within a fragment must have equal length")

    merged = {key: np.concatenate([np.asarray(f[key]) for f in fragments])
              for key in keys}
    ids = merged["id"]
    if len(np.unique(ids)) != len(ids):
        raise ValueError("duplicate atom ids across fragments")
    order = np.argsort(ids, kind="stable")
    return {key: value[order] for key, value in merged.items()}


def partition_atoms(data: Dict[str, np.ndarray], nparts: int) -> List[Dict[str, np.ndarray]]:
    """Split a dataset into ``nparts`` contiguous fragments (inverse of merge).

    Used by tests and by the examples to emulate the parallel simulation's
    per-writer output.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    n = len(data["id"])
    bounds = np.linspace(0, n, nparts + 1).astype(int)
    return [
        {key: value[bounds[k] : bounds[k + 1]] for key, value in data.items()}
        for k in range(nparts)
    ]
