"""Fragment detection and tracking: the CTH shock-physics use case.

The paper's future work (Section I): apply containers to the CTH shock
physics code "as part of a data pipeline that turns the raw atomic data into
materials fragments to allow tracking.  By moving this workflow online, data
can be staged and processed, both generating fragments and tracking them as
they evolve in the simulation."

Both halves are implemented here with real algorithms:

* :func:`find_fragments` — connected components of the bond graph (scipy
  sparse csgraph), labeling each atom with its fragment id;
* :class:`FragmentTracker` — persistent identity across timesteps by
  greatest atom overlap, emitting split / merge / appear / vanish events.

The tracker is *stateful* — its previous-epoch labeling is state that must
survive container resizes — which makes it the canonical test case for the
stateful-analytics support (the paper's other future-work item).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components


def find_fragments(pairs: np.ndarray, natoms: int,
                   min_size: int = 1) -> Tuple[np.ndarray, int]:
    """Label each atom with its fragment (connected component of bonds).

    Returns ``(labels, count)``; atoms in components smaller than
    ``min_size`` get label -1 (debris, excluded from tracking).
    """
    if natoms < 0:
        raise ValueError("natoms must be non-negative")
    if natoms == 0:
        return np.empty(0, dtype=np.int64), 0
    if len(pairs) == 0:
        labels = np.arange(natoms, dtype=np.int64)
        if min_size > 1:
            return np.full(natoms, -1, dtype=np.int64), 0
        return labels, natoms
    data = np.ones(len(pairs), dtype=np.int8)
    graph = coo_matrix(
        (data, (pairs[:, 0], pairs[:, 1])), shape=(natoms, natoms)
    )
    count, labels = connected_components(graph, directed=False)
    labels = labels.astype(np.int64)
    if min_size > 1:
        sizes = np.bincount(labels, minlength=count)
        keep = sizes >= min_size
        # Re-number surviving fragments densely; drop the rest to -1.
        remap = np.full(count, -1, dtype=np.int64)
        remap[keep] = np.arange(int(keep.sum()))
        labels = remap[labels]
        count = int(keep.sum())
    return labels, count


@dataclass
class FragmentEvent:
    """One identity-change event between consecutive epochs."""

    kind: str          # "appear" | "vanish" | "split" | "merge"
    epoch: int
    fragment_ids: Tuple[int, ...]
    detail: str = ""


class FragmentTracker:
    """Tracks fragment identity across epochs by atom overlap.

    Each epoch, new components are matched to previous fragments by the
    largest shared atom count; a previous fragment whose atoms land in
    several new components *splits* (the largest heir keeps the id); several
    previous fragments landing in one component *merge* (the largest
    constituent's id survives).
    """

    def __init__(self, min_size: int = 2):
        if min_size < 1:
            raise ValueError("min_size must be >= 1")
        self.min_size = min_size
        self.epoch = -1
        self._next_id = 0
        #: atom index -> persistent fragment id (or -1) for the last epoch
        self.ids: Optional[np.ndarray] = None
        self.events: List[FragmentEvent] = []
        #: persistent id -> atom count at the last epoch
        self.sizes: Dict[int, int] = {}

    # -- state snapshot (for container state migration) -------------------------------

    def state_bytes(self) -> int:
        """Size of the tracker's migratable state."""
        return 0 if self.ids is None else int(self.ids.nbytes) + 64 * len(self.sizes)

    def snapshot(self) -> dict:
        return {
            "epoch": self.epoch,
            "next_id": self._next_id,
            "ids": None if self.ids is None else self.ids.copy(),
            "sizes": dict(self.sizes),
        }

    @classmethod
    def restore(cls, state: dict, min_size: int = 2) -> "FragmentTracker":
        tracker = cls(min_size=min_size)
        tracker.epoch = state["epoch"]
        tracker._next_id = state["next_id"]
        tracker.ids = None if state["ids"] is None else state["ids"].copy()
        tracker.sizes = dict(state["sizes"])
        return tracker

    # -- tracking ----------------------------------------------------------------------

    def update(self, pairs: np.ndarray, natoms: int) -> np.ndarray:
        """Ingest one epoch's bond list; returns persistent ids per atom."""
        self.epoch += 1
        labels, count = find_fragments(pairs, natoms, self.min_size)
        if self.ids is None or len(self.ids) != natoms:
            # First epoch (or atom count changed): mint fresh ids.
            ids = np.full(natoms, -1, dtype=np.int64)
            for comp in range(count):
                ids[labels == comp] = self._mint()
            self._finish(ids)
            return ids

        previous = self.ids
        # Overlap matrix: for each new component, count atoms from each old id.
        new_ids = np.full(natoms, -1, dtype=np.int64)
        heirs: Dict[int, List[Tuple[int, int]]] = {}  # old id -> [(overlap, comp)]
        claims: Dict[int, List[Tuple[int, int]]] = {}  # comp -> [(overlap, old id)]
        for comp in range(count):
            members = labels == comp
            olds, counts = np.unique(previous[members], return_counts=True)
            for old, n in zip(olds, counts):
                if old < 0:
                    continue
                heirs.setdefault(int(old), []).append((int(n), comp))
                claims.setdefault(comp, []).append((int(n), int(old)))

        # Each component takes the old id with the biggest overlap, unless a
        # bigger heir of that id exists (then this component is a split-off).
        winner_of: Dict[int, int] = {}  # old id -> winning comp
        for old, candidates in heirs.items():
            candidates.sort(reverse=True)
            winner_of[old] = candidates[0][1]

        assigned: Dict[int, int] = {}  # comp -> persistent id
        for comp in range(count):
            best_old = None
            best_overlap = 0
            for overlap, old in claims.get(comp, []):
                if winner_of.get(old) == comp and overlap > best_overlap:
                    best_old, best_overlap = old, overlap
            if best_old is None:
                fid = self._mint()
                origin = [old for _, old in claims.get(comp, [])]
                kind = "split" if origin else "appear"
                self.events.append(FragmentEvent(
                    kind=kind, epoch=self.epoch, fragment_ids=(fid,),
                    detail=f"from {sorted(origin)}" if origin else "",
                ))
            else:
                fid = best_old
                losers = [old for _, old in claims.get(comp, [])
                          if old != best_old and winner_of.get(old) == comp]
                if losers:
                    self.events.append(FragmentEvent(
                        kind="merge", epoch=self.epoch,
                        fragment_ids=tuple(sorted([best_old] + losers)),
                        detail=f"into {best_old}",
                    ))
            assigned[comp] = fid
            new_ids[labels == comp] = fid

        survivors = set(assigned.values())
        for old in self.sizes:
            if old not in survivors:
                self.events.append(FragmentEvent(
                    kind="vanish", epoch=self.epoch, fragment_ids=(old,),
                ))
        self._finish(new_ids)
        return new_ids

    def _mint(self) -> int:
        fid = self._next_id
        self._next_id += 1
        return fid

    def _finish(self, ids: np.ndarray) -> None:
        self.ids = ids
        present, counts = np.unique(ids[ids >= 0], return_counts=True)
        self.sizes = {int(f): int(n) for f, n in zip(present, counts)}

    @property
    def fragment_count(self) -> int:
        return len(self.sizes)
