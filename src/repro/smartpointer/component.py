"""Component descriptors: Table I as data.

A :class:`ComponentSpec` bundles what the container framework needs to know
about an analysis action — its complexity label, supported compute models,
branching behaviour, cost model, and (when running on real data) its kernel.
The four SmartPointer actions are registered in
:data:`SMARTPOINTER_COMPONENTS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.smartpointer.costs import ComputeModel, CostModel, SMARTPOINTER_COSTS


@dataclass(frozen=True)
class ComponentSpec:
    """Static description of one analysis action."""

    name: str
    complexity: str
    compute_models: Tuple[ComputeModel, ...]
    dynamic_branching: bool
    cost: CostModel
    #: Fraction of the input size this component's output occupies (the
    #: derived chunk it forwards downstream).  Bonds forwards atoms + an
    #: adjacency list, so > 1; labeling stages forward compact annotations.
    output_ratio: float = 1.0
    #: Whether the component is essential: non-essential containers are the
    #: candidates for being taken offline.
    essential: bool = False
    #: Stateful components carry per-replica state (e.g. the fragment
    #: tracker's previous-epoch labeling) that must be migrated during
    #: resizes — the paper's future-work item, supported by the protocols.
    stateful: bool = False
    #: Migratable state size as a fraction of the per-timestep data size.
    state_ratio: float = 0.0

    def state_bytes(self, natoms: int) -> float:
        """Bytes of per-replica state to migrate on a resize."""
        if not self.stateful:
            return 0.0
        return natoms * 8.0 * self.state_ratio

    def default_model(self) -> ComputeModel:
        """The compute model the containers use unless told otherwise."""
        if ComputeModel.ROUND_ROBIN in self.compute_models:
            return ComputeModel.ROUND_ROBIN
        return self.compute_models[0]


#: Cost model for the on-demand visualization component (a ParaView-style
#: renderer reading staged data).  Not part of the SmartPointer toolkit
#: proper, but the paper's introduction runs "online I/O data visualization
#: with ParaView in one container" and steals from it when analytics need
#: nodes, so it gets a spec of its own.
from repro.smartpointer.costs import CostModel as _CostModel

VIZ_COMPONENT = ComponentSpec(
    name="viz",
    complexity="O(n)",
    compute_models=(ComputeModel.SERIAL, ComputeModel.ROUND_ROBIN),
    dynamic_branching=False,
    cost=_CostModel("viz", base_seconds=18.0, exponent=1.0),
    output_ratio=0.02,  # rendered frames, tiny next to the atom data
    essential=False,
)

#: The CTH-style fragment detection + tracking component (see
#: repro.smartpointer.fragments).  Stateful: the tracker's previous-epoch
#: atom-to-fragment labeling (~8 B/atom) migrates on every resize.
FRAGMENTS_COMPONENT = ComponentSpec(
    name="fragments",
    complexity="O(n)",
    compute_models=(ComputeModel.SERIAL, ComputeModel.ROUND_ROBIN),
    dynamic_branching=False,
    cost=_CostModel("fragments", base_seconds=25.0, exponent=1.0),
    output_ratio=0.15,
    stateful=True,
    state_ratio=1.0,
)

SMARTPOINTER_COMPONENTS = {
    "helper": ComponentSpec(
        name="helper",
        complexity="O(n)",
        compute_models=(ComputeModel.TREE,),
        dynamic_branching=False,
        cost=SMARTPOINTER_COSTS["helper"],
        output_ratio=1.0,
        essential=True,  # everything downstream depends on aggregation
    ),
    "bonds": ComponentSpec(
        name="bonds",
        complexity="O(n^2)",
        compute_models=(
            ComputeModel.SERIAL,
            ComputeModel.ROUND_ROBIN,
            ComputeModel.PARALLEL,
        ),
        dynamic_branching=True,
        cost=SMARTPOINTER_COSTS["bonds"],
        output_ratio=1.4,  # atoms plus the bonded-pair adjacency list
    ),
    "csym": ComponentSpec(
        name="csym",
        complexity="O(n)",
        compute_models=(ComputeModel.SERIAL, ComputeModel.ROUND_ROBIN),
        dynamic_branching=False,
        cost=SMARTPOINTER_COSTS["csym"],
        output_ratio=0.15,  # one scalar per atom vs the full record
    ),
    "cna": ComponentSpec(
        name="cna",
        complexity="O(n^3)",
        compute_models=(ComputeModel.SERIAL, ComputeModel.ROUND_ROBIN),
        dynamic_branching=False,
        cost=SMARTPOINTER_COSTS["cna"],
        output_ratio=0.15,  # per-atom structural labels
    ),
}
