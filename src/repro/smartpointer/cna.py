"""CNA: common neighbor analysis for structural labeling.

Common Neighbor Analysis (Honeycutt & Andersen 1987) classifies the local
environment of each bonded pair by the triplet

    (ncn, nb, lcb) = (#common neighbours, #bonds among them,
                      longest bond chain among them)

and labels each *atom* by the multiset of its pairs' signatures: an fcc atom
has twelve (4,2,1) pairs; an hcp atom has six (4,2,1) and six (4,2,2); in
2-D triangular crystals interior atoms show six (2,0,0) pairs (the two
common neighbours of a first-shell bond sit sqrt(3)*r0 apart, beyond the
bond cutoff).  Everything else is 'other' — surfaces, defects, crack faces.

Table I characterizes SmartPointer's CNA as O(n^3): the toolkit's
implementation intersects neighbour sets via dense adjacency operations.
The kernel here is the faithful per-pair set intersection; its cost grows
with n * k^2 (k = coordination), which at fixed density is linear in n —
the benchmark reports both the fitted exponent and the dense-matrix variant
used to exhibit the cubic behaviour.

Neighbour sets come from the shared CSR adjacency (sorted rows, memoized
per snapshot by the kernel cache), so common neighbours are sorted-array
intersections instead of per-atom Python set builds; the seed set-based
kernel is kept as :func:`_reference_pair_signatures` for the equivalence
tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.perf.cache import KERNEL_CACHE
from repro.perf.registry import REGISTRY as _perf
from repro.smartpointer.bonds import _reference_adjacency_list

CNA_FCC = 1
CNA_HCP = 2
CNA_TRIANGULAR = 3
CNA_OTHER = 0

#: Signature multisets -> label.  Keys are sorted tuples of pair signatures.
_ATOM_PATTERNS = {
    ((4, 2, 1),) * 12: CNA_FCC,
    tuple(sorted([(4, 2, 1)] * 6 + [(4, 2, 2)] * 6)): CNA_HCP,
    ((2, 0, 0),) * 6: CNA_TRIANGULAR,
}


def _longest_chain(members_set: set, adjacency) -> int:
    """Longest path length (in bonds) within the induced common-neighbor graph.

    The common-neighbour sets here are tiny (<= ~6 atoms), so a DFS per
    member is cheap and exact.  ``adjacency`` maps atom -> iterable of
    neighbours (a set or a sorted index array).
    """
    best = 0

    def dfs(node: int, visited: frozenset) -> int:
        longest = 0
        for nxt in adjacency[node]:
            if nxt in members_set and nxt not in visited:
                longest = max(longest, 1 + dfs(nxt, visited | {nxt}))
        return longest

    for start in members_set:
        best = max(best, dfs(start, frozenset([start])))
    return best


def pair_signatures(
    pairs: np.ndarray, natoms: int
) -> Dict[Tuple[int, int], Tuple[int, int, int]]:
    """CNA signature (ncn, nb, lcb) for every bonded pair.

    Common neighbours are intersections of the (sorted) CSR adjacency rows
    shared with the other stages; only the tiny induced-subgraph walks stay
    in Python.
    """
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    with _perf.timer("cna.pair_signatures"):
        indptr, indices = KERNEL_CACHE.csr(pairs, natoms)
        rows = [indices[indptr[i] : indptr[i + 1]] for i in range(natoms)]
        signatures: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
        for i, j in pairs:
            i, j = int(i), int(j)
            common = np.intersect1d(rows[i], rows[j], assume_unique=True)
            ncn = len(common)
            if ncn == 0:
                signatures[(i, j)] = (0, 0, 0)
                continue
            nb = 0
            for a in common:
                nb += np.intersect1d(rows[a], common, assume_unique=True).size
            nb //= 2
            members_set = set(int(m) for m in common)
            adjacency = {m: rows[m] for m in members_set}
            lcb = _longest_chain(members_set, adjacency)
            signatures[(i, j)] = (ncn, nb, lcb)
        return signatures


def _reference_pair_signatures(
    pairs: np.ndarray, natoms: int
) -> Dict[Tuple[int, int], Tuple[int, int, int]]:
    """Seed set-based implementation (kept for the equivalence tests)."""
    neighbors = _reference_adjacency_list(pairs, natoms)
    neighbor_sets = [set(int(x) for x in lst) for lst in neighbors]
    adjacency = {i: neighbor_sets[i] for i in range(natoms)}
    signatures: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
    for i, j in pairs:
        i, j = int(i), int(j)
        common = neighbor_sets[i] & neighbor_sets[j]
        ncn = len(common)
        if ncn == 0:
            signatures[(i, j)] = (0, 0, 0)
            continue
        nb = 0
        for a in common:
            nb += len(adjacency[a] & common)
        nb //= 2
        lcb = _longest_chain(common, adjacency)
        signatures[(i, j)] = (ncn, nb, lcb)
    return signatures


def _labels_from_signatures(
    signatures: Dict[Tuple[int, int], Tuple[int, int, int]], natoms: int
) -> np.ndarray:
    per_atom: Dict[int, list] = {i: [] for i in range(natoms)}
    for (i, j), sig in signatures.items():
        per_atom[i].append(sig)
        per_atom[j].append(sig)
    labels = np.full(natoms, CNA_OTHER, dtype=np.int64)
    for atom, sigs in per_atom.items():
        key = tuple(sorted(sigs))
        labels[atom] = _ATOM_PATTERNS.get(key, CNA_OTHER)
    return labels


def common_neighbor_analysis(pairs: np.ndarray, natoms: int) -> np.ndarray:
    """Per-atom structural label (CNA_FCC / CNA_HCP / CNA_TRIANGULAR / CNA_OTHER)."""
    with _perf.timer("cna.labels"):
        return _labels_from_signatures(pair_signatures(pairs, natoms), natoms)


def _reference_common_neighbor_analysis(pairs: np.ndarray, natoms: int) -> np.ndarray:
    """Seed labeling path (kept for the equivalence tests)."""
    return _labels_from_signatures(_reference_pair_signatures(pairs, natoms), natoms)


def cna_dense(positions_adjacency: np.ndarray) -> np.ndarray:
    """Dense-matrix CNA core: common-neighbour counts via A @ A.

    ``positions_adjacency`` is the boolean adjacency matrix.  This is the
    O(n^3) formulation Table I refers to; it returns the matrix of
    common-neighbour counts for every pair.  Exposed for the complexity
    benchmark.
    """
    a = np.asarray(positions_adjacency)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    if not np.array_equal(a, a.T):
        raise ValueError("adjacency must be symmetric")
    af = a.astype(np.float64)
    return (af @ af).astype(np.int64)
