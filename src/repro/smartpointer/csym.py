"""CSym: central-symmetry parameter, detecting broken bonds.

The central-symmetry parameter (Kelchner, Plimpton & Hamilton 1998) measures
how far an atom's neighbourhood departs from inversion symmetry:

    CSP_i = sum_{k=1..N/2} | r_{i,k} + r_{i,k'} |^2

where the N nearest neighbours are matched into N/2 opposite pairs chosen to
minimize each term.  A perfect centro-symmetric crystal gives CSP = 0;
surfaces, defects, and *broken bonds* give large values.  SmartPointer's
CSym action uses this, together with a reference adjacency set from Bonds,
to decide whether a bond has broken — the event that triggers the pipeline's
dynamic branch.

The kernel is batch-vectorized: one snapshot-cached cell-list pass yields a
CSR adjacency, atoms are grouped by neighbour count, nearest-neighbour
selection is a row-wise sort per group, and the greedy opposite-pair
matching runs as <= N/2 rounds of whole-group array ops instead of a
per-atom Python loop with ``list.remove``.  The seed per-atom kernel is
kept as :func:`_reference_central_symmetry`; both consume neighbours in
ascending-index order so their greedy tie-breaking — and therefore their
output — matches exactly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.lammps.neighbor import CellList
from repro.perf.cache import KERNEL_CACHE
from repro.perf.registry import REGISTRY as _perf

#: Neighbourhoods larger than this are pre-filtered with ``argpartition``
#: before the row-wise sort; below it, sorting the whole row is cheaper.
_PARTITION_THRESHOLD = 32


def central_symmetry(
    positions: np.ndarray,
    num_neighbors: int = 6,
    cutoff: Optional[float] = None,
    pairs: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-atom central-symmetry parameter.

    ``num_neighbors`` should be the crystal's coordination number (6 for the
    2-D triangular lattice, 12 for fcc).  Neighbours are found within
    ``cutoff`` (defaults to 2.0, generous for LJ lattices); atoms with fewer
    than ``num_neighbors`` neighbours use all they have (surface atoms
    naturally score high).

    ``pairs`` may supply a precomputed pair list for this snapshot and
    cutoff (e.g. the Bonds stage's output) to skip the neighbour search;
    otherwise the snapshot-keyed kernel cache shares one cell-list pass
    with the other stages analysing the same positions.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if num_neighbors < 2 or num_neighbors % 2:
        raise ValueError("num_neighbors must be an even integer >= 2")
    if cutoff is None:
        cutoff = 2.0
    with _perf.timer("csym.central_symmetry"):
        csp = np.zeros(n)
        if n == 0:
            return csp
        if pairs is None:
            pairs = KERNEL_CACHE.pairs(positions, cutoff)
        indptr, indices = KERNEL_CACHE.csr(pairs, n)
        degree = np.diff(indptr)
        csp[degree == 0] = np.inf
        csp[degree == 1] = 4.0 * cutoff * cutoff
        for d in np.unique(degree):
            if d < 2:
                continue
            atoms = np.nonzero(degree == d)[0]
            take = min(num_neighbors, int(d))
            # Gather each atom's d neighbours as one (group, d) block.
            neigh = indices[indptr[atoms][:, None] + np.arange(d)[None, :]]
            vectors = positions[neigh] - positions[atoms][:, None, :]
            dist2 = np.einsum("gkd,gkd->gk", vectors, vectors)
            if d > max(_PARTITION_THRESHOLD, 2 * take):
                part = np.argpartition(dist2, take - 1, axis=1)[:, :take]
                part_dist2 = np.take_along_axis(dist2, part, axis=1)
                nearest = np.take_along_axis(
                    part, np.argsort(part_dist2, axis=1), axis=1
                )
            else:
                nearest = np.argsort(dist2, axis=1)[:, :take]
            vectors = np.take_along_axis(vectors, nearest[:, :, None], axis=1)
            csp[atoms] = _greedy_pair_sums(vectors)
        return csp


def _greedy_pair_sums(vectors: np.ndarray) -> np.ndarray:
    """Batched greedy opposite-pair matching.

    ``vectors`` is ``(group, k, dim)``, each row sorted nearest-first.  Every
    round takes each row's first unmatched vector ``a``, pairs it with the
    unmatched ``b`` minimizing ``|v_a + v_b|^2``, and accumulates that norm —
    the same greedy the seed kernel ran per atom, executed as k/2 rounds of
    whole-group array operations.
    """
    group, k, _ = vectors.shape
    alive = np.ones((group, k), dtype=bool)
    totals = np.zeros(group)
    rows = np.arange(group)
    cols = np.arange(k)
    for _ in range(k // 2):
        first = np.argmax(alive, axis=1)
        sums = vectors[rows, first][:, None, :] + vectors
        norms = np.einsum("gkd,gkd->gk", sums, sums)
        candidate = alive & (cols[None, :] != first[:, None])
        norms = np.where(candidate, norms, np.inf)
        best = np.argmin(norms, axis=1)
        totals += norms[rows, best]
        alive[rows, first] = False
        alive[rows, best] = False
    return totals


def _reference_central_symmetry(
    positions: np.ndarray,
    num_neighbors: int = 6,
    cutoff: Optional[float] = None,
) -> np.ndarray:
    """Seed per-atom kernel (kept for the equivalence tests and the
    before/after numbers in ``BENCH_kernels.json``).

    Identical to the seed apart from sorting each atom's neighbour
    candidates by index, which pins the greedy tie-breaking to the same
    order the batched kernel uses (the CSR rows are ascending).
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if num_neighbors < 2 or num_neighbors % 2:
        raise ValueError("num_neighbors must be an even integer >= 2")
    if cutoff is None:
        cutoff = 2.0
    csp = np.zeros(n)
    cells = CellList(positions, cutoff)
    for i in range(n):
        neigh = np.sort(cells.neighbors_of(i))
        if len(neigh) < 2:
            csp[i] = np.inf if len(neigh) == 0 else 4.0 * cutoff * cutoff
            continue
        vectors = positions[neigh] - positions[i]
        dist2 = np.einsum("ij,ij->i", vectors, vectors)
        take = min(num_neighbors, len(neigh))
        nearest = np.argsort(dist2)[:take]
        vectors = vectors[nearest]
        # Greedy opposite-pair matching: repeatedly take the pair (a, b)
        # minimizing |v_a + v_b|^2.  Exact for ideal lattices and standard
        # practice for the CSP.
        remaining = list(range(len(vectors)))
        total = 0.0
        while len(remaining) >= 2:
            a = remaining[0]
            sums = vectors[a] + vectors[remaining[1:]]
            norms = np.einsum("ij,ij->i", sums, sums)
            best = int(np.argmin(norms))
            total += float(norms[best])
            b = remaining[1 + best]
            remaining.remove(a)
            remaining.remove(b)
        csp[i] = total
    return csp


def detect_break(
    positions: np.ndarray,
    reference_pairs: np.ndarray,
    cutoff: float,
    stretch_factor: float = 1.25,
) -> Tuple[bool, np.ndarray]:
    """Decide whether any reference bond has broken.

    Uses the same criterion as the crack experiment's ground truth: a
    reference bond whose current length exceeds ``stretch_factor * cutoff``
    is broken.  Returns ``(any_broken, broken_pair_mask)``.
    """
    if len(reference_pairs) == 0:
        return False, np.zeros(0, dtype=bool)
    d = positions[reference_pairs[:, 0]] - positions[reference_pairs[:, 1]]
    lengths2 = np.einsum("ij,ij->i", d, d)
    threshold = (stretch_factor * cutoff) ** 2
    broken = lengths2 > threshold
    return bool(broken.any()), broken
