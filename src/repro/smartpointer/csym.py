"""CSym: central-symmetry parameter, detecting broken bonds.

The central-symmetry parameter (Kelchner, Plimpton & Hamilton 1998) measures
how far an atom's neighbourhood departs from inversion symmetry:

    CSP_i = sum_{k=1..N/2} | r_{i,k} + r_{i,k'} |^2

where the N nearest neighbours are matched into N/2 opposite pairs chosen to
minimize each term.  A perfect centro-symmetric crystal gives CSP = 0;
surfaces, defects, and *broken bonds* give large values.  SmartPointer's
CSym action uses this, together with a reference adjacency set from Bonds,
to decide whether a bond has broken — the event that triggers the pipeline's
dynamic branch.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.lammps.neighbor import CellList


def central_symmetry(
    positions: np.ndarray,
    num_neighbors: int = 6,
    cutoff: Optional[float] = None,
) -> np.ndarray:
    """Per-atom central-symmetry parameter.

    ``num_neighbors`` should be the crystal's coordination number (6 for the
    2-D triangular lattice, 12 for fcc).  Neighbours are found within
    ``cutoff`` (defaults to 2.0, generous for LJ lattices); atoms with fewer
    than ``num_neighbors`` neighbours use all they have (surface atoms
    naturally score high).
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if num_neighbors < 2 or num_neighbors % 2:
        raise ValueError("num_neighbors must be an even integer >= 2")
    if cutoff is None:
        cutoff = 2.0
    csp = np.zeros(n)
    cells = CellList(positions, cutoff)
    for i in range(n):
        neigh = cells.neighbors_of(i)
        if len(neigh) < 2:
            csp[i] = np.inf if len(neigh) == 0 else 4.0 * cutoff * cutoff
            continue
        vectors = positions[neigh] - positions[i]
        dist2 = np.einsum("ij,ij->i", vectors, vectors)
        take = min(num_neighbors, len(neigh))
        nearest = np.argsort(dist2)[:take]
        vectors = vectors[nearest]
        # Greedy opposite-pair matching: repeatedly take the pair (a, b)
        # minimizing |v_a + v_b|^2.  Exact for ideal lattices and standard
        # practice for the CSP.
        remaining = list(range(len(vectors)))
        total = 0.0
        while len(remaining) >= 2:
            a = remaining[0]
            sums = vectors[a] + vectors[remaining[1:]]
            norms = np.einsum("ij,ij->i", sums, sums)
            best = int(np.argmin(norms))
            total += float(norms[best])
            b = remaining[1 + best]
            remaining.remove(a)
            remaining.remove(b)
        csp[i] = total
    return csp


def detect_break(
    positions: np.ndarray,
    reference_pairs: np.ndarray,
    cutoff: float,
    stretch_factor: float = 1.25,
) -> Tuple[bool, np.ndarray]:
    """Decide whether any reference bond has broken.

    Uses the same criterion as the crack experiment's ground truth: a
    reference bond whose current length exceeds ``stretch_factor * cutoff``
    is broken.  Returns ``(any_broken, broken_pair_mask)``.
    """
    if len(reference_pairs) == 0:
        return False, np.zeros(0, dtype=bool)
    d = positions[reference_pairs[:, 0]] - positions[reference_pairs[:, 1]]
    lengths2 = np.einsum("ij,ij->i", d, d)
    threshold = (stretch_factor * cutoff) ** 2
    broken = lengths2 > threshold
    return bool(broken.any()), broken
