"""Shared data-plane records.

A :class:`DataChunk` is the unit of data movement through the I/O pipeline:
one timestep's output from one producer (the whole simulation output for that
step, or one component's transformed result).  Chunks carry provenance — the
ordered list of analytics actions already applied — which the offline path
uses to label data written to disk (Section III-D: "guarantee that the stored
data will be labeled with its data processing provenance").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

_CHUNK_IDS = itertools.count()


@dataclass
class DataChunk:
    """One timestep's worth of data flowing through the pipeline.

    Attributes
    ----------
    timestep:
        Simulation output step index this chunk derives from.
    nbytes:
        Wire/storage size of the chunk.
    natoms:
        Number of atoms represented (drives analysis cost models).
    payload:
        Optional real data (NumPy arrays) when running the physical kernels;
        None in pure cost-model simulations.
    provenance:
        Names of analytics actions already applied, in order.
    created_at:
        Simulation time at which the *original* timestep was emitted by the
        application.  Preserved across transformations so end-to-end latency
        (Figure 10) is measured from simulation output to pipeline exit.
    """

    timestep: int
    nbytes: float
    natoms: int = 0
    payload: Any = None
    provenance: Tuple[str, ...] = ()
    created_at: float = 0.0
    #: Time this chunk was handed to its current pipeline stage (set by the
    #: producing writer); container latency = exit time - entered_stage_at.
    entered_stage_at: float = 0.0
    #: Optional content hash attached for soft-error detection (the
    #: container control feature "add hashes of the data to the output").
    integrity: Optional[str] = None
    #: ``(writer_name, chunk_id)`` pairs this chunk was pulled from, set by
    #: the DataTap reader; consumers ack these once the chunk is fully
    #: processed so retaining writers can release custody.  Deliberately not
    #: copied by :meth:`derive` — custody does not follow derived outputs.
    sources: list = field(default_factory=list)
    chunk_id: int = field(default_factory=lambda: next(_CHUNK_IDS))

    def derive(
        self,
        producer: str,
        nbytes: Optional[float] = None,
        natoms: Optional[int] = None,
        payload: Any = None,
    ) -> "DataChunk":
        """A new chunk produced from this one by analytics action ``producer``.

        Timestep and ``created_at`` are preserved; provenance is extended.
        """
        return DataChunk(
            timestep=self.timestep,
            nbytes=self.nbytes if nbytes is None else float(nbytes),
            natoms=self.natoms if natoms is None else int(natoms),
            payload=payload,
            provenance=self.provenance + (producer,),
            created_at=self.created_at,
        )

    def __repr__(self) -> str:
        prov = "+".join(self.provenance) or "raw"
        return (
            f"<Chunk ts={self.timestep} {self.nbytes / 2**20:.1f}MiB "
            f"atoms={self.natoms} prov={prov}>"
        )
