"""Counted resources with FIFO and priority queueing.

A :class:`Resource` models a pool of identical capacity units (e.g. the cores
of a staging node, or the injection channel of a NIC).  Processes ``yield
resource.request()`` to acquire a unit and call ``release`` (or use the
request as a context manager) to give it back.

:class:`PriorityResource` orders waiting requests by a numeric priority
(lower = more important) and optionally preempts lower-priority holders,
which the container runtime uses to favour critical analytics over
best-effort visualization.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional

from repro.simkernel.errors import Interrupt
from repro.simkernel.events import Event


class Preempted:
    """Cause object delivered with the :class:`Interrupt` on preemption."""

    def __init__(self, by: Any, usage_since: float):
        self.by = by
        self.usage_since = usage_since

    def __repr__(self) -> str:
        return f"<Preempted by={self.by!r} since={self.usage_since}>"


class Request(Event):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource", "proc", "usage_since")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.proc = resource.env.active_process
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the granted unit, or withdraw a still-queued request."""
        self.resource.release(self)


class PriorityRequest(Request):
    """A request carrying a priority and preemption flag."""

    __slots__ = ("priority", "preempt", "key")

    def __init__(self, resource: "PriorityResource", priority: int = 0, preempt: bool = False):
        self.priority = priority
        self.preempt = preempt
        # Tie-break by submission time then insertion order for determinism.
        self.key = (priority, resource.env.now, next(resource._ticket))
        super().__init__(resource)


class Resource:
    """A counted FIFO resource."""

    def __init__(self, env, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.queue: List[Request] = []
        self.users: List[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of units currently in use."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._trigger_queue()
        elif request in self.queue and not request.triggered:
            self.queue.remove(request)

    # -- internals -------------------------------------------------------------

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self.queue.append(request)

    def _grant(self, request: Request) -> None:
        request.usage_since = self.env.now
        self.users.append(request)
        request.succeed(request)

    def _trigger_queue(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            self._grant(self.queue.pop(0))


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by priority.

    With ``preemptive=True``, a request with ``preempt=True`` and a strictly
    better (lower) priority than the worst current user interrupts that user
    with a :class:`Preempted` cause and takes its unit.
    """

    def __init__(self, env, capacity: int = 1, preemptive: bool = False):
        super().__init__(env, capacity)
        self.preemptive = preemptive
        self._ticket = iter(range(1 << 62))
        self._heap: List[tuple] = []

    def request(self, priority: int = 0, preempt: bool = False) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority, preempt)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if len(self.users) < self._capacity:
            self._grant(request)
            return
        if self.preemptive and request.preempt:
            victim = max(
                self.users,
                key=lambda u: getattr(u, "key", (0, 0, 0)),
            )
            victim_prio = getattr(victim, "priority", 0)
            if request.priority < victim_prio:
                self.users.remove(victim)
                if victim.proc is not None and victim.proc.is_alive:
                    victim.proc.interrupt(Preempted(request.proc, victim.usage_since))
                self._grant(request)
                return
        heapq.heappush(self._heap, (request.key, request))
        self.queue.append(request)

    def _trigger_queue(self) -> None:
        while self._heap and len(self.users) < self._capacity:
            _, request = heapq.heappop(self._heap)
            if request in self.queue and not request.triggered:
                self.queue.remove(request)
                self._grant(request)

    def release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._trigger_queue()
        elif request in self.queue and not request.triggered:
            self.queue.remove(request)
            # Lazy deletion from the heap: _trigger_queue skips withdrawn
            # entries because they are no longer in ``self.queue``.
