"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence.  It moves through three states:

* *untriggered* — created, nobody has scheduled it;
* *triggered* — scheduled on the environment's heap with a value or error;
* *processed* — the environment has popped it and run its callbacks.

Processes wait on events by ``yield``-ing them; the process machinery adds a
resume callback.  Events may carry a value (``event.value``) or an exception
(``event.failed``), mirroring the SimPy contract.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.simkernel.errors import SimulationError

# Scheduling priorities: URGENT events (process resumption bookkeeping) run
# before NORMAL events that share the same timestamp.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot event that processes can wait for.

    Parameters
    ----------
    env:
        The :class:`~repro.simkernel.core.Environment` the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_cancelled")

    #: Sentinel for "not yet triggered".
    PENDING = object()

    def __init__(self, env):
        self.env = env
        #: Callables invoked (in order) when the event is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event.PENDING
        self._ok: bool = True
        self._defused: bool = False
        #: Tombstone flag — see :meth:`Environment.cancel`.  A cancelled
        #: event is still on the heap but is skipped at pop; subscribing to
        #: it (a process yield, a condition) revives it.
        self._cancelled: bool = False

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value or error."""
        return self._value is not Event.PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (callbacks list is discarded)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def failed(self) -> bool:
        return self.triggered and not self._ok

    @property
    def value(self) -> Any:
        if self._value is Event.PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run.

        The environment raises the exception of any *processed* failed event
        that no process caught, to surface silent failures.  Calling
        :meth:`defuse` suppresses that.
        """
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    @property
    def cancelled(self) -> bool:
        """True while the event sits tombstoned on the heap."""
        return self._cancelled

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to succeed with ``value`` at the current time."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fail with ``exception`` at the current time."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Usable directly as a callback: ``other.callbacks.append(mine.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    # -- composition ---------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env, delay: float, value: Any = None):
        # Negative delays are rejected by Environment.schedule — the single
        # validation point (this used to be checked here as well).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._cancelled = False
        self.delay = delay
        env.schedule(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Initialize(Event):
    """Internal event that starts a process at creation time."""

    __slots__ = ()

    def __init__(self, env, process):
        self.env = env
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self._defused = False
        self._cancelled = False
        env.schedule(self, URGENT)


class Condition(Event):
    """Waits for a combination of events (``&`` / ``|`` or AllOf / AnyOf).

    The condition's value is a dict mapping each *triggered* constituent event
    to its value, in trigger order.
    """

    __slots__ = ("_evaluate", "_events", "_count", "_cb")

    def __init__(self, env, evaluate: Callable[[List[Event], int], bool], events: Iterable[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        # One bound method for all subscriptions: cheaper to append, and
        # list.remove() in _prune_waiters hits the identity fast path.
        cb = self._cb = self._check

        for event in self._events:
            if event.env is not env:
                raise SimulationError("events of a condition must share an environment")

        # An empty condition is vacuously satisfied (all of nothing / any of
        # nothing both fire immediately, matching the SimPy contract).
        if not self._events:
            self.succeed(None)
            return

        # Immediately check already-processed events, then subscribe.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                if event._cancelled:  # waiting on a tombstone revives it
                    event._cancelled = False
                    env._tombstones -= 1
                event.callbacks.append(cb)

        # If an already-processed constituent fired the condition mid-loop,
        # events subscribed after it are already losers — drop them now.
        if self._value is not Event.PENDING:
            self._prune_waiters()

    def _ordered_values(self) -> dict:
        values = {}
        for event in self._events:
            if isinstance(event, Condition):
                values.update(event._ordered_values())
            elif event.callbacks is None and event._ok:
                # Only *processed* events count: a Timeout carries its value
                # from creation, so `triggered` alone would leak unfired
                # deadlines into the result set.
                values[event] = event._value
        return values

    def _check(self, event: Event) -> None:
        if self.triggered:
            if event.failed:
                event.defuse()
            return
        self._count += 1
        if event.failed:
            event.defuse()
            self.fail(event._value)
            self._prune_waiters()
        elif self._evaluate(self._events, self._count):
            self.succeed(None)
            self._prune_waiters()

    def _prune_waiters(self) -> None:
        """Unsubscribe from constituents that can no longer matter.

        Once the condition has fired, a *triggered, successful* constituent
        still on the heap is a pure no-op when popped (the old `_check`
        early-return).  Drop our callback from it, and if nobody else waits
        on it either, tombstone it so the engine can skip or compact it —
        this is how `any_of([reply, timeout])` loser timers vanish from the
        heap.  Untriggered or failed constituents keep the subscription:
        they may still fail later and need defusing.
        """
        cb = self._cb
        cancel = self.env.cancel
        for event in self._events:
            callbacks = event.callbacks
            if callbacks and event._value is not Event.PENDING and event._ok:
                try:
                    callbacks.remove(cb)
                except ValueError:
                    pass
                if not callbacks:
                    cancel(event)

    def succeed(self, value: Any = None) -> "Event":  # noqa: D102 - see Event
        return super().succeed(self._ordered_values())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires when all of ``events`` have fired."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires when any of ``events`` has fired."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
