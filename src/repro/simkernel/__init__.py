"""Discrete-event simulation kernel.

A small, deterministic process-based discrete-event engine in the style of
SimPy, built from scratch for this reproduction.  Every other subsystem in
:mod:`repro` (cluster, transport, containers, managers) runs as processes on
one :class:`Environment`, so the entire evaluation of the paper is a single
deterministic event-driven program.

Core concepts
-------------
Environment
    Owns the event heap and the simulation clock.  ``env.run(until=...)``
    executes events in timestamp order.
Event
    A one-shot occurrence that processes can wait on.  Succeeds with a value
    or fails with an exception.
Process
    Drives a Python generator; each ``yield``ed event suspends the process
    until the event fires.  Processes can be interrupted.
Resource / Store
    Shared-resource primitives: counted resources with FIFO/priority queues
    and bounded item stores (used to model staging-area queues that can
    overflow, which drives Figures 9 and 10 of the paper).
"""

from repro.simkernel.errors import FaultError, Interrupt, SimulationError, StopProcess
from repro.simkernel.events import AllOf, AnyOf, Condition, Event, Timeout
from repro.simkernel.core import (
    Environment,
    InsertionOrder,
    SeededShuffle,
    TieBreaker,
    shuffle,
)
from repro.simkernel.process import Process
from repro.simkernel.resources import PriorityResource, Preempted, Resource
from repro.simkernel.store import FilterStore, QueueOverflow, Store, StoreReserve

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "FaultError",
    "FilterStore",
    "InsertionOrder",
    "Interrupt",
    "Preempted",
    "PriorityResource",
    "Process",
    "QueueOverflow",
    "Resource",
    "SeededShuffle",
    "SimulationError",
    "StopProcess",
    "Store",
    "StoreReserve",
    "TieBreaker",
    "Timeout",
    "shuffle",
]
