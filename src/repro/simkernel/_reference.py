"""The pre-optimization event loop, frozen for differential testing.

:class:`ReferenceEnvironment` is a line-for-line copy of the
:class:`~repro.simkernel.core.Environment` as it stood before the engine
fast path (inlined run loop, monomorphic tie-break, tombstoning) landed.
It shares the event/process/store primitives with the optimized engine, so
running the same seeded workload on both and asserting identical event
logs, clocks and ``swallowed_faults`` pins the optimization to the exact
historical semantics — including the contract that a cancelled event is
*observationally* a dead no-op: :meth:`ReferenceEnvironment.cancel` does
nothing, and the event fires into an empty callback list exactly as every
abandoned timer did before cancellation existed.

``benchmarks/bench_engine.py`` uses this class as the measured "pre-PR
engine" side of its speedup comparison, so both numbers in
``BENCH_engine.json`` come from the same interpreter on the same machine.

Do not modify this file when optimizing the engine — it is the baseline.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from repro.simkernel.errors import FaultError, SimulationError
from repro.simkernel.events import AllOf, AnyOf, Event, NORMAL, Timeout


class ReferenceEnvironment:
    """The seed engine: property round-trips, per-step try/except, virtual
    tie-break on every schedule, no cancellation.  See module docstring."""

    def __init__(self, initial_time: float = 0.0, tie_breaker=None):
        from repro.simkernel.core import InsertionOrder

        self._now = float(initial_time)
        self._queue: list = []
        self._eid = 0
        self.tie_breaker = tie_breaker if tie_breaker is not None else InsertionOrder()
        self.active_process = None
        self.swallowed_faults = 0

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name=None):
        from repro.simkernel.process import Process

        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid += 1
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, self.tie_breaker.key(self._eid), event),
        )

    def cancel(self, event: Event) -> bool:
        """The historical behaviour: no cancellation — the event stays on
        the heap and is processed as a dead no-op.  Always False."""
        return False

    def peek(self) -> float:
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events") from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if event.failed and not event.defused:
            if isinstance(event._value, FaultError):
                self.swallowed_faults += 1
                return
            raise event._value

    def run(self, until: Any = None) -> Any:
        if until is None:
            stop: Optional[Event] = None
            horizon = float("inf")
        elif isinstance(until, Event):
            stop = until
            horizon = float("inf")
            if stop.callbacks is None:  # already processed
                if stop.failed:
                    stop.defuse()
                    raise stop._value
                return stop._value
            done = []
            stop.callbacks.append(done.append)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon} is in the past (now={self._now})")
            stop = None

        while self._queue:
            if self.peek() > horizon:
                self._now = horizon
                return None
            self.step()
            if stop is not None and stop.processed:
                if stop.failed:
                    stop.defuse()
                    raise stop._value
                return stop._value

        if stop is not None:
            raise SimulationError("schedule is empty but the `until` event never fired")
        if horizon != float("inf"):
            self._now = horizon
        return None
