"""Exceptions used by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class FaultError(SimulationError):
    """An *injected* failure: a dropped message, a dead node, a timed-out
    request.

    Fault errors model events that are routine in a faulty cluster rather
    than bugs in the simulation.  The environment treats an unobserved
    process failing with a :class:`FaultError` as a lost fire-and-forget
    action (counted, not raised), whereas any other unobserved failure still
    crashes the run — see :meth:`Environment.step`.
    """


class StopProcess(Exception):
    """Raised inside a process generator to terminate it with a value.

    ``return value`` inside the generator is the idiomatic way to finish; this
    exception exists for callers that need to stop a process from a callback.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries whatever object the interrupter supplied
    (e.g. a control message asking a DataTap writer to pause).
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        return self.args[0]
