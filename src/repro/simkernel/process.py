"""Processes: generators driven by the event loop.

A process wraps a Python generator.  Each value the generator ``yield``s must
be an :class:`~repro.simkernel.events.Event`; the process suspends until the
event fires, then resumes with the event's value (or has the event's exception
thrown into it).  ``return value`` ends the process and becomes the value of
the process-event itself, so processes compose: ``result = yield env.process(
sub())``.

Hot-path notes: every suspend/resume cycle used to allocate a fresh bound
method for the subscription; ``_resume_cb`` is bound once per process
instead.  Per-message callers (the messenger, datatap movers) pass names as
lazy ``(format, *args)`` tuples that are only rendered when somebody reads
``process.name`` (repr, traces, error messages).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.simkernel.errors import Interrupt, SimulationError
from repro.simkernel.events import Event, URGENT


class Process(Event):
    """A running process.  Also an event that fires when the process ends."""

    __slots__ = ("_generator", "_target", "_name", "_resume_cb")

    def __init__(self, env, generator: Generator, name=None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: None (derive from the generator), a str, or a lazy
        #: ``(format_string, *args)`` tuple rendered on first read.
        self._name = name
        #: The event this process is currently waiting on (None when running
        #: or finished).
        self._target: Optional[Event] = None
        #: The one bound method used for every event subscription.
        self._resume_cb = self._resume

        from repro.simkernel.events import Initialize

        Initialize(env, self)

    @property
    def name(self) -> str:
        """The process name, rendered lazily for tuple-form names."""
        n = self._name
        if n is None:
            return getattr(self._generator, "__name__", "process")
        if type(n) is tuple:
            n = self._name = n[0].format(*n[1:])
        return n

    @name.setter
    def name(self, value) -> None:
        self._name = value

    @property
    def is_alive(self) -> bool:
        """True while the process has not terminated."""
        return self._value is Event.PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The interrupt is delivered asynchronously (via an urgent event) so
        that interrupting from within another process is safe.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")

        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume_cb)
        self.env.schedule(event, URGENT)

    # -- engine ---------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env.active_process = self

        # If we were interrupted, unsubscribe from the event we were waiting
        # on; it may still fire later and must not resume us twice.  If that
        # leaves a triggered, successful event with no subscribers at all it
        # is a dead no-op on the heap — tombstone it.
        target = self._target
        if event is not target and target is not None:
            callbacks = target.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
                if not callbacks and target._value is not Event.PENDING and target._ok:
                    env.cancel(target)

        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # The event failed: throw its exception into the process.
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                self._target = None
                env.active_process = None
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                return
            except BaseException as error:
                self._target = None
                env.active_process = None
                self._ok = False
                self._value = error
                env.schedule(self)
                return

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                generator.throw(error)
                continue

            callbacks = next_event.callbacks
            if callbacks is not None:
                # Event pending: subscribe and suspend.  Yielding a
                # tombstoned event revives it.
                if next_event._cancelled:
                    next_event._cancelled = False
                    env._tombstones -= 1
                callbacks.append(self._resume_cb)
                self._target = next_event
                env.active_process = None
                return

            # Event already processed: loop and feed its value immediately.
            event = next_event

    def __repr__(self) -> str:
        state = "finished" if not self.is_alive else "alive"
        return f"<Process {self.name!r} {state}>"
