"""Processes: generators driven by the event loop.

A process wraps a Python generator.  Each value the generator ``yield``s must
be an :class:`~repro.simkernel.events.Event`; the process suspends until the
event fires, then resumes with the event's value (or has the event's exception
thrown into it).  ``return value`` ends the process and becomes the value of
the process-event itself, so processes compose: ``result = yield env.process(
sub())``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.simkernel.errors import Interrupt, SimulationError
from repro.simkernel.events import Event, URGENT


class Process(Event):
    """A running process.  Also an event that fires when the process ends."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env, generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when running
        #: or finished).
        self._target: Optional[Event] = None

        from repro.simkernel.events import Initialize

        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the process has not terminated."""
        return self._value is Event.PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The interrupt is delivered asynchronously (via an urgent event) so
        that interrupting from within another process is safe.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")

        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env.schedule(event, URGENT)

    # -- engine ---------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env.active_process = self

        # If we were interrupted, unsubscribe from the event we were waiting
        # on; it may still fire later and must not resume us twice.
        if event is not self._target and self._target is not None:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed: throw its exception into the process.
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._target = None
                self.env.active_process = None
                self._ok = True
                self._value = stop.value
                self.env.schedule(self)
                return
            except BaseException as error:
                self._target = None
                self.env.active_process = None
                self._ok = False
                self._value = error
                self.env.schedule(self)
                return

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self._generator.throw(error)
                continue

            if next_event.callbacks is not None:
                # Event pending: subscribe and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                self.env.active_process = None
                return

            # Event already processed: loop and feed its value immediately.
            event = next_event

    def __repr__(self) -> str:
        state = "finished" if not self.is_alive else "alive"
        return f"<Process {self.name!r} {state}>"
