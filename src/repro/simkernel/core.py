"""The simulation environment: clock + event heap.

The :class:`Environment` is deliberately minimal — a binary heap of
``(time, priority, sequence, event)`` tuples.  The ``sequence`` counter makes
scheduling fully deterministic: two events scheduled for the same time and
priority always execute in scheduling order, so every experiment in this
repository is exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from repro.simkernel.errors import FaultError, SimulationError
from repro.simkernel.events import AllOf, AnyOf, Event, NORMAL, Timeout
from repro.simkernel.process import Process


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A deterministic discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds by convention
        throughout :mod:`repro`).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = 0
        self.active_process: Optional[Process] = None
        #: fire-and-forget actions lost to injected faults (see :meth:`step`)
        self.swallowed_faults = 0

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Place ``event`` on the heap ``delay`` time units in the future."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event, advancing the clock to its timestamp."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if event.failed and not event.defused:
            if isinstance(event._value, FaultError):
                # A fire-and-forget action lost to an injected fault (e.g. a
                # completion notification racing a node crash) is routine in
                # a faulty cluster: count it, don't crash the simulation.
                self.swallowed_faults += 1
                return
            # A failed event nobody waited on: surface the error instead of
            # silently losing it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an :class:`Event`, or exhaustion).

        * ``until is None`` — run until no events remain.
        * number — run until the clock reaches that time.
        * :class:`Event` — run until that event is processed; returns its
          value (or raises its exception).
        """
        if until is None:
            stop: Optional[Event] = None
            horizon = float("inf")
        elif isinstance(until, Event):
            stop = until
            horizon = float("inf")
            if stop.callbacks is None:  # already processed
                if stop.failed:
                    raise stop._value
                return stop._value
            done = []
            stop.callbacks.append(done.append)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon} is in the past (now={self._now})")
            stop = None

        while self._queue:
            if self.peek() > horizon:
                self._now = horizon
                return None
            self.step()
            if stop is not None and stop.processed:
                if stop.failed:
                    stop.defuse()
                    raise stop._value
                return stop._value

        if stop is not None:
            raise SimulationError("schedule is empty but the `until` event never fired")
        if horizon != float("inf"):
            self._now = horizon
        return None
