"""The simulation environment: clock + event heap.

The :class:`Environment` is deliberately minimal — a binary heap of
``(time, priority, tie_key, event)`` tuples.  With the default
:class:`InsertionOrder` tie-breaker the tie key is the scheduling sequence
number, so two events scheduled for the same time and priority always
execute in scheduling order and every experiment in this repository is
exactly reproducible.  A :class:`SeededShuffle` tie-breaker instead
permutes same-``(time, priority)`` event groups deterministically from a
seed — the schedule-exploration knob the :mod:`repro.dst` harness sweeps:
one seed is one reproducible interleaving.

Engine fast path
----------------
Everything in :mod:`repro` executes through this loop, so it is written
for raw events/sec (see ``benchmarks/bench_engine.py``):

* :meth:`Environment.run` inlines the pop/dispatch cycle — localized
  ``heappop``, direct tuple indexing, direct ``__slots__`` reads instead
  of the ``peek()``/``failed``/``processed`` property round-trips, and no
  per-step ``try/except`` — with a dedicated tight loop for the common
  run-to-exhaustion case;
* :meth:`schedule` is monomorphic for the default :class:`InsertionOrder`
  tie-breaker: the tie key is the sequence number itself, no virtual
  :meth:`TieBreaker.key` call (a non-default tie-breaker still goes
  through the virtual call, so DST schedule exploration is unchanged);
* abandoned events — request-timeout losers, the stale targets of
  interrupted processes — are *tombstoned* by :meth:`cancel` and skipped
  at pop instead of processed as dead no-ops; when tombstones dominate a
  large heap, :meth:`_compact` drops them wholesale without popping.

The pre-optimization loop is kept verbatim in
:mod:`repro.simkernel._reference`; a differential property test pins this
implementation to it event-for-event.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Generator, Iterable, Optional

from repro.simkernel.errors import FaultError, SimulationError
from repro.simkernel.events import AllOf, AnyOf, Event, NORMAL, Timeout
from repro.simkernel.process import Process

_INF = float("inf")
_PENDING = Event.PENDING

#: Compaction trigger: at least this many tombstones *and* tombstones
#: outnumbering live entries.  Below the floor, skipping at pop is cheaper
#: than an O(n) rebuild.
_COMPACT_MIN_TOMBSTONES = 512


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class TieBreaker:
    """Orders events that share a ``(time, priority)`` heap slot.

    :meth:`key` maps the environment's scheduling sequence number to the
    third element of the heap tuple.  Keys must be unique per event (so
    the comparison never falls through to the events themselves) and of a
    single type per environment (so heap comparisons stay well-defined).
    """

    def key(self, eid: int):
        raise NotImplementedError


class InsertionOrder(TieBreaker):
    """The default: same-slot events run in scheduling order (bit-for-bit
    the historical schedule — no behaviour change).

    :meth:`Environment.schedule` special-cases this class: the tie key is
    the sequence number directly, with no virtual call on the hot path.
    """

    def key(self, eid: int) -> int:
        return eid


_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """The splitmix64 finalizer: a platform-stable 64-bit mix."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class SeededShuffle(TieBreaker):
    """Deterministically permutes same-``(time, priority)`` event groups.

    Each event's tie key is ``(rank, eid)`` where ``rank`` is a stable
    64-bit hash of ``(seed, eid)`` — independent of ``PYTHONHASHSEED`` and
    platform — so equal-slot events are uniformly shuffled, the shuffle is
    identical for an identical seed, and ``eid`` still breaks rank
    collisions reproducibly.  Cross-slot ordering (time, then URGENT
    before NORMAL) is untouched: only legal reorderings are explored.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._base = _splitmix64(self.seed & _MASK64)

    def key(self, eid: int):
        return (_splitmix64(self._base ^ (eid & _MASK64)), eid)

    def __repr__(self) -> str:
        return f"<SeededShuffle seed={self.seed}>"


def shuffle(seed: int) -> SeededShuffle:
    """Convenience spelling: ``Environment(tie_breaker=shuffle(seed))``."""
    return SeededShuffle(seed)


class Environment:
    """A deterministic discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds by convention
        throughout :mod:`repro`).
    tie_breaker:
        Ordering of events that share a ``(time, priority)`` slot.  The
        default :class:`InsertionOrder` preserves scheduling order;
        :class:`SeededShuffle` explores a seeded permutation.
    """

    def __init__(self, initial_time: float = 0.0,
                 tie_breaker: Optional[TieBreaker] = None):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = 0
        self.tie_breaker = tie_breaker if tie_breaker is not None else InsertionOrder()
        self.active_process: Optional[Process] = None
        #: fire-and-forget actions lost to injected faults (see :meth:`step`)
        self.swallowed_faults = 0
        #: cancelled entries still sitting on the heap
        self._tombstones = 0
        #: max timestamp among compacted tombstones — at run-to-exhaustion
        #: the clock still advances past them, exactly as if each had been
        #: popped as a dead no-op (reference-engine behaviour)
        self._compacted_horizon = -_INF
        #: engine counters (see :meth:`publish_perf`)
        self.events_processed = 0
        self.tombstones_skipped = 0
        self.heap_peak = 0
        self.compactions = 0
        #: publish_perf() high-water marks (delta publishing)
        self._pub_processed = 0
        self._pub_skipped = 0
        self._pub_compactions = 0

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- tie-breaker -----------------------------------------------------------

    @property
    def tie_breaker(self) -> TieBreaker:
        return self._tie_breaker

    @tie_breaker.setter
    def tie_breaker(self, tb: TieBreaker) -> None:
        self._tie_breaker = tb
        # Monomorphic fast path: with the stock InsertionOrder the tie key
        # IS the sequence number — no virtual key() call per schedule.  A
        # subclass (or any other tie-breaker) keeps the virtual dispatch.
        self._fast_tiebreak = type(tb) is InsertionOrder

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name=None) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Place ``event`` on the heap ``delay`` time units in the future."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        eid = self._eid = self._eid + 1
        queue = self._queue
        heappush(
            queue,
            (
                self._now + delay,
                priority,
                eid if self._fast_tiebreak else self._tie_breaker.key(eid),
                event,
            ),
        )
        if len(queue) > self.heap_peak:
            self.heap_peak = len(queue)

    def cancel(self, event: Event) -> bool:
        """Tombstone a scheduled event nobody is waiting on.

        The event is skipped at pop (no callback dispatch, no dead no-op
        processing); if tombstones come to dominate a large heap they are
        compacted away in bulk.  Cancellation is *observationally*
        transparent: the clock still advances over a skipped tombstone
        exactly as it did when the event was processed as a no-op, so
        schedules are bit-for-bit identical with or without it.

        Only events that are (a) triggered but not yet processed, (b) free
        of subscribed callbacks, and (c) not carrying an unhandled failure
        are cancellable; anything else is refused (returns False).  A
        process that *yields* a cancelled event revives it — the tombstone
        turns back into a live event and fires normally.  Do not await an
        event after a compaction may have finalized it: it then reads as
        already processed and its value is delivered immediately.
        """
        callbacks = event.callbacks
        if callbacks is None or callbacks or event._cancelled:
            return False
        if event._value is _PENDING:
            return False
        if not event._ok and not event._defused:
            # An unobserved failure must still surface in step() — see the
            # unhandled-failure contract there.
            return False
        event._cancelled = True
        tombstones = self._tombstones = self._tombstones + 1
        if (
            tombstones >= _COMPACT_MIN_TOMBSTONES
            and tombstones * 2 >= len(self._queue)
        ):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop every tombstone from the heap in one O(n) rebuild.

        In-place (slice assignment) so loops holding a reference to the
        queue — including :meth:`run` itself — stay valid.  Compacted
        events are finalized (they read as processed) and their max
        timestamp is retained so a run to exhaustion still ends with the
        clock where the reference engine would have left it.
        """
        queue = self._queue
        horizon = self._compacted_horizon
        live = []
        append = live.append
        skipped = 0
        for entry in queue:
            event = entry[3]
            if event._cancelled:
                event._cancelled = False
                event.callbacks = None  # finalized: reads as processed
                skipped += 1
                if entry[0] > horizon:
                    horizon = entry[0]
            else:
                append(entry)
        heapify(live)
        queue[:] = live
        self._compacted_horizon = horizon
        self.tombstones_skipped += skipped
        self._tombstones = 0
        self.compactions += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else _INF

    def step(self) -> None:
        """Process the next event, advancing the clock to its timestamp.

        Tombstoned (cancelled) entries are skipped — the clock advances
        over them but no callbacks run.
        """
        queue = self._queue
        while True:
            if not queue:
                raise EmptySchedule("no scheduled events")
            entry = heappop(queue)
            event = entry[3]
            self._now = entry[0]
            callbacks = event.callbacks
            event.callbacks = None
            if event._cancelled:
                event._cancelled = False
                self._tombstones -= 1
                self.tombstones_skipped += 1
                continue
            break

        for callback in callbacks:
            callback(event)
        self.events_processed += 1

        if not event._ok and not event._defused:
            if isinstance(event._value, FaultError):
                # A fire-and-forget action lost to an injected fault (e.g. a
                # completion notification racing a node crash) is routine in
                # a faulty cluster: count it, don't crash the simulation.
                self.swallowed_faults += 1
                return
            # A failed event nobody waited on: surface the error instead of
            # silently losing it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an :class:`Event`, or exhaustion).

        * ``until is None`` — run until no events remain.
        * number — run until the clock reaches that time.
        * :class:`Event` — run until that event is processed; returns its
          value (or raises its exception).
        """
        if until is None:
            stop: Optional[Event] = None
            horizon = _INF
        elif isinstance(until, Event):
            stop = until
            horizon = _INF
            if stop.callbacks is None:  # already processed
                if stop._value is not _PENDING and not stop._ok:
                    stop._defused = True
                    raise stop._value
                return stop._value
            if stop._cancelled:  # waiting on it revives the tombstone
                stop._cancelled = False
                self._tombstones -= 1
            done = []
            stop.callbacks.append(done.append)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon} is in the past (now={self._now})")
            stop = None

        # The hot loop.  Everything the reference engine reaches through
        # properties and helper calls is inlined: heappop is local, tuple
        # elements are indexed directly, event state is read straight off
        # the __slots__.  Event/skip counts accumulate in locals and are
        # flushed on every exit path by the finally block.
        queue = self._queue
        pop = heappop
        processed = 0
        skipped = 0
        try:
            if stop is None and horizon is _INF:
                # Run to exhaustion: no horizon check, no stop check.
                while queue:
                    entry = pop(queue)
                    event = entry[3]
                    self._now = entry[0]
                    callbacks = event.callbacks
                    event.callbacks = None
                    if event._cancelled:
                        event._cancelled = False
                        self._tombstones -= 1
                        skipped += 1
                        continue
                    for callback in callbacks:
                        callback(event)
                    processed += 1
                    if not event._ok and not event._defused:
                        if isinstance(event._value, FaultError):
                            self.swallowed_faults += 1
                        else:
                            raise event._value
            else:
                while queue:
                    entry = queue[0]
                    if entry[0] > horizon:
                        self._now = horizon
                        return None
                    entry = pop(queue)
                    event = entry[3]
                    self._now = entry[0]
                    callbacks = event.callbacks
                    event.callbacks = None
                    if event._cancelled:
                        event._cancelled = False
                        self._tombstones -= 1
                        skipped += 1
                        continue
                    for callback in callbacks:
                        callback(event)
                    processed += 1
                    if not event._ok and not event._defused:
                        if isinstance(event._value, FaultError):
                            self.swallowed_faults += 1
                        else:
                            raise event._value
                    if stop is not None and stop.callbacks is None:
                        if not stop._ok:
                            stop._defused = True
                            raise stop._value
                        return stop._value
        finally:
            self.events_processed += processed
            self.tombstones_skipped += skipped

        # Heap exhausted.
        if stop is not None:
            raise SimulationError("schedule is empty but the `until` event never fired")
        if horizon is not _INF:
            self._now = horizon
        elif self._compacted_horizon > self._now:
            # Compacted tombstones beyond the last live event: the reference
            # engine would have popped them as dead no-ops and left the
            # clock at the latest one.
            self._now = self._compacted_horizon
        return None

    # -- observability ---------------------------------------------------------

    def publish_perf(self, registry=None) -> None:
        """Mirror the engine counters into a :mod:`repro.perf` registry.

        Counters are published as deltas since the previous call, so
        repeated publication (end of run, end of drain, end of bench) never
        double-counts; ``engine.heap_peak`` is folded in as a maximum.
        """
        if registry is None:
            from repro.perf.registry import REGISTRY as registry
        registry.count("engine.events_processed",
                       self.events_processed - self._pub_processed)
        registry.count("engine.tombstones_skipped",
                       self.tombstones_skipped - self._pub_skipped)
        registry.count("engine.compactions",
                       self.compactions - self._pub_compactions)
        registry.count_max("engine.heap_peak", self.heap_peak)
        self._pub_processed = self.events_processed
        self._pub_skipped = self.tombstones_skipped
        self._pub_compactions = self.compactions
