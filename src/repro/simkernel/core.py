"""The simulation environment: clock + event heap.

The :class:`Environment` is deliberately minimal — a binary heap of
``(time, priority, tie_key, event)`` tuples.  With the default
:class:`InsertionOrder` tie-breaker the tie key is the scheduling sequence
number, so two events scheduled for the same time and priority always
execute in scheduling order and every experiment in this repository is
exactly reproducible.  A :class:`SeededShuffle` tie-breaker instead
permutes same-``(time, priority)`` event groups deterministically from a
seed — the schedule-exploration knob the :mod:`repro.dst` harness sweeps:
one seed is one reproducible interleaving.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from repro.simkernel.errors import FaultError, SimulationError
from repro.simkernel.events import AllOf, AnyOf, Event, NORMAL, Timeout
from repro.simkernel.process import Process


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class TieBreaker:
    """Orders events that share a ``(time, priority)`` heap slot.

    :meth:`key` maps the environment's scheduling sequence number to the
    third element of the heap tuple.  Keys must be unique per event (so
    the comparison never falls through to the events themselves) and of a
    single type per environment (so heap comparisons stay well-defined).
    """

    def key(self, eid: int):
        raise NotImplementedError


class InsertionOrder(TieBreaker):
    """The default: same-slot events run in scheduling order (bit-for-bit
    the historical schedule — no behaviour change)."""

    def key(self, eid: int) -> int:
        return eid


_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """The splitmix64 finalizer: a platform-stable 64-bit mix."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class SeededShuffle(TieBreaker):
    """Deterministically permutes same-``(time, priority)`` event groups.

    Each event's tie key is ``(rank, eid)`` where ``rank`` is a stable
    64-bit hash of ``(seed, eid)`` — independent of ``PYTHONHASHSEED`` and
    platform — so equal-slot events are uniformly shuffled, the shuffle is
    identical for an identical seed, and ``eid`` still breaks rank
    collisions reproducibly.  Cross-slot ordering (time, then URGENT
    before NORMAL) is untouched: only legal reorderings are explored.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._base = _splitmix64(self.seed & _MASK64)

    def key(self, eid: int):
        return (_splitmix64(self._base ^ (eid & _MASK64)), eid)

    def __repr__(self) -> str:
        return f"<SeededShuffle seed={self.seed}>"


def shuffle(seed: int) -> SeededShuffle:
    """Convenience spelling: ``Environment(tie_breaker=shuffle(seed))``."""
    return SeededShuffle(seed)


class Environment:
    """A deterministic discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds by convention
        throughout :mod:`repro`).
    tie_breaker:
        Ordering of events that share a ``(time, priority)`` slot.  The
        default :class:`InsertionOrder` preserves scheduling order;
        :class:`SeededShuffle` explores a seeded permutation.
    """

    def __init__(self, initial_time: float = 0.0,
                 tie_breaker: Optional[TieBreaker] = None):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = 0
        self.tie_breaker = tie_breaker if tie_breaker is not None else InsertionOrder()
        self.active_process: Optional[Process] = None
        #: fire-and-forget actions lost to injected faults (see :meth:`step`)
        self.swallowed_faults = 0

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Place ``event`` on the heap ``delay`` time units in the future."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid += 1
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, self.tie_breaker.key(self._eid), event),
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event, advancing the clock to its timestamp."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if event.failed and not event.defused:
            if isinstance(event._value, FaultError):
                # A fire-and-forget action lost to an injected fault (e.g. a
                # completion notification racing a node crash) is routine in
                # a faulty cluster: count it, don't crash the simulation.
                self.swallowed_faults += 1
                return
            # A failed event nobody waited on: surface the error instead of
            # silently losing it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an :class:`Event`, or exhaustion).

        * ``until is None`` — run until no events remain.
        * number — run until the clock reaches that time.
        * :class:`Event` — run until that event is processed; returns its
          value (or raises its exception).
        """
        if until is None:
            stop: Optional[Event] = None
            horizon = float("inf")
        elif isinstance(until, Event):
            stop = until
            horizon = float("inf")
            if stop.callbacks is None:  # already processed
                if stop.failed:
                    raise stop._value
                return stop._value
            done = []
            stop.callbacks.append(done.append)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon} is in the past (now={self._now})")
            stop = None

        while self._queue:
            if self.peek() > horizon:
                self._now = horizon
                return None
            self.step()
            if stop is not None and stop.processed:
                if stop.failed:
                    stop.defuse()
                    raise stop._value
                return stop._value

        if stop is not None:
            raise SimulationError("schedule is empty but the `until` event never fired")
        if horizon != float("inf"):
            self._now = horizon
        return None
