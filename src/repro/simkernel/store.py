"""Bounded item stores (queues) for producer/consumer processes.

Staging-area queues are the load-bearing data structure of the paper's
evaluation: Figures 8–10 are about whether the queue in front of the
bottleneck container overflows before the run completes.  :class:`Store`
therefore tracks high-water marks and exposes an optional *overflow policy*:

* ``"block"`` (default) — a ``put`` on a full store waits (models blocking
  the upstream writer, which ultimately blocks the simulation);
* ``"raise"`` — a ``put`` on a full store fails with :class:`QueueOverflow`
  (models dropped timesteps / hard failure).
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.simkernel.errors import SimulationError
from repro.simkernel.events import Event


class QueueOverflow(SimulationError):
    """A bounded store received a put while full under the 'raise' policy."""

    def __init__(self, store: "Store", item: Any):
        super().__init__(f"store {store.name!r} overflowed (capacity={store.capacity})")
        self.store = store
        self.item = item


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._dispatch()


class StoreReserve(Event):
    """A claim on one unit of store capacity, fulfilled with an item later.

    Readers that must not move data before they have room (DataTap's
    pull-when-ready discipline) reserve a slot first, then call
    :meth:`Store.fulfill` with the actual item once it has been pulled.
    """

    __slots__ = ("store", "fulfilled", "cancelled")

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        self.store = store
        self.fulfilled = False
        self.cancelled = False
        store._put_queue.append(self)
        store._dispatch()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._dispatch()


class FilterStoreGet(StoreGet):
    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Callable[[Any], bool]):
        self.filter = filter
        super().__init__(store)


class Store:
    """A FIFO item store with optional bounded capacity.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Maximum items held; ``float('inf')`` for unbounded.
    name:
        Label used in monitoring and overflow errors.
    overflow:
        ``"block"`` or ``"raise"`` — behaviour of ``put`` on a full store.
    """

    def __init__(
        self,
        env,
        capacity: float = float("inf"),
        name: str = "store",
        overflow: str = "block",
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if overflow not in ("block", "raise"):
            raise ValueError(f"unknown overflow policy {overflow!r}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.overflow = overflow
        self.items: List[Any] = []
        self._reserved = 0
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []
        #: Highest number of items ever held (monitoring hook).
        self.high_water: int = 0
        #: Number of puts rejected by the 'raise' policy.
        self.overflow_count: int = 0

    # -- public API ------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        return len(self.items) + self._reserved >= self.capacity

    @property
    def reserved(self) -> int:
        return self._reserved

    def put(self, item: Any) -> StorePut:
        """Queue ``item``; the returned event fires once the item is stored."""
        return StorePut(self, item)

    def reserve(self) -> StoreReserve:
        """Claim a capacity slot; fires once the slot is granted."""
        return StoreReserve(self)

    def fulfill(self, reservation: StoreReserve, item: Any) -> None:
        """Deposit ``item`` into a previously granted reservation."""
        if not reservation.triggered or reservation.store is not self:
            raise SimulationError("fulfill() requires a granted reservation on this store")
        if reservation.fulfilled or reservation.cancelled:
            raise SimulationError("reservation already consumed")
        reservation.fulfilled = True
        self._reserved -= 1
        self.items.append(item)
        self.high_water = max(self.high_water, len(self.items) + self._reserved)
        self._dispatch()

    def cancel_reservation(self, reservation: StoreReserve) -> None:
        """Return a granted-but-unused slot to the store."""
        if reservation.fulfilled or reservation.cancelled:
            return
        reservation.cancelled = True
        if reservation.triggered:
            self._reserved -= 1
            self._dispatch()
        elif reservation in self._put_queue:
            self._put_queue.remove(reservation)

    def get(self) -> StoreGet:
        """Request one item; the returned event fires with the item."""
        return StoreGet(self)

    def cancel_get(self, event: StoreGet) -> None:
        """Withdraw a pending get (e.g. a receive abandoned by a timeout).

        No-op if the get already fired — the caller must then consume or
        re-store the item itself.
        """
        if not event.triggered and event in self._get_queue:
            self._get_queue.remove(event)

    def peek_items(self) -> List[Any]:
        """A copy of the currently stored items (monitoring hook)."""
        return list(self.items)

    # -- internals ---------------------------------------------------------------

    def _try_put(self, event) -> bool:
        if len(self.items) + self._reserved < self.capacity:
            if isinstance(event, StoreReserve):
                self._reserved += 1
                event.succeed(event)
            else:
                self.items.append(event.item)
                self.high_water = max(self.high_water, len(self.items) + self._reserved)
                event.succeed()
            return True
        if self.overflow == "raise":
            self.overflow_count += 1
            item = event.item if isinstance(event, StorePut) else None
            event.fail(QueueOverflow(self, item))
            return True  # the event resolved (with failure); drop from queue
        return False

    def _try_get(self, event: StoreGet) -> bool:
        if isinstance(event, FilterStoreGet):
            for i, item in enumerate(self.items):
                if event.filter(item):
                    del self.items[i]
                    event.succeed(item)
                    return True
            return False
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _dispatch(self) -> None:
        """Match queued puts and gets until no more progress is possible."""
        progress = True
        while progress:
            progress = False
            idx = 0
            while idx < len(self._put_queue):
                event = self._put_queue[idx]
                if event.triggered:
                    self._put_queue.pop(idx)
                    progress = True
                elif self._try_put(event):
                    self._put_queue.pop(idx)
                    progress = True
                else:
                    idx += 1
                    if self.overflow == "block":
                        break  # preserve FIFO ordering of blocked puts
            idx = 0
            while idx < len(self._get_queue):
                event = self._get_queue[idx]
                if event.triggered:
                    self._get_queue.pop(idx)
                    progress = True
                elif self._try_get(event):
                    self._get_queue.pop(idx)
                    progress = True
                else:
                    idx += 1


class FilterStore(Store):
    """A store whose ``get`` can select items by predicate."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        return FilterStoreGet(self, filter)
