"""The declarative control-plane protocol engine.

A control protocol — the multi-round message exchanges of Section III-D
(Figure 3) and the D2T two-phase commit (Figure 6) — is declared as a
:class:`ProtocolSpec`: an ordered tuple of named :class:`Round` objects,
each with an optional guard (``when``), handler, per-round timeout,
enter/exit trace labels, and compensation action.  One runtime,
:class:`ControlPlaneEngine`, executes every spec: it runs rounds in order
inside the simulation, charges simulated message/compute costs through the
shared :class:`Context`, enforces round timeouts by interrupting the
handler, unwinds completed rounds' compensations in reverse order on a
:class:`ProtocolAbort`, and emits a structured
:class:`~repro.controlplane.trace.ProtocolTrace` for every execution.

Handlers are either plain callables (instantaneous bookkeeping) or
generators (simulated work: sends, waits, transfers).  They receive the
:class:`Context`, which carries the protocol's mutable state dict, the
legacy :class:`~repro.containers.protocol.ProtocolCost` record (when the
caller traces one), and ``round``/``charge`` helpers that feed both the
legacy record and the structured trace — keeping the Figure 4/5 breakdown
output byte-identical while every execution gains an audit trail.

Abort semantics: a handler raises :class:`ProtocolAbort` (optionally with
a ``result`` for the caller); the engine runs the ``compensate`` action of
every *completed* round in reverse order, then the spec-level ``on_abort``
hook, and returns.  :class:`RoundTimeout` is the abort the engine itself
raises when a timed round expires with ``on_timeout="abort"``.
:class:`ProtocolExit` ends a protocol early without the abort path (e.g. a
recovery recheck finding nothing left to do).  Any other exception —
notably :class:`~repro.simkernel.errors.SimulationError` — marks the trace
failed and propagates unchanged to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import GeneratorType
from typing import Any, Callable, Dict, Optional, Tuple

from repro.simkernel import Environment, Interrupt
from repro.controlplane.trace import CONTROL_TRACE, ControlPlaneTrace, ProtocolTrace


class ProtocolAbort(Exception):
    """A protocol run must stop and unwind its completed rounds.

    ``result`` (when not None) becomes the protocol's return value after
    the unwind, unless the abort path sets ``ctx.result`` itself.
    """

    def __init__(self, reason: str, result: Any = None):
        super().__init__(reason)
        self.reason = reason
        self.result = result


class RoundTimeout(ProtocolAbort):
    """A timed round expired and its policy was to abort the protocol."""


class ProtocolExit(Exception):
    """End the protocol early, successfully (no compensation)."""

    def __init__(self, result: Any = None):
        super().__init__("protocol exit")
        self.result = result


def _resolve(label, ctx: "Context") -> Optional[str]:
    if label is None:
        return None
    return label(ctx) if callable(label) else label


def _drive(out):
    """Run a handler result: drive generators, pass plain returns through."""
    if isinstance(out, GeneratorType):
        result = yield from out
        return result
    return out


@dataclass(frozen=True)
class Round:
    """One named round of a protocol."""

    name: str
    #: the round's work; plain callable or generator function of (ctx)
    handler: Optional[Callable[["Context"], Any]] = None
    #: guard: round is skipped (status "skipped") when false at entry
    when: Optional[Callable[["Context"], bool]] = None
    #: trace label emitted before the handler runs (str or callable(ctx))
    enter_label: Any = None
    #: trace label emitted after the handler completes
    exit_label: Any = None
    #: per-round timeout in simulated seconds (number or callable(ctx));
    #: the handler is interrupted when it expires
    timeout: Any = None
    #: "abort" raises RoundTimeout; "continue" proceeds to the next round
    #: with the round marked timed out (presumed-abort style protocols)
    on_timeout: str = "abort"
    #: compensation run (reverse order) when a later round aborts
    compensate: Optional[Callable[["Context"], Any]] = None


@dataclass(frozen=True)
class ProtocolSpec:
    """A protocol: an ordered sequence of rounds plus an abort hook."""

    name: str
    rounds: Tuple[Round, ...]
    #: runs after compensations on any ProtocolAbort; receives the context
    #: (the abort itself is available as ``ctx.abort``)
    on_abort: Optional[Callable[["Context"], Any]] = None


class Context:
    """Mutable state shared by a protocol execution's rounds.

    Dict-style access reads/writes the caller-supplied ``data`` mapping
    (shared by reference, so callers observe handler updates).  ``round``
    and ``charge`` mirror into both the legacy per-operation
    :class:`ProtocolCost` record (when present) and the structured trace.
    """

    def __init__(self, env: Environment, spec: ProtocolSpec, record,
                 trace: ProtocolTrace, data: Optional[Dict[str, Any]]):
        self.env = env
        self.spec = spec
        self.record = record
        self.trace = trace
        self.data = data if data is not None else {}
        self.result: Any = None
        #: the ProtocolAbort being handled, during compensation/on_abort
        self.abort: Optional[ProtocolAbort] = None
        self._round = None  # current RoundTrace

    # -- state dict --------------------------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.data[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.data

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    # -- tracing -----------------------------------------------------------------------

    def round(self, label: str) -> None:
        """Emit a detail label (a Figure 3 round string)."""
        if self.record is not None:
            self.record.round(label)
        if self._round is not None:
            self._round.labels.append(label)

    def charge(self, category: str, seconds: float, messages: int = 0) -> None:
        """Charge simulated cost to a category (and the current round)."""
        if self.record is not None:
            self.record.charge(category, seconds, messages=messages)
        if self._round is not None:
            rt = self._round
            rt.charged[category] = rt.charged.get(category, 0.0) + seconds
            rt.messages += messages


class ControlPlaneEngine:
    """Executes :class:`ProtocolSpec` declarations inside the simulation."""

    def __init__(self, env: Environment,
                 trace: Optional[ControlPlaneTrace] = None):
        self.env = env
        self.trace = trace if trace is not None else CONTROL_TRACE

    def execute(self, spec: ProtocolSpec, subject: str = "", record=None,
                data: Optional[Dict[str, Any]] = None):
        """Process: run ``spec``; value is the protocol result.

        ``record`` is an optional legacy :class:`ProtocolCost` the rounds
        also feed (container protocols); ``data`` seeds the context state.
        """
        ctx = Context(self.env, spec, record,
                      self.trace.begin(spec.name, subject, self.env.now), data)
        return self.env.process(self._run(spec, ctx), name=f"cp:{spec.name}")

    # -- execution ---------------------------------------------------------------------

    def _run(self, spec: ProtocolSpec, ctx: Context):
        try:
            status = yield from self._body(spec, ctx)
        except BaseException:
            self.trace.finish(ctx.trace, self.env.now, "failed")
            raise
        self.trace.finish(ctx.trace, self.env.now, status)
        return ctx.result

    def _body(self, spec: ProtocolSpec, ctx: Context):
        completed = []
        try:
            for rnd in spec.rounds:
                now = self.env.now
                rt = ctx.trace.begin_round(rnd.name, now)
                if rnd.when is not None and not rnd.when(ctx):
                    rt.status = "skipped"
                    rt.finished_at = now
                    continue
                ctx._round = rt
                try:
                    label = _resolve(rnd.enter_label, ctx)
                    if label:
                        ctx.round(label)
                    if rnd.handler is not None:
                        timeout = rnd.timeout(ctx) if callable(rnd.timeout) else rnd.timeout
                        if timeout is None:
                            yield from _drive(rnd.handler(ctx))
                        else:
                            done = yield from self._invoke_timed(rnd, ctx, timeout)
                            if not done:
                                rt.status = "timeout"
                                if rnd.on_timeout == "abort":
                                    raise RoundTimeout(
                                        f"round {rnd.name!r} of {spec.name!r} "
                                        f"timed out after {timeout}s",
                                        result=ctx.result,
                                    )
                    label = _resolve(rnd.exit_label, ctx)
                    if label:
                        ctx.round(label)
                finally:
                    rt.finished_at = self.env.now
                    ctx._round = None
                completed.append(rnd)
        except ProtocolExit as stop:
            if stop.result is not None:
                ctx.result = stop.result
            return "committed"
        except ProtocolAbort as abort:
            ctx.abort = abort
            ctx.trace.abort_reason = abort.reason
            yield from self._unwind(spec, ctx, completed)
            if abort.result is not None and ctx.result is None:
                ctx.result = abort.result
            return "aborted"
        return "committed"

    def _invoke_timed(self, rnd: Round, ctx: Context, timeout: float):
        """Run a handler under a deadline; False means it was cut short."""
        proc = self.env.process(self._guarded(rnd, ctx),
                                name=f"cp:{ctx.spec.name}.{rnd.name}")
        timer = self.env.timeout(timeout)
        # A handler failure fails the condition and re-raises here.
        yield self.env.any_of([proc, timer])
        if proc.triggered:
            return True
        proc.interrupt("round timeout")
        yield proc
        return False

    def _guarded(self, rnd: Round, ctx: Context):
        """Handler wrapper absorbing the engine's timeout interrupt."""
        try:
            out = rnd.handler(ctx)
            if isinstance(out, GeneratorType):
                yield from out
        except Interrupt:
            return

    def _unwind(self, spec: ProtocolSpec, ctx: Context, completed):
        """Abort path: reverse compensations, then the spec's abort hook."""
        for rnd in reversed(completed):
            if rnd.compensate is not None:
                ctx.trace.compensated.append(rnd.name)
                yield from _drive(rnd.compensate(ctx))
        if spec.on_abort is not None:
            yield from _drive(spec.on_abort(ctx))
