"""Declarative, traceable control-plane protocol engine.

One runtime for every control protocol the framework runs: the Figure 3-5
container protocols, the global manager's orchestration and abort paths,
the REPLACE recovery ladder, and the D2T transactions of Figure 6.  See
:mod:`repro.controlplane.engine` for the execution model and
:mod:`repro.controlplane.protocols` for the protocol catalogue.
"""

from repro.controlplane.engine import (
    Context,
    ControlPlaneEngine,
    ProtocolAbort,
    ProtocolExit,
    ProtocolSpec,
    Round,
    RoundTimeout,
)
from repro.controlplane.trace import (
    CONTROL_TRACE,
    ControlPlaneTrace,
    ProtocolTrace,
    RoundTrace,
)
from repro.controlplane import protocols

__all__ = [
    "CONTROL_TRACE",
    "Context",
    "ControlPlaneEngine",
    "ControlPlaneTrace",
    "ProtocolAbort",
    "ProtocolExit",
    "ProtocolSpec",
    "ProtocolTrace",
    "Round",
    "RoundTimeout",
    "RoundTrace",
    "protocols",
]
