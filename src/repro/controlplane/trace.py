"""Structured per-round traces of control-plane protocol executions.

Every protocol the :class:`~repro.controlplane.engine.ControlPlaneEngine`
runs produces one :class:`ProtocolTrace` — an ordered list of
:class:`RoundTrace` records carrying the round's status (ok / skipped /
timeout), its simulated duration, the detail labels it emitted, and the
cost categories it charged.  The trace is the machine-readable twin of the
human-oriented :class:`~repro.containers.protocol.ProtocolCost` rounds
list: benches aggregate it into round-count/latency breakdowns, and every
finished execution is mirrored into :data:`repro.perf.REGISTRY` (counts
plus simulated-seconds durations, the same convention as the
``faults.mttr_detected`` metric) so protocol activity appears in
``BENCH_kernels.json``-style snapshots without extra plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.perf.registry import REGISTRY, PerfRegistry


@dataclass
class RoundTrace:
    """One executed (or skipped) round of a protocol."""

    name: str
    started_at: float
    finished_at: float = 0.0
    #: ok | skipped | timeout
    status: str = "ok"
    #: detail labels emitted while the round ran (the Fig 3 round strings)
    labels: List[str] = field(default_factory=list)
    #: simulated seconds charged per cost category during this round
    charged: Dict[str, float] = field(default_factory=dict)
    #: messages charged during this round
    messages: int = 0

    @property
    def seconds(self) -> float:
        return self.finished_at - self.started_at

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "seconds": self.seconds,
            "labels": list(self.labels),
            "charged": dict(self.charged),
            "messages": self.messages,
        }


@dataclass
class ProtocolTrace:
    """One protocol execution: the engine's structured audit record."""

    protocol: str
    subject: str
    started_at: float
    finished_at: float = 0.0
    #: running | committed | aborted | failed
    status: str = "running"
    abort_reason: Optional[str] = None
    rounds: List[RoundTrace] = field(default_factory=list)
    #: names of rounds whose compensation ran during an abort unwind
    compensated: List[str] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.finished_at - self.started_at

    @property
    def round_count(self) -> int:
        """Rounds that actually executed (skipped rounds excluded)."""
        return sum(1 for r in self.rounds if r.status != "skipped")

    @property
    def messages(self) -> int:
        return sum(r.messages for r in self.rounds)

    def begin_round(self, name: str, now: float) -> RoundTrace:
        rt = RoundTrace(name=name, started_at=now)
        self.rounds.append(rt)
        return rt

    def audit(self) -> List[str]:
        """Structural well-formedness problems of a *finished* trace.

        The contract every engine-run protocol must satisfy (the DST
        trace-well-formedness oracle): rounds execute in order with
        non-negative, non-overlapping durations; a committed trace carries
        no abort reason and no compensation; an aborted trace names its
        reason and compensated *completed* rounds in reverse execution
        order.  Returns a list of human-readable problems (empty = clean).
        """
        problems: List[str] = []
        head = f"{self.protocol}[{self.subject}]"
        executed: List[str] = []
        clock = self.started_at
        for rnd in self.rounds:
            if rnd.finished_at < rnd.started_at:
                problems.append(
                    f"{head}: round {rnd.name!r} finished before it started"
                )
            if rnd.started_at < clock - 1e-9:
                problems.append(
                    f"{head}: round {rnd.name!r} started before its predecessor finished"
                )
            clock = max(clock, rnd.finished_at)
            if rnd.status not in ("ok", "skipped", "timeout"):
                problems.append(
                    f"{head}: round {rnd.name!r} has unknown status {rnd.status!r}"
                )
            if rnd.status != "skipped":
                executed.append(rnd.name)
        if self.status == "committed":
            if self.abort_reason is not None:
                problems.append(f"{head}: committed with abort reason {self.abort_reason!r}")
            if self.compensated:
                problems.append(f"{head}: committed but compensated {self.compensated}")
        elif self.status == "aborted":
            if self.abort_reason is None:
                problems.append(f"{head}: aborted without a reason")
            # Compensations must replay completed rounds backwards: the
            # compensated list, reversed, must be a subsequence of the
            # executed-round order (every unwound round ran, and the unwind
            # never jumps forward).
            it = iter(executed)
            for name in reversed(self.compensated):
                if not any(r == name for r in it):
                    problems.append(
                        f"{head}: compensation order {self.compensated} does not "
                        f"reverse executed rounds {executed}"
                    )
                    break
        elif self.status == "running":
            problems.append(f"{head}: trace never finished")
        return problems

    def as_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "subject": self.subject,
            "status": self.status,
            "abort_reason": self.abort_reason,
            "total_seconds": self.total,
            "round_count": self.round_count,
            "messages": self.messages,
            "compensated": list(self.compensated),
            "rounds": [r.as_dict() for r in self.rounds],
        }


class ControlPlaneTrace:
    """Accumulates :class:`ProtocolTrace` records and mirrors them to perf.

    One instance per pipeline (or per transaction manager); the module
    default :data:`CONTROL_TRACE` serves engines constructed without one.
    """

    def __init__(self, registry: Optional[PerfRegistry] = None,
                 prefix: str = "controlplane"):
        self.registry = REGISTRY if registry is None else registry
        self.prefix = prefix
        self.records: List[ProtocolTrace] = []

    def begin(self, protocol: str, subject: str, now: float) -> ProtocolTrace:
        trace = ProtocolTrace(protocol=protocol, subject=subject, started_at=now)
        self.records.append(trace)
        return trace

    def finish(self, trace: ProtocolTrace, now: float, status: str) -> None:
        if trace.status != "running":
            return  # already finished (double abort/failure path)
        trace.finished_at = now
        trace.status = status
        key = f"{self.prefix}.{trace.protocol}"
        reg = self.registry
        reg.count(f"{key}.runs")
        reg.count(f"{key}.rounds", trace.round_count)
        # Simulated protocol latency, sharing the duration schema wall-clock
        # timers use (the faults.mttr_detected convention).
        reg.record_duration(f"{key}.sim_seconds", trace.total)
        if status == "aborted":
            reg.count(f"{key}.aborts")
        elif status == "failed":
            reg.count(f"{key}.failures")

    def of(self, protocol: str) -> List[ProtocolTrace]:
        return [t for t in self.records if t.protocol == protocol]

    def last(self) -> Optional[ProtocolTrace]:
        return self.records[-1] if self.records else None


#: Default trace sink for engines constructed without an explicit one.
CONTROL_TRACE = ControlPlaneTrace()
