"""Declarative round specs for every control protocol in the framework.

This module is the single catalogue of the framework's control protocols:
the six container protocols of Section III-D (Figure 3) as executed by the
local manager, the global manager's orchestration protocols with their
mid-protocol abort paths, the REPLACE recovery ladder, and the D2T
transaction protocols (Figure 6).  Each is a :class:`ProtocolSpec` — a
named sequence of rounds with guards, trace labels, timeouts, and
compensation — executed by the shared
:class:`~repro.controlplane.engine.ControlPlaneEngine`.

Round handlers dispatch into the owning object, carried in the context
state (``ctx["lm"]``, ``ctx["gm"]``, ``ctx["rm"]``, ``ctx["tm"]``,
``ctx["coord"]``), so the specs stay declarations: the *shape* of a
protocol (its rounds, their order, what aborts and what compensates) lives
here; the domain work lives with the domain object.  Adding a protocol is
a new spec plus its round bodies — the engine supplies sequencing,
timeout enforcement, abort unwinding, and structured tracing.
"""

from __future__ import annotations

from repro.controlplane.engine import ProtocolSpec, Round
from repro.evpath.messages import MessageType
from repro.smartpointer.costs import ComputeModel


# ---------------------------------------------------------------------------
# Container protocols (local-manager side, Figure 3-5)
# ---------------------------------------------------------------------------

def _parallel(ctx) -> bool:
    return ctx["lm"].container.model is ComputeModel.PARALLEL


def _has_link(ctx) -> bool:
    return ctx["lm"].container.input_link is not None


#: INCREASE (Figure 3): spawn replicas on the granted nodes and wire them
#: into the container; PARALLEL components relaunch via aprun instead.
INCREASE = ProtocolSpec(
    "increase",
    rounds=(
        Round("request", enter_label="global->local: increase request"),
        Round("relaunch", when=_parallel,
              handler=lambda ctx: ctx["lm"]._relaunch_parallel(ctx["nodes"], ctx)),
        Round("spawn", when=lambda ctx: not _parallel(ctx),
              handler=lambda ctx: ctx["lm"]._spawn_replicas(ctx["nodes"], ctx)),
        Round("complete", enter_label="local->global: resize complete",
              handler=lambda ctx: ctx["lm"]._reply(
                  ctx["msg"], MessageType.RESIZE_COMPLETE,
                  {"units": ctx["lm"].container.units}, record=ctx)),
    ),
)


def _dec_active(ctx) -> bool:
    return ctx["active"]


#: DECREASE: pause upstream writers (the dominant cost, Figure 5), retire
#: replicas, merge state into survivors, resume, and surrender the nodes.
DECREASE = ProtocolSpec(
    "decrease",
    rounds=(
        Round("request", enter_label="global->local: decrease request",
              handler=lambda ctx: ctx["lm"]._dec_prepare(ctx)),
        Round("pause", when=lambda ctx: _dec_active(ctx) and _has_link(ctx),
              enter_label="local->writers: pause",
              exit_label="writers->local: paused",
              handler=lambda ctx: ctx["lm"]._pause_writers(ctx)),
        Round("retire", when=_dec_active,
              exit_label=lambda ctx: f"local: retired {ctx['count']} replicas",
              handler=lambda ctx: ctx["lm"]._dec_retire(ctx)),
        Round("merge_state", when=_dec_active,
              handler=lambda ctx: ctx["lm"]._dec_merge_state(ctx)),
        Round("resume", when=lambda ctx: _dec_active(ctx) and _has_link(ctx),
              exit_label="local->writers: resume",
              handler=lambda ctx: ctx["lm"]._resume_writers(ctx)),
        Round("complete",
              handler=lambda ctx: ctx["lm"]._reply(
                  ctx["msg"], MessageType.RESIZE_COMPLETE,
                  {"nodes": ctx["freed"], "units": ctx["lm"].container.units},
                  record=ctx)),
    ),
)


#: OFFLINE (Figure 9 path): drain every replica, strand unprocessed chunks
#: to disk with provenance, and surrender all nodes.
OFFLINE = ProtocolSpec(
    "offline",
    rounds=(
        Round("request", enter_label="global->local: offline request"),
        Round("pause", when=_has_link,
              handler=lambda ctx: ctx["lm"]._pause_writers(
                  ctx, count_messages=False)),
        Round("drain", exit_label="local: all replicas offline",
              handler=lambda ctx: ctx["lm"]._off_drain(ctx)),
        # Writers resume only when surviving consumers still read the link
        # (a dynamic branch swapped the reader set); otherwise they stay
        # quiesced and the upstream stage falls back to disk.
        Round("resume",
              when=lambda ctx: (_has_link(ctx)
                                and ctx["lm"].container.input_link.readers),
              handler=lambda ctx: ctx["lm"]._resume_writers(ctx)),
        Round("complete",
              handler=lambda ctx: ctx["lm"]._reply(
                  ctx["msg"], MessageType.OFFLINE_COMPLETE,
                  {"nodes": ctx["freed"], "unpulled": len(ctx["stranded"])},
                  record=ctx, charge_seconds=0.0)),
    ),
)


def _rep_found(ctx) -> bool:
    return ctx["dead"] is not None


#: REPLACE (crash recovery): swap a dead replica for a fresh one, re-run
#: state migration, and redeliver unacked chunks from upstream custody.
REPLACE = ProtocolSpec(
    "replace",
    rounds=(
        Round("request", enter_label="global->local: replace request",
              handler=lambda ctx: ctx["lm"]._rep_locate(ctx)),
        Round("pause", when=lambda ctx: _rep_found(ctx) and _has_link(ctx),
              enter_label="local->writers: pause",
              exit_label="writers->local: paused",
              handler=lambda ctx: ctx["lm"]._pause_writers(ctx)),
        Round("detach", when=_rep_found,
              handler=lambda ctx: ctx["lm"]._rep_detach(ctx)),
        Round("spawn", when=_rep_found,
              handler=lambda ctx: ctx["lm"]._spawn_replicas([ctx["node"]], ctx)),
        Round("redeliver",
              when=lambda ctx: (_rep_found(ctx) and _has_link(ctx)
                                and ctx["dead"].reader is not None),
              exit_label=lambda ctx:
                  f"redelivered {ctx['redelivered']} unacked chunks",
              handler=lambda ctx: ctx["lm"]._rep_redeliver(ctx)),
        Round("resume", when=lambda ctx: _rep_found(ctx) and _has_link(ctx),
              exit_label="local->writers: resume",
              handler=lambda ctx: ctx["lm"]._resume_writers(ctx)),
        Round("complete", enter_label="local->global: replace complete",
              handler=lambda ctx: ctx["lm"]._reply(
                  ctx["msg"], MessageType.REPLACE_COMPLETE,
                  {"units": ctx["lm"].container.units,
                   "redelivered": ctx["redelivered"]},
                  record=ctx)),
    ),
)


#: SET_STRIDE (Section III-D frequency reduction): refuse invalid strides
#: and strides on essential containers (NACK aborts the protocol).
SET_STRIDE = ProtocolSpec(
    "set_stride",
    rounds=(
        Round("validate", handler=lambda ctx: ctx["lm"]._stride_validate(ctx)),
        Round("apply", handler=lambda ctx: ctx["lm"]._stride_apply(ctx)),
    ),
)


#: SET_HASHING: toggle soft-error-detection hashing on the output stream.
SET_HASHING = ProtocolSpec(
    "set_hashing",
    rounds=(
        Round("apply", handler=lambda ctx: ctx["lm"]._hashing_apply(ctx)),
    ),
)


# ---------------------------------------------------------------------------
# Global-manager orchestration (abort paths from the recovery work)
# ---------------------------------------------------------------------------

#: GM INCREASE: allocate (or accept) nodes, abort if any died in transit
#: (quarantining the dead and returning survivors to the spare pool), then
#: drive the local manager's INCREASE.
GM_INCREASE = ProtocolSpec(
    "gm_increase",
    rounds=(
        Round("allocate", handler=lambda ctx: ctx["gm"]._gmi_allocate(ctx)),
        Round("validate", handler=lambda ctx: ctx["gm"]._gmi_validate(ctx)),
        Round("request", handler=lambda ctx: ctx["gm"]._gmi_request(ctx)),
    ),
    on_abort=lambda ctx: ctx["gm"]._gmi_abort(ctx),
)


#: GM STEAL (non-transactional): decrease the donor, abort if the freed
#: nodes died mid-trade (returning survivors to the pool), else increase
#: the recipient.
GM_STEAL = ProtocolSpec(
    "gm_steal",
    rounds=(
        Round("decrease", handler=lambda ctx: ctx["gm"]._gms_decrease(ctx)),
        Round("validate", handler=lambda ctx: ctx["gm"]._gms_validate(ctx)),
        Round("increase", when=lambda ctx: bool(ctx["freed"]),
              handler=lambda ctx: ctx["gm"]._gms_increase(ctx)),
        Round("commit", handler=lambda ctx: ctx["gm"]._gms_commit(ctx)),
    ),
    on_abort=lambda ctx: ctx["gm"]._gms_abort(ctx),
)


#: REPLACE recovery ladder: recheck the suspicion, acquire a replacement
#: node (spare pool, then stealing from the donor with the most headroom),
#: run REPLACE against the local manager, and record the repair.  Aborts
#: degrade the container to offline (the Figure 9 disk fallback); the
#: acquire round's compensation gives an unused node back to the pool.
GM_REPLACE = ProtocolSpec(
    "gm_replace",
    rounds=(
        Round("recheck", handler=lambda ctx: ctx["rm"]._rr_recheck(ctx)),
        Round("acquire", handler=lambda ctx: ctx["rm"]._rr_acquire(ctx),
              compensate=lambda ctx: ctx["rm"]._rr_return_node(ctx)),
        Round("replace", handler=lambda ctx: ctx["rm"]._rr_request(ctx)),
        Round("commit", handler=lambda ctx: ctx["rm"]._rr_commit(ctx)),
    ),
    on_abort=lambda ctx: ctx["rm"]._rr_degrade(ctx),
)


# ---------------------------------------------------------------------------
# Overload: the SLA brownout ladder (escalate / de-escalate with hysteresis)
# ---------------------------------------------------------------------------

#: BROWNOUT_ESCALATE: pick the next rung of the degradation ladder for the
#: worst over-SLA container (increase -> steal -> stride -> offline), apply
#: it through the regular GM operations, and record the transition in the
#: DegradationTrace.  No applicable rung exits early; a failed action
#: aborts without recording a level change.
BROWNOUT_ESCALATE = ProtocolSpec(
    "brownout_escalate",
    rounds=(
        Round("observe", handler=lambda ctx: ctx["bc"]._esc_observe(ctx)),
        Round("act", handler=lambda ctx: ctx["bc"]._esc_act(ctx)),
        Round("record", enter_label="brownout: ladder level raised",
              handler=lambda ctx: ctx["bc"]._esc_record(ctx)),
    ),
)


#: BROWNOUT_RECOVER: after latency has held below the SLA for the dwell,
#: unwind the most recent rung — restore the stride, or re-activate the
#: pruned containers upstream-first via activate() (new versus the paper,
#: whose offline decision is manual and permanent).
BROWNOUT_RECOVER = ProtocolSpec(
    "brownout_recover",
    rounds=(
        Round("observe", handler=lambda ctx: ctx["bc"]._rec_observe(ctx)),
        Round("act", handler=lambda ctx: ctx["bc"]._rec_act(ctx)),
        Round("record", enter_label="brownout: ladder level lowered",
              handler=lambda ctx: ctx["bc"]._rec_record(ctx)),
    ),
)


# ---------------------------------------------------------------------------
# Failover: degrade-to-disk spill and replay catch-up (repro.adios.failover)
# ---------------------------------------------------------------------------

#: SPILL_ENGAGE: divert a collapsed link's undispatched backlog to the
#: durable spill store instead of letting it wait out the collapse.  The
#: check round exits early when there is nothing to divert (or a spill is
#: already engaged); the flush round's compensation re-opens the epoch if
#: a later round dies, so an aborted engage never leaves the switch stuck
#: in ``spilling``.
SPILL_ENGAGE = ProtocolSpec(
    "spill_engage",
    rounds=(
        Round("check", handler=lambda ctx: ctx["fo"]._se_check(ctx)),
        Round("flush",
              exit_label=lambda ctx: f"spilled {ctx['flushed']} chunks",
              handler=lambda ctx: ctx["fo"]._se_flush(ctx),
              compensate=lambda ctx: ctx["fo"]._se_reopen(ctx)),
        Round("mark", enter_label="failover: spill engaged",
              handler=lambda ctx: ctx["fo"]._se_mark(ctx)),
    ),
    on_abort=lambda ctx: ctx["fo"]._se_abort(ctx),
)


#: REPLAY_CATCHUP: when the consumer side is healthy again, read the
#: pending spill segments back from the store in sequence order, stream
#: them to the consumer over the SST engine (reader-side flow control),
#: and hand over to the live stream at the snapshot watermark — no gap,
#: no duplicate, credits re-primed.  The snapshot round's compensation
#: re-opens the replay epoch so an aborted catch-up can be retried.
REPLAY_CATCHUP = ProtocolSpec(
    "replay_catchup",
    rounds=(
        Round("snapshot", handler=lambda ctx: ctx["fo"]._rc_snapshot(ctx)),
        Round("stream",
              exit_label=lambda ctx:
                  f"replayed {ctx['replayed']} (+{ctx['superseded']} superseded)",
              handler=lambda ctx: ctx["fo"]._rc_stream(ctx)),
        Round("handover", enter_label="failover: handover to live stream",
              handler=lambda ctx: ctx["fo"]._rc_handover(ctx)),
    ),
    on_abort=lambda ctx: ctx["fo"]._rc_abort(ctx),
)


# ---------------------------------------------------------------------------
# Transactions (D2T, Figure 6)
# ---------------------------------------------------------------------------

#: The container-trade transaction: prepare, decrease the donor, increase
#: the recipient.  A failure after the decrease triggers the decrease
#: round's compensation — the freed nodes return to the spare pool, never
#: lost (Section III-A item 5).
TRADE = ProtocolSpec(
    "trade",
    rounds=(
        Round("prepare", handler=lambda ctx: ctx["tm"]._tr_prepare(ctx)),
        Round("fault_decrease",
              handler=lambda ctx: ctx["tm"]._tr_fault(ctx, "decrease")),
        Round("decrease", handler=lambda ctx: ctx["tm"]._tr_decrease(ctx),
              compensate=lambda ctx: ctx["tm"]._tr_compensate(ctx)),
        Round("fault_increase",
              handler=lambda ctx: ctx["tm"]._tr_fault(ctx, "increase")),
        Round("increase", when=lambda ctx: bool(ctx["freed"]),
              handler=lambda ctx: ctx["tm"]._tr_increase(ctx)),
        Round("commit", handler=lambda ctx: ctx["tm"]._tr_commit(ctx)),
    ),
)


#: D2T two-phase commit over group roots (presumed abort).  Vote and ack
#: collection are timed rounds with ``on_timeout="continue"``: the engine
#: interrupts the collector at the deadline and the decision phase treats
#: the still-pending groups as having voted abort.
D2T_COMMIT = ProtocolSpec(
    "d2t_commit",
    rounds=(
        Round("vote_request",
              handler=lambda ctx: ctx["coord"]._cp_vote_request(ctx)),
        Round("collect_votes",
              handler=lambda ctx: ctx["coord"]._cp_collect_votes(ctx),
              timeout=lambda ctx: ctx["coord"].vote_timeout,
              on_timeout="continue"),
        Round("decide", handler=lambda ctx: ctx["coord"]._cp_decide(ctx)),
        Round("collect_acks",
              when=lambda ctx: bool(ctx["reachable"]),
              handler=lambda ctx: ctx["coord"]._cp_collect_acks(ctx),
              timeout=lambda ctx: ctx["coord"].ack_timeout,
              on_timeout="continue"),
        Round("finalize", handler=lambda ctx: ctx["coord"]._cp_finalize(ctx)),
    ),
)
