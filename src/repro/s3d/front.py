"""Flame-front extraction and tracking (the S3D analysis components)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


def extract_front(u: np.ndarray, level: float = 0.5, dx: float = 1.0) -> np.ndarray:
    """Per-row front x-coordinate of the ``u = level`` isoline.

    For a left-to-right front, each grid row crosses the level once; the
    crossing is located by linear interpolation between the bracketing
    cells.  Rows that never cross return NaN (front not present / already
    past the domain).  Returns an array of shape ``(ny,)``.
    """
    if u.ndim != 2:
        raise ValueError("field must be 2-D")
    if not (0.0 < level < 1.0):
        raise ValueError("level must be inside (0, 1)")
    ny, nx = u.shape
    positions = np.full(ny, np.nan)
    above = u >= level
    # The last column index where u >= level, per row (front trailing edge).
    any_above = above.any(axis=1)
    all_above = above.all(axis=1)
    rows = np.where(any_above & ~all_above)[0]
    for row in rows:
        idx = np.where(above[row])[0][-1]
        if idx + 1 >= nx:
            positions[row] = idx * dx
            continue
        u0, u1 = u[row, idx], u[row, idx + 1]
        if u0 == u1:
            frac = 0.0
        else:
            frac = (u0 - level) / (u0 - u1)
        positions[row] = (idx + frac) * dx
    positions[all_above] = (nx - 1) * dx
    return positions


def front_position(u: np.ndarray, level: float = 0.5, dx: float = 1.0) -> float:
    """Mean front x-coordinate (NaN rows excluded; NaN if no front)."""
    positions = extract_front(u, level, dx)
    finite = positions[np.isfinite(positions)]
    return float(finite.mean()) if len(finite) else float("nan")


@dataclass
class FrontSample:
    time: float
    position: float
    speed: Optional[float]
    burnt_fraction: float
    wrinkling: float  # std of per-row positions: front roughness


class FrontTracker:
    """Accumulates front position history and derives speed (stateful)."""

    def __init__(self, level: float = 0.5, dx: float = 1.0):
        if not (0.0 < level < 1.0):
            raise ValueError("level must be inside (0, 1)")
        self.level = level
        self.dx = dx
        self.samples: List[FrontSample] = []

    def update(self, time: float, u: np.ndarray) -> FrontSample:
        positions = extract_front(u, self.level, self.dx)
        finite = positions[np.isfinite(positions)]
        position = float(finite.mean()) if len(finite) else float("nan")
        wrinkling = float(finite.std()) if len(finite) else float("nan")
        speed = None
        if self.samples and np.isfinite(position):
            prev = self.samples[-1]
            if np.isfinite(prev.position) and time > prev.time:
                speed = (position - prev.position) / (time - prev.time)
        sample = FrontSample(
            time=time,
            position=position,
            speed=speed,
            burnt_fraction=float(u.mean()),
            wrinkling=wrinkling,
        )
        self.samples.append(sample)
        return sample

    def mean_speed(self, skip: int = 1) -> Optional[float]:
        """Average front speed over the recorded history.

        ``skip`` drops the initial samples (the front needs time to relax
        onto the traveling-wave profile before its speed is meaningful).
        """
        speeds = [s.speed for s in self.samples[skip:] if s.speed is not None]
        return float(np.mean(speeds)) if speeds else None

    # -- state snapshot (container migration support) ---------------------------------

    def state_bytes(self) -> int:
        return 64 * len(self.samples)

    def snapshot(self) -> dict:
        return {"level": self.level, "dx": self.dx, "samples": list(self.samples)}

    @classmethod
    def restore(cls, state: dict) -> "FrontTracker":
        tracker = cls(level=state["level"], dx=state["dx"])
        tracker.samples = list(state["samples"])
        return tracker
