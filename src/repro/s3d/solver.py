"""Fisher-KPP reaction-diffusion: a propagating flame front with known speed.

``u`` is the reaction progress variable (0 = unburnt, 1 = burnt).  The
equation ``u_t = D \\nabla^2 u + r u (1 - u)`` supports traveling fronts of
asymptotic speed ``c = 2 sqrt(D r)`` — a quantitative handle the tests use
to validate the numerics.  Explicit Euler with a five-point Laplacian and
Neumann (no-flux) boundaries; vectorized NumPy throughout.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ReactionDiffusion:
    """2-D Fisher-KPP solver on an ``ny x nx`` grid.

    Parameters
    ----------
    nx, ny:
        Grid dimensions (x is the propagation direction).
    dx:
        Grid spacing.
    diffusivity, rate:
        ``D`` and ``r``; the front speed is ``2 sqrt(D r)``.
    dt:
        Timestep; defaults to 80% of the explicit stability limit
        ``dx^2 / (4 D)``.
    """

    def __init__(
        self,
        nx: int = 200,
        ny: int = 40,
        dx: float = 1.0,
        diffusivity: float = 1.0,
        rate: float = 0.25,
        dt: Optional[float] = None,
    ):
        if nx < 3 or ny < 3:
            raise ValueError("grid must be at least 3x3")
        if dx <= 0 or diffusivity <= 0 or rate <= 0:
            raise ValueError("dx, diffusivity and rate must be positive")
        self.nx = nx
        self.ny = ny
        self.dx = float(dx)
        self.diffusivity = float(diffusivity)
        self.rate = float(rate)
        stability = dx * dx / (4.0 * diffusivity)
        self.dt = float(dt) if dt is not None else 0.8 * stability
        if self.dt > stability + 1e-12:
            raise ValueError(
                f"dt={self.dt} exceeds the explicit stability limit {stability}"
            )
        self.time = 0.0
        self.step_count = 0
        #: progress variable, shape (ny, nx)
        self.u = np.zeros((ny, nx), dtype=np.float64)

    # -- initial conditions -------------------------------------------------------

    def ignite_left(self, width: int = 5) -> None:
        """Set the left ``width`` columns to fully burnt."""
        if not (0 < width < self.nx):
            raise ValueError("ignition width must be inside the grid")
        self.u[:, :width] = 1.0

    def ignite_point(self, x: int, y: int, radius: int = 3) -> None:
        """Circular ignition kernel (for expanding-front scenarios)."""
        yy, xx = np.mgrid[0:self.ny, 0:self.nx]
        self.u[(xx - x) ** 2 + (yy - y) ** 2 <= radius * radius] = 1.0

    @property
    def wave_speed(self) -> float:
        """Asymptotic Fisher-KPP front speed, ``2 sqrt(D r)``."""
        return 2.0 * np.sqrt(self.diffusivity * self.rate)

    # -- stepping ----------------------------------------------------------------------

    def _laplacian(self, u: np.ndarray) -> np.ndarray:
        """Five-point Laplacian with Neumann (zero-flux) boundaries."""
        padded = np.pad(u, 1, mode="edge")
        return (
            padded[1:-1, :-2] + padded[1:-1, 2:]
            + padded[:-2, 1:-1] + padded[2:, 1:-1]
            - 4.0 * u
        ) / (self.dx * self.dx)

    def step(self, nsteps: int = 1) -> None:
        """Advance ``nsteps`` explicit Euler steps."""
        for _ in range(nsteps):
            lap = self._laplacian(self.u)
            self.u += self.dt * (
                self.diffusivity * lap + self.rate * self.u * (1.0 - self.u)
            )
            # Clip round-off excursions; the PDE keeps u in [0, 1].
            np.clip(self.u, 0.0, 1.0, out=self.u)
            self.time += self.dt
            self.step_count += 1

    def snapshot(self) -> np.ndarray:
        return self.u.copy()

    def burnt_fraction(self) -> float:
        return float(self.u.mean())
