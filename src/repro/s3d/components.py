"""Container component specs for the S3D flame-front pipeline.

The DES-level S3D pipeline mirrors the LAMMPS one: a TREE reducer gathers
the distributed field, a front-extraction stage scans it, and a stateful
tracking stage maintains the front history.  Cost bases are calibrated the
same way as the SmartPointer set: the extraction stage is the potential
bottleneck at large grids.
"""

from __future__ import annotations

from repro.smartpointer.component import ComponentSpec
from repro.smartpointer.costs import ComputeModel, CostModel

S3D_COMPONENTS = {
    "reduce": ComponentSpec(
        name="reduce",
        complexity="O(n)",
        compute_models=(ComputeModel.TREE,),
        dynamic_branching=False,
        cost=CostModel("reduce", base_seconds=16.0, exponent=1.0),
        output_ratio=1.0,
        essential=True,
    ),
    "front": ComponentSpec(
        name="front",
        complexity="O(n)",
        compute_models=(ComputeModel.SERIAL, ComputeModel.ROUND_ROBIN),
        dynamic_branching=False,
        cost=CostModel("front", base_seconds=65.0, exponent=1.2),
        output_ratio=0.05,  # the isoline is one value per grid row
    ),
    "track": ComponentSpec(
        name="track",
        complexity="O(n)",
        compute_models=(ComputeModel.SERIAL, ComputeModel.ROUND_ROBIN),
        dynamic_branching=False,
        cost=CostModel("track", base_seconds=8.0, exponent=0.5),
        output_ratio=0.05,
        stateful=True,       # the front history migrates on resizes
        state_ratio=0.02,
    ),
}
