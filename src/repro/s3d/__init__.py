"""A miniature S3D: combustion fields with real flame-front physics.

The paper's "current work" (Section I) applies containers to "the S3D
combustion modeling code and the numerous analysis and visualization
components developed for it to perform flame front tracking and
visualization."  This package provides that second application substrate:

* :class:`ReactionDiffusion` — an explicit finite-difference solver for the
  Fisher-KPP equation ``u_t = D \\nabla^2 u + r u (1 - u)`` on a 2-D grid:
  the classic model of a propagating combustion/reaction front, with a
  known traveling-wave speed ``c = 2 sqrt(D r)`` the tests verify;
* :func:`extract_front` — isoline extraction (the front is the ``u = 0.5``
  level set), the flame-front analysis component;
* :class:`FrontTracker` — front position/speed/area history, the tracking
  component (stateful, like the fragment tracker).
"""

from repro.s3d.solver import ReactionDiffusion
from repro.s3d.front import FrontTracker, extract_front, front_position

__all__ = [
    "FrontTracker",
    "ReactionDiffusion",
    "extract_front",
    "front_position",
]
