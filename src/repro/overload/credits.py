"""Credit-based backpressure on DataTap links.

A :class:`LinkCredits` gates *metadata dispatch* on one link: a writer may
push metadata for a chunk only while the link holds fewer than ``window``
undelivered chunks in flight; beyond that the push is deferred (the chunk
stays safely in the writer's staging buffer).  Credits return when the
downstream reader finishes with the chunk — pull completed, duplicate
dropped, pull failed, or metadata orphaned — at which point deferred
pushes drain in arrival order.

The window is resized continuously by the
:class:`~repro.overload.backpressure.BackpressureController` from
downstream headroom (consumer queue slots scaled by the consumer's *own*
output-buffer occupancy), which is what propagates pressure upstream
hop-by-hop: a slow terminal stage shrinks its input window, its
producers' buffers fill, *their* link's window shrinks in turn, until the
pressure reaches the LAMMPS driver as an output-stride signal instead of
an unbounded block.

Recovery traffic — crash redelivery and teardown re-dispatch — bypasses
credits by design: it re-pushes chunks that already consumed a credit (or
whose reader died holding one), and throttling the recovery path would
couple fault handling to flow control.  ``release`` is idempotent, so a
bypassing chunk's completion is a no-op here.

``link.credits is None`` (the default) disables the mechanism entirely;
the dispatch path is then byte-identical to the uncontrolled one.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple, TYPE_CHECKING

from repro.perf.registry import REGISTRY

if TYPE_CHECKING:
    from repro.datatap.link import DataTapLink
    from repro.datatap.writer import DataTapWriter
    from repro.data import DataChunk


class LinkCredits:
    """Per-link credit window over undelivered metadata pushes."""

    def __init__(self, env, link: "DataTapLink", window: int = 8, min_window: int = 1):
        if min_window < 1:
            raise ValueError("min_window must be >= 1")
        self.env = env
        self.link = link
        self.min_window = int(min_window)
        self.window = max(self.min_window, int(window))
        #: chunk_id -> writer name currently holding a credit
        self._held: Dict[int, str] = {}
        #: (writer, chunk) dispatches waiting for a credit, in arrival order
        self._deferred: Deque[Tuple["DataTapWriter", "DataChunk"]] = deque()
        #: monitoring
        self.granted = 0
        self.deferred_total = 0
        self.resizes = 0

    # -- state ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._held)

    @property
    def backlog(self) -> int:
        return len(self._deferred)

    @property
    def pressure(self) -> float:
        """Demand over capacity; > 1.0 means dispatches are queueing."""
        return (self.outstanding + self.backlog) / max(1, self.window)

    # -- the credit protocol ------------------------------------------------------

    def try_acquire(self, writer_name: str, chunk_id: int) -> bool:
        """Take a credit for a chunk; False when the window is exhausted."""
        if chunk_id in self._held:
            return True  # a re-dispatch of the same chunk rides its credit
        if self.outstanding >= self.window:
            return False
        self._held[chunk_id] = writer_name
        self.granted += 1
        REGISTRY.count("datatap.credits_granted")
        return True

    def defer(self, writer: "DataTapWriter", chunk) -> None:
        """Queue a dispatch until a credit frees up."""
        self._deferred.append((writer, chunk))
        self.deferred_total += 1
        REGISTRY.count("datatap.meta_deferred")

    def release(self, chunk_id: int) -> None:
        """Return a chunk's credit (idempotent) and drain deferred pushes."""
        if self._held.pop(chunk_id, None) is None:
            return
        self._pump()

    def resize(self, window: int) -> None:
        """Set the window (floored at ``min_window``); growth drains deferrals."""
        window = max(self.min_window, int(window))
        if window != self.window:
            self.resizes += 1
            self.window = window
        self._pump()

    def reset(self) -> None:
        """Forget all held credits (container reactivation: the downstream
        state they described is gone) and re-drain the deferral queue."""
        self._held.clear()
        self._pump()

    def forget_writer(self, writer_name: str) -> None:
        """Drop a departed writer's credits and queued dispatches."""
        for chunk_id in [c for c, w in self._held.items() if w == writer_name]:
            del self._held[chunk_id]
        self._deferred = deque(
            (w, c) for w, c in self._deferred if w.name != writer_name
        )
        self._pump()

    # -- internals -----------------------------------------------------------------

    def _pump(self) -> None:
        while self._deferred and self.outstanding < self.window:
            writer, chunk = self._deferred.popleft()
            if writer.link is not self.link:
                continue  # writer left the link while deferred
            if not writer.needs_delivery(chunk.chunk_id):
                continue  # delivered (or flushed) while waiting; no push owed
            if writer.paused:
                # Hand the chunk to the pause backlog; resume re-dispatches
                # it through the credit gate.
                if chunk not in writer._pending_meta:
                    writer._pending_meta.append(chunk)
                continue
            self._held[chunk.chunk_id] = writer.name
            self.granted += 1
            REGISTRY.count("datatap.credits_granted")
            writer.spawn_metadata_push(chunk)

    def __repr__(self) -> str:
        return (
            f"<LinkCredits {self.link.name!r} window={self.window} "
            f"held={self.outstanding} deferred={self.backlog}>"
        )
