"""The SLA brownout ladder: escalate under violation, de-escalate with hysteresis.

The paper's global manager reacts to a sustained SLA violation with a fixed
remediation order — grow the bottleneck from spares, steal from
over-provisioned containers, lower a container's output frequency, and
finally take the non-essential bottleneck (plus downstream dependents)
offline — but the offline decision is manual and permanent.  The
:class:`BrownoutController` automates that ladder as two control-plane
protocols (``brownout_escalate`` / ``brownout_recover`` in
:mod:`repro.controlplane.protocols`) and adds the half the paper leaves
open: *de-escalation with hysteresis*.  Every escalation pushes an undo
entry; once the observed latency holds below ``recover_ratio`` x SLA for a
configurable dwell, the ladder unwinds one rung per dwell — restoring
strides and re-activating pruned containers via
:meth:`~repro.containers.global_manager.GlobalManager.activate` — until the
pipeline is fully restored.

Every transition (escalation, recovery, and the backpressure controller's
driver-stride moves) lands in one structured :class:`DegradationTrace`, the
record the overload experiment and the acceptance tests assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simkernel import Interrupt
from repro.simkernel.errors import SimulationError
from repro.containers.policy import ManagementPolicy
from repro.controlplane import ProtocolAbort, ProtocolExit
from repro.perf.registry import REGISTRY

#: escalating actions, in ladder order (rung 1..4)
ESCALATIONS = ("increase", "steal", "stride", "offline")


class NullPolicy(ManagementPolicy):
    """A policy that never acts — installed when the brownout ladder owns
    remediation, so the legacy control loop cannot fight it."""

    def decide(self, states, spare_nodes, sla_interval, now, horizon):
        return []


@dataclass(frozen=True)
class DegradationStep:
    """One recorded transition of the pipeline's degradation state."""

    time: float
    #: which controller moved: "backpressure" (driver stride) or "brownout"
    kind: str
    #: the transition ("stride_up", "increase", "undo_offline", ...)
    action: str
    #: that controller's degradation level *after* the transition
    level: int
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "action": self.action,
            "level": self.level,
            "detail": dict(self.detail),
        }


class DegradationTrace:
    """The structured record of every degradation transition.

    Tracks a level per controller kind; the pipeline is *degraded* while
    any kind sits above level 0, and *fully restored* once every kind has
    returned to 0 after having left it.
    """

    def __init__(self):
        self.steps: List[DegradationStep] = []
        self._levels: Dict[str, int] = {}
        self._intervals: List[tuple] = []
        self._entered: Optional[float] = None
        #: callables invoked as ``fn(step, trace)`` after every recorded
        #: transition — this is how ``time_in_degraded`` and level deltas
        #: reach live consumers (telemetry, the analytics series store)
        #: mid-run instead of only at pipeline end
        self.subscribers: List = []

    def record(self, time: float, kind: str, action: str, level: int, **detail) -> None:
        prev = self.overall_level
        step = DegradationStep(float(time), kind, action, int(level), detail)
        self.steps.append(step)
        self._levels[kind] = int(level)
        cur = self.overall_level
        if prev == 0 and cur > 0:
            self._entered = float(time)
        elif prev > 0 and cur == 0 and self._entered is not None:
            self._intervals.append((self._entered, float(time)))
            self._entered = None
        for fn in self.subscribers:
            fn(step, self)

    # -- summary metrics ----------------------------------------------------------

    @property
    def overall_level(self) -> int:
        return max(self._levels.values(), default=0)

    @property
    def max_level(self) -> int:
        return max((s.level for s in self.steps), default=0)

    @property
    def degraded(self) -> bool:
        return self.overall_level > 0

    @property
    def fully_restored(self) -> bool:
        """Degradation happened and has been completely unwound."""
        return bool(self.steps) and self.overall_level == 0

    def time_in_degraded(self, now: Optional[float] = None) -> float:
        """Total simulated seconds spent above level 0."""
        total = sum(end - start for start, end in self._intervals)
        if self._entered is not None and now is not None:
            total += max(0.0, now - self._entered)
        return total

    @property
    def recovery_dwell(self) -> Optional[float]:
        """Seconds from the last escalating step to full restoration."""
        if not self._intervals:
            return None
        start, end = self._intervals[-1]
        last_up = max(
            (s.time for s in self.steps
             if s.time <= end and (s.action in ESCALATIONS or s.action == "stride_up")),
            default=start,
        )
        return end - last_up

    def as_dicts(self) -> List[dict]:
        return [s.as_dict() for s in self.steps]

    def __repr__(self) -> str:
        return (
            f"<DegradationTrace {len(self.steps)} steps level={self.overall_level} "
            f"max={self.max_level}>"
        )


@dataclass(frozen=True)
class BrownoutConfig:
    """Tuning of the ladder's escalation/recovery dynamics."""

    #: how often the controller samples SLA ratios
    check_interval: float = 10.0
    #: escalate while max(latency / (sla_interval * sla_factor)) exceeds this
    escalate_ratio: float = 1.0
    #: recovery requires the ratio to hold at or below this (the hysteresis gap)
    recover_ratio: float = 0.7
    #: seconds the ratio must hold below ``recover_ratio`` per unwound rung
    dwell: float = 30.0
    #: cap on the sampling stride the ladder will impose
    max_stride: int = 8


class BrownoutController:
    """Drives the escalate/recover protocols off the GM's metric snapshot."""

    def __init__(self, env, global_manager, config: Optional[BrownoutConfig] = None,
                 telemetry=None, degradation: Optional[DegradationTrace] = None,
                 predictor=None):
        self.env = env
        self.gm = global_manager
        self.config = config or BrownoutConfig()
        self.telemetry = telemetry if telemetry is not None else global_manager.telemetry
        self.trace = degradation if degradation is not None else DegradationTrace()
        #: optional :class:`~repro.analytics.predictive.PredictiveManager`;
        #: when None (the default) the controller is purely reactive and
        #: its event schedule is byte-identical to the pre-analytics tree
        self.predictor = predictor
        #: undo stack: one entry per escalation, unwound in reverse
        self._stack: List[tuple] = []
        self._ok_since: Optional[float] = None
        # Premature-recovery memory (predictive only): when the offline
        # rung is rebuilt shortly after its last undo, the next
        # undo_offline waits a doubled dwell — the catch-up flood that
        # re-wedged once will re-wedge again on the same schedule.
        self._last_undo_offline: Optional[float] = None
        self._offline_backoff: float = 1.0
        self._stopped = False
        self._proc = env.process(self._run(), name="brownout")

    @property
    def level(self) -> int:
        return len(self._stack)

    def stop(self) -> None:
        self._stopped = True
        if self._proc.is_alive:
            self._proc.interrupt("stop")

    # -- the control loop ----------------------------------------------------------

    def _run(self):
        from repro.controlplane import protocols

        cfg = self.config
        while True:
            try:
                yield self.env.timeout(self._check_interval())
            except Interrupt:
                return
            if self._stopped:
                return
            ratio, worst = self._sla_ratio()
            if ratio is None:
                continue
            self.telemetry.record("overload", "sla_ratio", self.env.now, ratio)
            exec_ratio, proactive = ratio, False
            if ratio <= cfg.escalate_ratio and self.predictor is not None:
                risk = self._forecast_risk()
                if risk is not None:
                    worst, exec_ratio, proactive = risk[0], risk[1], True
            if ratio > cfg.escalate_ratio or proactive:
                self._ok_since = None
                data = {"bc": self, "gm": self.gm, "worst": worst,
                        "ratio": exec_ratio}
                if self.predictor is not None:
                    data["proactive"] = proactive
                    if proactive:
                        # The evidence lands in the series store *before*
                        # the protocol runs; the predictive_actions_bounded
                        # invariant audits this ordering.
                        self.predictor.signal("sla_risk", exec_ratio, subject=worst)
                request = self.gm.control_lock.request()
                yield request
                try:
                    yield self.gm.engine.execute(
                        protocols.BROWNOUT_ESCALATE, subject=worst, data=data,
                    )
                finally:
                    self.gm.control_lock.release(request)
            elif ratio <= cfg.recover_ratio and self._stack:
                if self._ok_since is None:
                    self._ok_since = self.env.now
                elif self.env.now - self._ok_since >= self._recovery_dwell():
                    request = self.gm.control_lock.request()
                    yield request
                    try:
                        yield self.gm.engine.execute(
                            protocols.BROWNOUT_RECOVER,
                            subject=self._stack[-1][0] if self._stack else "",
                            data={"bc": self, "gm": self.gm},
                        )
                    finally:
                        self.gm.control_lock.release(request)
                    # One rung per dwell: the next unwind needs a fresh hold.
                    self._ok_since = self.env.now
            elif ratio > cfg.recover_ratio:
                # Inside the hysteresis band: neither escalate nor count
                # toward recovery dwell.
                self._ok_since = None

    def _check_interval(self) -> float:
        """Seconds until the next SLA check.

        When the forecaster confirms the violation will persist, the
        control loop tightens: the ladder still climbs one rung per
        check — never skipping — but checks come ``escalation_check_factor``
        times as often, so the shedding stride rungs give way to the
        queueing ``offline`` rung sooner.  Reactive controllers
        (``predictor is None``) always pace at ``check_interval``.
        """
        interval = self.config.check_interval
        if self.predictor is None:
            return interval
        factor = self.predictor.config.escalation_check_factor
        risk = self.predictor.sla_risk()
        if risk is not None and risk[1] > self.predictor.config.risk_threshold:
            return interval * factor
        # Mid-recovery with the forecast confirming calm, checks tighten
        # too: the shortened dwell is otherwise quantized back up to the
        # reactive check cadence.
        if self._stack and (risk is None or risk[1] <= self.config.recover_ratio):
            return interval * factor
        return interval

    def _forecast_risk(self):
        """(name, forecast ratio) when a proactive escalation is warranted.

        Bounded two ways: the forecast SLA ratio must clear the risk
        threshold, and forecasts alone may only hold
        ``max_proactive_level`` rungs on the stack at once — past that,
        growing the ladder again takes an observed violation.  Only
        forecast-built rungs count against the budget: a deep ladder of
        observed rungs must not lock out the proactive capacity rung
        that would absorb, say, a post-recovery catch-up surge.
        """
        pcfg = self.predictor.config
        proactive_rungs = sum(
            1 for entry in self._stack if entry[-1] == "proactive"
        )
        if proactive_rungs >= pcfg.max_proactive_level:
            return None
        risk = self.predictor.sla_risk()
        if risk is None or risk[1] <= pcfg.risk_threshold:
            return None
        # Arming guard: only act on a forecast while a *fresh* observed
        # ratio is already out of the recovery band.  A calm pipeline with
        # a stale high EWMA tail must not re-escalate (it would oscillate
        # against the recovery dwell), a container that stopped reporting
        # (offline, idle) must not be judged on its frozen last sample,
        # and startup ramps must not trip the ladder.
        series = self.predictor.store.get(f"{risk[0]}.sla_ratio")
        last = series.last() if series is not None else None
        if last is None or last[1] <= self.config.recover_ratio:
            return None
        if self.env.now - last[0] > 2.0 * pcfg.sample_interval:
            return None
        return risk

    def _recovery_dwell(self) -> float:
        """The hold time before unwinding a rung.

        A forecast that agrees the pipeline will *stay* calm shortens the
        dwell — recovery accelerates when level and trend both sit below
        the recovery threshold.
        """
        dwell = self.config.dwell
        if self.predictor is None:
            return dwell
        if (self._stack and self._stack[-1][0] == "offline"
                and self._offline_backoff > 1.0):
            return dwell * self._offline_backoff
        risk = self.predictor.sla_risk()
        if risk is not None and risk[1] <= self.config.recover_ratio:
            dwell *= self.predictor.config.recovery_dwell_factor
        return dwell

    def _sla_ratio(self):
        """Worst latency / SLA ratio over online, active containers."""
        worst_name, worst_ratio = None, None
        for name, state in self.gm.snapshot().items():
            if state.offline or not state.active or state.units <= 0:
                continue
            latency = state.effective_latency()
            if latency is None:
                continue
            ratio = latency / (self.gm.sla_interval * state.sla_factor)
            if worst_ratio is None or ratio > worst_ratio:
                worst_name, worst_ratio = name, ratio
        return worst_ratio, worst_name

    # -- escalation protocol rounds --------------------------------------------------

    def _esc_observe(self, ctx) -> None:
        states = self.gm.snapshot()
        action = self._choose(states, ctx["worst"])
        if action is None:
            raise ProtocolExit({"action": None})
        if (ctx.get("proactive")
                and action["kind"] not in self.predictor.config.proactive_kinds):
            # A forecast alone never sheds work: the stride/offline rungs
            # wait for an observed violation.
            raise ProtocolExit({"action": None, "deferred": action["kind"]})
        ctx["action"] = action
        label = f"observe: {ctx['worst']} at {ctx['ratio']:.2f}x SLA"
        if ctx.get("proactive"):
            label += " (forecast)"
        ctx.round(label)

    def _choose(self, states, worst: str) -> Optional[dict]:
        """First applicable rung of the ladder, in escalation order."""
        gm = self.gm
        online = {
            name: s for name, s in states.items()
            if not s.offline and s.active and s.units > 0
        }
        worst_state = online.get(worst)
        # Spare capacity includes what the fleet arbiter would grant: in a
        # fleet, rung 1 borrows shared spares before the ladder escalates.
        free = gm.spare_capacity()
        # Rung 1: grow the bottleneck from the spare pool.
        if worst_state is not None and free > 0 and (worst_state.shortfall or 0) > 0:
            return {"kind": "increase", "name": worst,
                    "count": min(int(worst_state.shortfall), free)}
        # Rung 2: steal from an over-provisioned donor.
        donors = [
            s for name, s in online.items()
            if name != worst and (s.headroom or 0) > 0 and s.units > 1
        ]
        if worst_state is not None and donors:
            donor = max(donors, key=lambda s: (s.headroom, s.name))
            return {"kind": "steal", "donor": donor.name, "recipient": worst,
                    "count": 1}
        # Rung 3: raise the sampling stride of the worst non-essential stage.
        candidates = sorted(
            (s for s in online.values() if not s.essential),
            key=lambda s: -(s.effective_latency() or 0.0),
        )
        for state in candidates:
            stride = gm.locals[state.name].container.stride
            if stride < self.config.max_stride:
                return {"kind": "stride", "name": state.name,
                        "old": stride, "new": stride * 2}
        # Rung 4: offline the worst non-essential stage (and dependents).
        for state in candidates:
            return {"kind": "offline", "name": state.name}
        return None

    def _esc_act(self, ctx):
        action = ctx["action"]
        gm = self.gm
        try:
            # Forecast-built rungs carry a trailing marker so the proactive
            # budget counts them (and only them) while they sit on the
            # stack; both kinds unwind as no-ops, so the longer tuples
            # never reach a positional unpack.
            tag = ("proactive",) if ctx.get("proactive") else ()
            if action["kind"] == "increase":
                yield gm.increase(action["name"], action["count"])
                self._stack.append(
                    ("increase", action["name"], action["count"]) + tag
                )
            elif action["kind"] == "steal":
                freed = yield gm.steal(
                    action["donor"], action["recipient"], action["count"]
                )
                if not freed:
                    raise ProtocolAbort("steal yielded no nodes")
                self._stack.append(
                    ("steal", action["donor"], action["recipient"], len(freed)) + tag
                )
            elif action["kind"] == "stride":
                accepted = yield gm.set_stride(action["name"], action["new"])
                if not accepted:
                    raise ProtocolAbort(f"stride refused by {action['name']}")
                self._stack.append(("stride", action["name"], action["old"]))
            elif action["kind"] == "offline":
                cap = (
                    self.predictor.config.offline_backoff_cap
                    if self.predictor is not None else 1.0
                )
                if (self._last_undo_offline is not None
                        and self.env.now - self._last_undo_offline
                        <= 2.0 * self.config.dwell):
                    self._offline_backoff = min(self._offline_backoff * 2.0, cap)
                else:
                    self._offline_backoff = 1.0
                # Capture what the cascade will take down (and at what size)
                # before it runs, so recovery can rebuild upstream-first.
                import networkx as nx

                name = action["name"]
                affected = [name] + gm.dependents_of(name)
                order = [
                    c for c in nx.topological_sort(gm.dependencies)
                    if c in affected and not gm.locals[c].container.offline
                ]
                units_by = {c: gm.locals[c].container.units for c in order}
                yield gm.take_offline(name)
                self._stack.append(("offline", order, units_by))
        except SimulationError as exc:
            raise ProtocolAbort(f"escalation failed: {exc}") from exc

    def _esc_record(self, ctx) -> None:
        action = ctx["action"]
        level = self.level
        detail = {k: v for k, v in action.items() if k != "kind"}
        if ctx.get("proactive"):
            detail["proactive"] = True
            detail["forecast_ratio"] = round(ctx["ratio"], 4)
        self.trace.record(self.env.now, "brownout", action["kind"], level, **detail)
        self.telemetry.mark(
            self.env.now, f"brownout escalate L{level}: {action['kind']}"
        )
        REGISTRY.count("overload.escalations")
        if self.gm.arbiter is not None:
            REGISTRY.count(f"fleet.{self.gm.tenant}.escalations")
        ctx.result = {"action": action, "level": level}

    # -- recovery protocol rounds -----------------------------------------------------

    def _rec_observe(self, ctx) -> None:
        if not self._stack:
            raise ProtocolExit({"undone": None})
        index = len(self._stack) - 1
        if self.predictor is not None:
            index = self._choose_unwind()
        ctx["entry_index"] = index
        ctx["entry"] = self._stack[index]
        ctx.round(f"observe: unwind {ctx['entry'][0]}")

    def _choose_unwind(self) -> int:
        """Stack index recovery should undo next.

        Reactive recovery is strict LIFO.  With a forecaster attached the
        choice is demand-guided: among the *topmost* stride rung of each
        strided container, undo the one whose stage shed the most work
        inside the trailing forecast horizon — that stride is the one
        actively decimating live data, while a stride on a quiet stage
        can wait.  Same-container rungs still unwind in reverse push
        order (only the topmost per container is a candidate), ``offline``
        still unwinds first (it is always the top of the stack when
        present), and zero shed pressure everywhere degrades to LIFO.
        """
        top = len(self._stack) - 1
        if self._stack[top][0] != "stride":
            return top
        latest: dict = {}
        for i, entry in enumerate(self._stack):
            if entry[0] == "stride":
                latest[entry[1]] = i
        if len(latest) <= 1:
            return top
        return max(
            latest.values(),
            key=lambda i: (self.predictor.shed_pressure(self._stack[i][1]), i),
        )

    def _rec_act(self, ctx):
        entry = ctx["entry"]
        gm = self.gm
        try:
            if entry[0] == "stride":
                _, name, old = entry
                accepted = yield gm.set_stride(name, old)
                if not accepted:
                    raise ProtocolAbort(f"stride restore refused by {name}")
            elif entry[0] == "offline":
                _, order, units_by = entry
                # Upstream-first so each reactivated stage has somewhere
                # to send its output by the time data flows again.
                for cname in order:
                    if units_by.get(cname, 0) > 0:
                        yield gm.activate(cname, units=units_by[cname])
                    else:
                        # a standby dependent swept up by the cascade: it
                        # had no replicas to rebuild — return it to standby
                        gm.locals[cname].container.offline = False
            else:
                # increase/steal: the extra capacity stays where it is —
                # de-escalation restores function, it does not shrink.
                yield self.env.timeout(0)
        except SimulationError as exc:
            raise ProtocolAbort(f"recovery failed: {exc}") from exc
        if entry[0] == "offline":
            self._last_undo_offline = self.env.now
        self._stack.pop(ctx.get("entry_index", len(self._stack) - 1))

    def _rec_record(self, ctx) -> None:
        entry = ctx["entry"]
        level = self.level
        self.trace.record(self.env.now, "brownout", f"undo_{entry[0]}", level)
        self.telemetry.mark(
            self.env.now, f"brownout recover L{level}: undo {entry[0]}"
        )
        REGISTRY.count("overload.recoveries")
        if self.gm.arbiter is not None:
            REGISTRY.count(f"fleet.{self.gm.tenant}.recoveries")
        ctx.result = {"undone": entry[0], "level": level}
