"""Accounted load shedding: every dropped timestep is an explicit record.

When the pipeline must drop work — the driver raising its output stride
under backpressure, a container skipping timesteps under a brownout
stride, an offline prune flushing undeliverable buffers — the drop is not
silent: it becomes a :class:`ShedRecord` in the pipeline's
:class:`ShedLedger`.  The exactly-once delivery guarantee then
generalizes to *every emitted timestep is either delivered or attributed
to exactly one shed decision* — the property the
``shed_accounting`` DST invariant checks on every schedule.

The ledger is pure bookkeeping: recording schedules no simulation events,
so wiring it into a pipeline changes nothing about runs that never shed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.perf.registry import REGISTRY

#: the legal shed reasons (a decision is a (stage, reason) pair)
SHED_REASONS = (
    "backpressure_stride",  # the LAMMPS driver skipped an output step
    "container_stride",     # a container's sampling stride skipped the step
    "offline_prune",        # an offline cascade flushed/stranded the chunk
)


@dataclass(frozen=True)
class ShedRecord:
    """One shed decision applied to one timestep."""

    timestep: int
    #: the stage that took the decision ("lammps", "bonds", "csym", ...)
    stage: str
    #: one of :data:`SHED_REASONS`
    reason: str
    time: float
    #: the dropped chunk, when the decision hit a concrete chunk
    chunk_id: Optional[int] = None

    def as_dict(self) -> dict:
        return {
            "timestep": self.timestep,
            "stage": self.stage,
            "reason": self.reason,
            "time": self.time,
            "chunk_id": self.chunk_id,
        }


class ShedLedger:
    """The pipeline-wide account of every shed decision.

    ``is_delivered`` (when given) suppresses records for timesteps that
    already exited the pipeline: an offline-teardown race can leave an
    already-delivered chunk in a writer buffer, and flushing that copy
    later must not mis-attribute a *delivered* timestep to a shed
    decision.  Suppressions are counted, not hidden.
    """

    def __init__(self, is_delivered: Optional[Callable[[int], bool]] = None):
        self.records: List[ShedRecord] = []
        self.is_delivered = is_delivered
        self.suppressed = 0
        #: optional spill hook, installed by the failover layer: called as
        #: ``intercept(timestep, stage, reason, time, chunk_id)`` before a
        #: decision is recorded; returning True means the timestep was
        #: diverted to the spill path instead of shed (no record is made).
        #: None (the default) is the legacy shed-only behavior.
        self.intercept: Optional[Callable] = None
        self._steps: Set[int] = set()
        #: callables invoked as ``fn(record, ledger)`` after every
        #: accounted shed, so live consumers (the analytics series store)
        #: see shed deltas as they happen rather than at pipeline end
        self.subscribers: List[Callable] = []

    def record(
        self,
        timestep: int,
        stage: str,
        reason: str,
        time: float,
        chunk_id: Optional[int] = None,
    ) -> bool:
        """Account one shed decision; False when suppressed as delivered."""
        if reason not in SHED_REASONS:
            raise ValueError(f"unknown shed reason {reason!r}; known: {SHED_REASONS}")
        if self.is_delivered is not None and self.is_delivered(timestep):
            self.suppressed += 1
            REGISTRY.count("overload.shed_suppressed")
            return False
        if self.intercept is not None and self.intercept(
            timestep, stage, reason, time, chunk_id
        ):
            # Diverted to the spill path: the timestep's fate is "spilled",
            # owed eventual delivery via replay — not a shed record.
            return False
        record = ShedRecord(int(timestep), stage, reason, float(time), chunk_id)
        self.records.append(record)
        self._steps.add(int(timestep))
        REGISTRY.count("overload.shed")
        for fn in self.subscribers:
            fn(record, self)
        return True

    # -- accounting views ---------------------------------------------------------

    def steps(self) -> Set[int]:
        """The set of shed timesteps."""
        return set(self._steps)

    def decisions(self) -> Dict[int, Set[Tuple[str, str]]]:
        """timestep -> distinct (stage, reason) decisions recorded for it.

        Several records per timestep are legal only when they share one
        decision (e.g. a flush touching each writer's fragment of the
        step); two *distinct* decisions for one timestep is the
        double-count the ``shed_accounting`` invariant rejects.
        """
        out: Dict[int, Set[Tuple[str, str]]] = {}
        for rec in self.records:
            out.setdefault(rec.timestep, set()).add((rec.stage, rec.reason))
        return out

    def by_reason(self) -> Dict[str, int]:
        """Distinct shed timesteps per reason."""
        out: Dict[str, Set[int]] = {}
        for rec in self.records:
            out.setdefault(rec.reason, set()).add(rec.timestep)
        return {reason: len(steps) for reason, steps in sorted(out.items())}

    def shed_fraction(self, total_steps: int) -> float:
        return len(self._steps) / total_steps if total_steps else 0.0

    def as_dicts(self) -> List[dict]:
        return [rec.as_dict() for rec in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"<ShedLedger {len(self.records)} records over {len(self._steps)} "
            f"timesteps ({self.suppressed} suppressed)>"
        )
