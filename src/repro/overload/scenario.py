"""The burst-overload scenario: the wedge the overload subsystems prevent.

``build_overload_pipeline`` wires the Figure-7 stage mix with *tight*
staging buffers — a couple of timesteps of headroom at the simulation
writers, a few at each stage — so a sustained slowdown burst in the
analysis stages fills the buffers and, without flow control, blocks the
producer indefinitely (the ``StagingBuffer``-full, reader-stalled wedge
of Figure 9).  With ``managed=True`` the credit/backpressure/brownout
subsystems are on and the same burst degrades instead: the driver's
output stride rises, the brownout ladder reshapes the staging area, and
once the burst passes both unwind to a fully restored pipeline.

``overload_burst_plan`` is the matching fault-plan recipe for DST: a
seeded burst or ramp of node slowdowns across the analysis replicas.
"""

from __future__ import annotations

import numpy as np

from repro.containers.pipeline import Pipeline
from repro.containers.presets import build_overload_pipeline
from repro.faults.plan import FaultPlan
from repro.spec.build import register_fault_recipe

__all__ = ["build_overload_pipeline", "overload_burst_plan"]


@register_fault_recipe("overload_burst")
def overload_burst_plan(seed: int, pipe: Pipeline) -> FaultPlan:
    """A seeded slowdown burst (or ramp) across the analysis replicas.

    Victims are the bonds/csym replicas minus each container's first
    replica (co-hosting its local manager) and the global manager's node,
    so control traffic keeps flowing while the data plane saturates.
    """
    wl = pipe.driver.workload
    nominal = wl.total_steps * wl.output_interval
    rng = np.random.default_rng(seed if seed is not None else 0)
    gm_id = pipe.global_manager.node.node_id
    manager_ids = {m.node.node_id for m in pipe.managers.values()}
    targets = []
    for name in ("bonds", "csym"):
        container = pipe.containers.get(name)
        if container is None:
            continue
        for replica in container.replicas[1:]:
            nid = replica.node.node_id
            if nid != gm_id and nid not in manager_ids:
                targets.append(nid)
    if not targets:
        return FaultPlan(seed=seed if seed is not None else 0)
    start = float(rng.uniform(0.2, 0.35)) * nominal
    duration = float(rng.uniform(0.25, 0.4)) * nominal
    factor = float(rng.uniform(4.0, 10.0))
    if rng.integers(2):
        return FaultPlan.burst(
            seed if seed is not None else 0, targets, start, duration, factor
        )
    return FaultPlan.ramp(
        seed if seed is not None else 0, targets, start, duration, factor
    )
