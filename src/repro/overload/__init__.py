"""Overload robustness: backpressure, the brownout ladder, accounted shedding.

The three mechanisms of this package close the loop the paper's global
manager leaves open under sustained overload:

* :mod:`repro.overload.credits` + :mod:`repro.overload.backpressure` —
  credit-based flow control on DataTap links, sized from downstream
  headroom and propagated hop-by-hop until the LAMMPS driver feels it as
  an output stride instead of an unbounded block;
* :mod:`repro.overload.brownout` — the SLA brownout ladder (increase →
  steal → stride → offline) as control-plane protocols, de-escalating
  with hysteresis once latency holds below the SLA;
* :mod:`repro.overload.shed` — every dropped timestep becomes an
  explicit, invariant-checked :class:`ShedRecord`.

All of it is off by default; an unconfigured pipeline is byte-identical
to one built before this package existed.
"""

from repro.overload.backpressure import BackpressureController
from repro.overload.brownout import (
    BrownoutConfig,
    BrownoutController,
    DegradationStep,
    DegradationTrace,
    NullPolicy,
)
from repro.overload.credits import LinkCredits
from repro.overload.shed import SHED_REASONS, ShedLedger, ShedRecord

__all__ = [
    "BackpressureController",
    "BrownoutConfig",
    "BrownoutController",
    "DegradationStep",
    "DegradationTrace",
    "LinkCredits",
    "NullPolicy",
    "SHED_REASONS",
    "ShedLedger",
    "ShedRecord",
]
