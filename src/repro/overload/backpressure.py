"""End-to-end backpressure: credit sizing plus the driver stride signal.

The :class:`BackpressureController` closes the flow-control loop the
:class:`~repro.overload.credits.LinkCredits` gate exposes.  On a short
period it

* **sizes every link's credit window from downstream headroom** — free
  consumer queue slots (capacity minus occupied minus reserved) scaled by
  the consumer's *own* output-buffer occupancy.  A congested consumer
  therefore shrinks its input window even while its queue drains, which
  is what carries pressure upstream hop-by-hop: CNA congests, the
  Bonds->CNA window shrinks, Bonds' writer buffers fill, the
  Helper->Bonds window shrinks in turn, until the simulation's own
  staging buffers feel it; and

* **turns producer-side pressure into an output stride** — when the
  LAMMPS writers' staging buffers pass the high-water fraction the
  driver's ``output_stride`` doubles (each skipped step an accounted
  shed, never a silent drop), and once the buffers have stayed calm with
  no deferred dispatches for a dwell of controller ticks the stride
  halves back toward 1.

The driver thus experiences overload as *increased output stride rather
than an unbounded block* — the failure mode the paper's offline decision
exists to pre-empt — and every stride transition lands in the shared
:class:`~repro.overload.brownout.DegradationTrace`.
"""

from __future__ import annotations

from typing import Optional

from repro.simkernel import Interrupt
from repro.perf.registry import REGISTRY
from repro.overload.brownout import DegradationTrace


class BackpressureController:
    """Periodic credit-window sizing and driver-stride adaptation."""

    def __init__(
        self,
        env,
        pipe,
        interval: float = 5.0,
        hi: float = 0.8,
        lo: float = 0.3,
        max_stride: int = 8,
        dwell_ticks: int = 2,
        min_window: int = 1,
        degradation: Optional[DegradationTrace] = None,
        predictor=None,
    ):
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError(f"need 0 <= lo < hi <= 1, got lo={lo} hi={hi}")
        self.env = env
        self.pipe = pipe
        self.interval = interval
        self.hi = hi
        self.lo = lo
        self.max_stride = max_stride
        self.dwell_ticks = dwell_ticks
        self.min_window = min_window
        self.trace = (
            degradation if degradation is not None
            else getattr(pipe, "degradation", None) or DegradationTrace()
        )
        #: optional :class:`~repro.analytics.predictive.PredictiveManager`;
        #: None (the default) keeps the controller purely reactive with a
        #: byte-identical event schedule
        self.predictor = predictor
        self._calm_ticks = 0
        self._stopped = False
        self._proc = env.process(self._run(), name="backpressure")

    def stop(self) -> None:
        self._stopped = True
        if self._proc.is_alive:
            self._proc.interrupt("stop")

    # -- the control loop ----------------------------------------------------------

    def _run(self):
        while True:
            try:
                yield self.env.timeout(self.interval)
            except Interrupt:
                return
            if self._stopped:
                return
            self._resize_windows()
            self._adapt_stride()

    # -- credit-window sizing ------------------------------------------------------

    def _resize_windows(self) -> None:
        telemetry = self.pipe.telemetry
        now = self.env.now
        for container in self.pipe.containers.values():
            link = container.input_link
            if link is None or link.credits is None:
                continue
            credits = link.credits
            credits.resize(self._window_for(link, container))
            telemetry.record(
                "overload", f"credit_window.{link.name}", now, credits.window
            )
            telemetry.record(
                "overload", f"credit_pressure.{link.name}", now, credits.pressure
            )
            telemetry.record(
                "overload", f"deferred.{link.name}", now, credits.backlog
            )

    def _window_for(self, link, consumer) -> int:
        """Credit window from the consumer's admission headroom.

        Free queue slots measure how much the consumer can *accept*;
        scaling by its own output-buffer occupancy measures how much it
        can afford to — a consumer that cannot hand work downstream must
        not keep admitting it, which is the hop-by-hop propagation.
        """
        if consumer.offline or not consumer.active:
            return self.min_window
        replicas = [
            r for r in consumer.replicas
            if not r.passive and not r.retired and r.queue is not None
        ]
        if not replicas:
            return self.min_window
        free = sum(
            max(0, r.queue.capacity - r.queue.size - r.queue.reserved)
            for r in replicas
        )
        occ = max(
            (w.buffer.occupancy for r in replicas for w in r.writers.values()),
            default=0.0,
        )
        if self.predictor is not None:
            # Tighten against the forecast consumer congestion, not just
            # the observed one: credits shrink a horizon ahead of the
            # buffer actually filling.
            fc = self.predictor.forecast(f"{consumer.name}.buffer_occupancy")
            if fc is not None and fc > occ:
                occ = min(1.0, fc)
        # One credit of slack per producer keeps a drained pipeline primed.
        slack = len(link.writers)
        return max(self.min_window, int((free + slack) * (1.0 - occ)))

    # -- driver output stride ------------------------------------------------------

    def _adapt_stride(self) -> None:
        driver = self.pipe.driver
        if driver is None or not driver.writers:
            return
        occupancy = max(w.buffer.occupancy for w in driver.writers)
        self.pipe.telemetry.record(
            "overload", "sim_buffer_occupancy", self.env.now, occupancy
        )
        first_link = driver.writers[0].link
        backlog = (
            first_link.credits.backlog
            if first_link is not None and first_link.credits is not None
            else 0
        )
        stride = driver.output_stride
        forecast = (
            self.predictor.forecast("sim.buffer_occupancy")
            if self.predictor is not None else None
        )
        # Pre-emptive stride: act on the darker of observed and forecast
        # occupancy, so the stride doubles a horizon before the buffers
        # actually hit the high-water mark.  Armed only past the midpoint
        # of the hysteresis band: a healthy write/drain cycle parks below
        # it, and its sawtooth extrapolates steeply but must not trip the
        # stride.
        effective = occupancy
        armed = occupancy > 0.5 * (self.lo + self.hi)
        if forecast is not None and forecast > occupancy and armed:
            effective = min(1.0, forecast)
        if effective >= self.hi:
            self._calm_ticks = 0
            if stride < self.max_stride:
                proactive = occupancy < self.hi
                if proactive:
                    self.predictor.signal("buffer_occupancy", effective)
                self._set_stride(driver, stride * 2, "stride_up", occupancy,
                                 proactive=proactive)
        elif occupancy <= self.lo and backlog == 0:
            self._calm_ticks += 1
            # A forecast that agrees the buffers stay drained collapses
            # the calm dwell to one tick: stride unwinds sooner, shedding
            # fewer steps on the way down.  Not while the brownout ladder
            # still holds stride/offline rungs, though — steps released
            # into a decimating pipeline are shed downstream anyway, at
            # the cost of having been transported first.
            need = self.dwell_ticks
            if (forecast is not None and forecast <= self.lo
                    and not self._downstream_decimating()):
                need = 1
            if self._calm_ticks >= need and stride > 1:
                self._set_stride(driver, stride // 2, "stride_down", occupancy)
                self._calm_ticks = 0
        else:
            self._calm_ticks = 0

    def _downstream_decimating(self) -> bool:
        """True while the brownout undo stack holds stride/offline rungs."""
        brownout = getattr(self.pipe, "brownout", None)
        if brownout is None:
            return False
        return any(entry[0] in ("stride", "offline") for entry in brownout._stack)

    def _set_stride(self, driver, stride: int, action: str, occupancy: float,
                    proactive: bool = False) -> None:
        driver.output_stride = stride
        level = stride.bit_length() - 1  # 1 -> 0, 2 -> 1, 4 -> 2, 8 -> 3
        detail = {"stride": stride, "occupancy": round(occupancy, 3)}
        if proactive:
            detail["proactive"] = True
        self.trace.record(self.env.now, "backpressure", action, level, **detail)
        REGISTRY.count(f"overload.{action}")
        self.pipe.telemetry.mark(
            self.env.now, f"backpressure {action}: output 1/{stride}"
        )
