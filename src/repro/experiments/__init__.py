"""Canonical experiment runners: regenerate any paper table/figure.

Programmatic API (each returns a JSON-serializable dict)::

    from repro.experiments import run_experiment, EXPERIMENTS
    result = run_experiment("fig7")

Command line::

    python -m repro.experiments fig7          # print the series/table
    python -m repro.experiments all --json results.json
"""

from repro.experiments.figures import (
    EXPERIMENTS,
    run_dst,
    run_experiment,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_overload,
    run_table1,
    run_table2,
)

__all__ = [
    "EXPERIMENTS",
    "run_dst",
    "run_experiment",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_overload",
    "run_table1",
    "run_table2",
]
