"""Runner functions, one per table/figure of the paper's evaluation.

Each returns a plain dict of the regenerated rows/series plus the
management events, ready for JSON output or terminal rendering.  The
pytest-benchmark harness under ``benchmarks/`` asserts the qualitative
shapes; these runners are the user-facing path to the same experiments.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.simkernel import Environment
from repro.cluster import redsky
from repro.evpath import Messenger
from repro.lammps.workload import TABLE_II, WeakScalingWorkload
from repro.smartpointer.component import SMARTPOINTER_COMPONENTS
from repro.spec import PipelineSpec, StageSpec, WorkloadSpec
from repro.spec.build import build as build_spec
from repro.spec.model import BUILDER_KEYS
from repro.transactions import TransactionManager


def _build(name: str, workload: WorkloadSpec, seed: int,
           stages=None, **builder_kwargs):
    """One programmatic spec -> pipeline, for the figure micro-configs.

    Builder keys land in the spec's declarative block (validated); anything
    else is a runtime-only override forwarded to the compiler.  These specs
    deliberately leave fault tolerance off — the control-protocol figures
    measure the management plane, not the recovery ladder.
    """
    env = Environment()
    builder = {"seed": seed}
    runtime = {}
    for key, value in builder_kwargs.items():
        (builder if key in BUILDER_KEYS else runtime)[key] = value
    spec = PipelineSpec(name=name, workload=workload, stages=stages,
                        builder=builder)
    return env, build_spec(env, spec, **runtime)


def _series(pipe, scope: str, metric: str) -> List[List[float]]:
    series = pipe.telemetry.get(scope, metric)
    if series is None:
        return []
    return [[float(t), float(v)] for t, v in zip(series.times, series.values)]


def _events(pipe) -> List[List]:
    return [[float(t), label] for t, label in pipe.telemetry.events]


# -- tables -----------------------------------------------------------------------


def run_table1(**_) -> dict:
    """Table I: SmartPointer action characteristics."""
    rows = []
    for name, spec in SMARTPOINTER_COMPONENTS.items():
        rows.append({
            "component": name,
            "complexity": spec.complexity,
            "compute_models": [m.value for m in spec.compute_models],
            "dynamic_branching": spec.dynamic_branching,
        })
    return {"experiment": "table1", "rows": rows}


def run_table2(**_) -> dict:
    """Table II: weak-scaling data sizes."""
    rows = []
    for nodes in sorted(TABLE_II):
        wl = WeakScalingWorkload(sim_nodes=nodes, staging_nodes=24)
        rows.append({
            "nodes": nodes,
            "atoms": wl.natoms,
            "bytes_per_step": wl.bytes_per_step,
            "mib_per_step": round(wl.bytes_per_step / 2**20, 1),
        })
    return {"experiment": "table2", "rows": rows}


# -- microbenchmarks ---------------------------------------------------------------


def run_fig3(seed: int = 0, **_) -> dict:
    """Figure 3: the container control protocols, round by round.

    Drives INCREASE, DECREASE, SET_STRIDE, and OFFLINE against a small
    pipeline and reports the control-plane engine's structured traces:
    one row per executed round with its simulated duration and message
    count, plus the full per-protocol traces (labels, charged categories,
    abort/compensation info) for JSON output.
    """
    env, pipe = _build(
        "fig3",
        WorkloadSpec(sim_nodes=256, staging_nodes=15, spare=2, steps=8),
        seed, control_interval=10_000,
    )
    gm = pipe.global_manager

    def do(env):
        yield env.timeout(1)
        yield gm.increase("bonds", 2)
        yield env.timeout(40)
        yield gm.decrease("bonds", 1)
        yield gm.set_stride("csym", 2)
        yield gm.take_offline("csym")

    env.process(do(env))
    pipe.run(settle=120)
    rows = []
    for trace in pipe.control_trace.records:
        for rnd in trace.rounds:
            if rnd.status == "skipped":
                continue
            rows.append({
                "protocol": trace.protocol,
                "subject": trace.subject,
                "round": rnd.name,
                "status": rnd.status,
                "seconds": round(rnd.seconds, 6),
                "messages": rnd.messages,
            })
    return {
        "experiment": "fig3",
        "rows": rows,
        "traces": [t.as_dict() for t in pipe.control_trace.records],
    }


def run_fig4(sizes=(1, 2, 4, 8, 16), seed: int = 0, **_) -> dict:
    """Figure 4: time to increase container size (aprun factored out)."""
    series = []
    for size in sizes:
        stages = (
            StageSpec("helper", 4, model="tree"),
            StageSpec("bonds", 4, model="rr", upstream="helper"),
            StageSpec("csym", 3, model="rr", upstream="bonds"),
        )
        env, pipe = _build(
            "fig4",
            WorkloadSpec(sim_nodes=256, staging_nodes=13 + max(sizes),
                         spare=0, steps=4),
            seed, stages=stages, control_interval=10_000,
        )

        def do(env, pipe=pipe, size=size):
            yield env.timeout(1)
            yield pipe.global_manager.increase("bonds", size)

        env.process(do(env))
        pipe.run(settle=120)
        record = pipe.tracer.of("increase")[0]
        series.append({
            "replicas_added": size,
            "total_seconds": record.total,
            "intra_container_seconds": record.breakdown.get("intra_container", 0.0),
            "manager_seconds": record.breakdown.get("manager", 0.0),
        })
    return {"experiment": "fig4", "series": series}


def run_fig5(sizes=(1, 2, 4, 8), seed: int = 0, **_) -> dict:
    """Figure 5: time to decrease container size."""
    series = []
    for size in sizes:
        stages = (
            StageSpec("helper", 4, model="tree"),
            StageSpec("bonds", 12, model="rr", upstream="helper"),
            StageSpec("csym", 3, model="rr", upstream="bonds"),
        )
        env, pipe = _build(
            "fig5",
            WorkloadSpec(sim_nodes=256, staging_nodes=24, spare=0, steps=20),
            seed, stages=stages, control_interval=10_000,
        )

        def do(env, pipe=pipe, size=size):
            yield env.timeout(40)
            yield pipe.global_manager.decrease("bonds", size)

        env.process(do(env))
        pipe.run(settle=120)
        record = pipe.tracer.of("decrease")[0]
        series.append({
            "replicas_removed": size,
            "total_seconds": record.total,
            "writer_pause_seconds": record.breakdown.get("writer_pause", 0.0),
            "manager_seconds": record.breakdown.get("manager", 0.0),
        })
    return {"experiment": "fig5", "series": series}


def run_fig6(ratios=((64, 2), (128, 4), (256, 4), (512, 4), (1024, 8), (2048, 8)),
             repeats: int = 3, **_) -> dict:
    """Figure 6: D2T transaction time vs writer:reader ratio."""
    series = []
    for writers, readers in ratios:
        env = Environment()
        machine = redsky(env, num_nodes=writers + readers + 1)
        messenger = Messenger(env, machine.network)
        tm = TransactionManager(env, messenger, machine.nodes[-1])
        wg = tm.build_group("writers", machine.nodes[:writers], fanout=8)
        rg = tm.build_group("readers", machine.nodes[writers:writers + readers])
        outcomes = []

        def proc(env):
            for _ in range(repeats):
                out = yield tm.run([wg, rg])
                outcomes.append(out)

        env.process(proc(env))
        env.run(until=600)
        series.append({
            "writers": writers,
            "readers": readers,
            "committed": all(o.committed for o in outcomes),
            "mean_seconds": float(np.mean([o.total for o in outcomes])),
        })
    return {"experiment": "fig6", "series": series}


# -- the latency-management experiments ----------------------------------------------


def _run_pipeline(sim_nodes: int, staging_nodes: int, spare: int,
                  steps: int, seed: int, managed: bool = True,
                  stages=None, **builder_kwargs) -> dict:
    builder_kwargs.setdefault("control_interval", 30.0 if managed else 1e9)
    env, pipe = _build(
        "latency-management",
        WorkloadSpec(sim_nodes=sim_nodes, staging_nodes=staging_nodes,
                     spare=spare, steps=steps),
        seed, stages=stages, **builder_kwargs,
    )
    finished = pipe.run(settle=300)
    return {
        "finished": finished,
        "blocked_seconds": pipe.driver.total_blocked_time,
        "actions": list(pipe.global_manager.actions_taken),
        "events": _events(pipe),
        "containers": {
            name: {
                "units": c.units,
                "offline": c.offline,
                "completions": c.completions,
            }
            for name, c in pipe.containers.items()
        },
        "bonds_latency_by_step": _series(pipe, "bonds", "latency_by_step"),
        "end_to_end": _series(pipe, "pipeline", "end_to_end"),
        "bonds_buffer_occupancy": _series(pipe, "bonds", "buffer_occupancy"),
    }


def run_fig7(seed: int = 1, steps: int = 40, include_baseline: bool = True, **_) -> dict:
    """Figure 7: 256 sim + 13 staging, steal from the over-provisioned Helper."""
    result = {"experiment": "fig7",
              "managed": _run_pipeline(256, 13, 0, steps, seed, managed=True)}
    if include_baseline:
        result["unmanaged"] = _run_pipeline(256, 13, 0, steps, seed, managed=False)
    return result


def run_fig8(seed: int = 1, steps: int = 40, **_) -> dict:
    """Figure 8: 512 sim + 24 staging (4 spare), insufficient but survivable."""
    return {"experiment": "fig8",
            "managed": _run_pipeline(512, 24, 4, steps, seed, managed=True)}


def run_fig9(seed: int = 1, steps: int = 60, **_) -> dict:
    """Figure 9: 1024 sim + 24 staging (4 spare), offline cascade."""
    return {"experiment": "fig9",
            "managed": _run_pipeline(1024, 24, 4, steps, seed, managed=True)}


def run_fig10(seed: int = 1, **_) -> dict:
    """Figure 10: end-to-end latency (paper config + 640-node companion)."""
    companion_stages = (
        StageSpec("helper", 4, model="tree"),
        StageSpec("bonds", 5, model="rr", upstream="helper"),
        StageSpec("csym", 6, model="rr", upstream="bonds"),
        StageSpec("cna", 3, model="rr", upstream="bonds", standby=True),
    )
    return {
        "experiment": "fig10",
        "paper_config_1024": _run_pipeline(1024, 24, 4, 60, seed),
        "companion_640": _run_pipeline(
            640, 24, 4, 60, seed,
            stages=companion_stages, overflow_occupancy=0.25,
        ),
    }


def run_overload(seed: int = 1, steps: int = 24, include_baseline: bool = True,
                 **_) -> dict:
    """Overload: a burst slowdown saturates the analysis stages.

    Unmanaged, the producer wedges behind full staging buffers.  Managed,
    credit-based backpressure raises the driver's output stride, the
    brownout ladder sheds work under the SLA, and — once the burst passes
    — hysteresis walks every rung back: stride returns to 1, pruned
    containers re-activate, and the degradation trace closes.  Every
    timestep not delivered is attributed to exactly one shed decision.
    """
    from repro.overload.scenario import build_overload_pipeline, overload_burst_plan

    def one(managed: bool) -> dict:
        env = Environment()
        pipe = build_overload_pipeline(env, steps=steps, seed=seed, managed=managed)
        # standby stages (cna) start offline by design; only stages pruned
        # by the ladder and not re-activated count as unrestored
        initially_offline = {n for n, c in pipe.containers.items() if c.offline}
        plan = overload_burst_plan(seed, pipe)
        if plan.events:
            pipe.arm_faults(plan)
        wl = pipe.driver.workload
        # the SLA horizon: a producer still blocked past 2x the nominal
        # run length has wedged — exactly what backpressure must prevent
        horizon = 2.0 * wl.total_steps * wl.output_interval
        finished = pipe.run(settle=600, deadline=horizon)
        sla = 2.0 * wl.output_interval
        latencies = [lat for _, _, lat in pipe.end_to_end]
        delivered = {step for _, step, _ in pipe.end_to_end}
        ledger = pipe.shed_ledger
        trace = pipe.degradation
        return {
            "finished": finished,
            "blocked_seconds": pipe.driver.total_blocked_time,
            "delivered_steps": len(delivered),
            "shed_steps": len(ledger.steps()),
            "unaccounted_steps": sorted(
                set(range(wl.total_steps)) - delivered - ledger.steps()
            ),
            "sla_compliance_pct": (
                100.0 * sum(1 for lat in latencies if lat <= sla) / len(latencies)
                if latencies else 0.0
            ),
            "shed_fraction": ledger.shed_fraction(wl.total_steps),
            "shed_by_reason": ledger.by_reason(),
            "time_in_degraded_s": trace.time_in_degraded(env.now),
            "recovery_dwell_s": trace.recovery_dwell,
            "fully_restored": trace.fully_restored,
            "final_stride": pipe.driver.output_stride,
            "offline_containers": sorted(
                name for name, c in pipe.containers.items()
                if c.offline and name not in initially_offline
            ),
            "degradation_steps": trace.as_dicts(),
            "actions": list(pipe.global_manager.actions_taken),
            "events": _events(pipe),
            "containers": {
                name: {
                    "units": c.units,
                    "offline": c.offline,
                    "completions": c.completions,
                }
                for name, c in pipe.containers.items()
            },
        }

    managed = one(managed=True)
    result = {"experiment": "overload", "managed": managed}
    restored = (
        managed["finished"]
        and managed["fully_restored"]
        and managed["final_stride"] == 1
        and not managed["offline_containers"]
        and not managed["unaccounted_steps"]
    )
    if include_baseline:
        baseline = one(managed=False)
        result["unmanaged"] = baseline
        result["ok"] = restored and not baseline["finished"]
    else:
        result["ok"] = restored
    return result


def run_predictive(seed: int = 1, steps: int = 24, **_) -> dict:
    """Predictive vs reactive overload management, head to head.

    Two runs of the *same* overload scenario — identical workload, tight
    buffers, seeded burst — differing only in the spec's overload block:
    ``mode: reactive`` (the pure hysteresis controllers) against
    ``mode: predictive`` (the :mod:`repro.analytics` forecaster stack
    feeding the same controllers).  The claim under test is that acting
    on forecasts *before* violations — climbing the confirmed ladder
    faster, backing off premature recovery, unwinding the rung that is
    actually shedding — strictly reduces both time spent degraded and
    the fraction of timesteps shed.
    """
    from repro.containers.presets import (
        build_overload_pipeline, build_predictive_pipeline,
    )
    from repro.overload.scenario import overload_burst_plan

    def one(predictive: bool) -> dict:
        env = Environment()
        builder = build_predictive_pipeline if predictive else build_overload_pipeline
        pipe = builder(env, steps=steps, seed=seed)
        plan = overload_burst_plan(seed, pipe)
        if plan.events:
            pipe.arm_faults(plan)
        wl = pipe.driver.workload
        horizon = 2.0 * wl.total_steps * wl.output_interval
        finished = pipe.run(settle=600, deadline=horizon)
        ledger = pipe.shed_ledger
        trace = pipe.degradation
        delivered = {step for _, step, _ in pipe.end_to_end}
        out = {
            "finished": finished,
            "delivered_steps": len(delivered),
            "shed_steps": len(ledger.steps()),
            "shed_fraction": ledger.shed_fraction(wl.total_steps),
            "shed_by_reason": ledger.by_reason(),
            "time_in_degraded_s": trace.time_in_degraded(env.now),
            "fully_restored": trace.fully_restored,
            "final_stride": pipe.driver.output_stride,
            "degradation_steps": trace.as_dicts(),
        }
        if pipe.analytics is not None:
            out["analytics"] = pipe.analytics.as_dict()
        return out

    reactive = one(predictive=False)
    predictive = one(predictive=True)
    result = {
        "experiment": "predictive",
        "seed": seed,
        "steps": steps,
        "reactive": reactive,
        "predictive": predictive,
        "time_in_degraded_reduction_s": (
            reactive["time_in_degraded_s"] - predictive["time_in_degraded_s"]
        ),
        "shed_reduction_steps": reactive["shed_steps"] - predictive["shed_steps"],
    }
    result["ok"] = (
        reactive["finished"]
        and predictive["finished"]
        and predictive["fully_restored"]
        and predictive["final_stride"] == 1
        # the paper-level claim: strictly better on BOTH axes
        and predictive["time_in_degraded_s"] < reactive["time_in_degraded_s"]
        and predictive["shed_fraction"] < reactive["shed_fraction"]
    )
    return result


def run_failover(seed: int = 1, steps: int = 24, **_) -> dict:
    """Degrade-to-disk failover vs reactive shedding, head to head.

    Two runs of the *same* overload scenario — identical workload, tight
    buffers, seeded burst — differing only in the spec's failover block.
    The reactive baseline sheds timesteps permanently (the paper's
    behavior: pruned containers and stride skips lose data).  The failover
    pipeline spills every would-be shed to a durable segment store and
    replays it once the pressure clears: the claim under test is that the
    same overload ends with **zero** shed timesteps and 100% eventual
    delivery, at the cost of a bounded catch-up delay.  A third run checks
    determinism: the spill ledger and handover records must be identical
    across reruns of the same seed.
    """
    from repro.containers.presets import (
        build_failover_pipeline, build_overload_pipeline,
    )
    from repro.overload.scenario import overload_burst_plan

    def one(failover: bool) -> dict:
        env = Environment()
        builder = build_failover_pipeline if failover else build_overload_pipeline
        pipe = builder(env, steps=steps, seed=seed)
        plan = overload_burst_plan(seed, pipe)
        if plan.events:
            pipe.arm_faults(plan)
        wl = pipe.driver.workload
        horizon = 2.0 * wl.total_steps * wl.output_interval
        finished = pipe.run(settle=600, deadline=horizon)
        run_end = env.now
        spill = pipe.spill_ledger
        if spill is not None:
            # Catch-up: hold the run open (bounded) until the replay
            # protocol settles every spilled segment.
            drain_deadline = env.now + 20.0 * wl.output_interval
            while spill.pending() and env.now < drain_deadline:
                env.run(until=min(env.now + 30.0, drain_deadline))
        ledger = pipe.shed_ledger
        trace = pipe.degradation
        delivered = {step for _, step, _ in pipe.end_to_end}
        out = {
            "finished": finished,
            "delivered_steps": len(delivered),
            "eventual_delivery_pct": 100.0 * len(delivered) / wl.total_steps,
            "shed_steps": len(ledger.steps()),
            "shed_fraction": ledger.shed_fraction(wl.total_steps),
            "shed_by_reason": ledger.by_reason(),
            "time_in_degraded_s": trace.time_in_degraded(env.now),
            "fully_restored": trace.fully_restored,
            "final_stride": pipe.driver.output_stride,
        }
        if spill is not None:
            replay_lat = [
                lat for (_, step, lat), (_, sink, _s) in
                zip(pipe.end_to_end, pipe.exit_log) if sink == "replay"
            ]
            out.update({
                "spilled_steps": len(spill),
                "spill_pending": len(spill.pending()),
                "spill_by_status": spill.by_status(),
                "spill_by_reason": spill.by_reason(),
                "catchup_s": env.now - run_end,
                "max_replay_latency_s": max(replay_lat, default=0.0),
                "handovers": list(pipe.failover.handovers),
                "spill_ledger": spill.as_dicts(),
                "engine_transitions": {
                    name: [list(t) for t in sw.transitions]
                    for name, sw in pipe.failover.switches.items()
                },
            })
        return out

    reactive = one(failover=False)
    fo = one(failover=True)
    replica = one(failover=True)

    def canon(run: dict) -> tuple:
        # chunk ids ride a process-global counter, so they differ between
        # in-process reruns; everything schedule-meaningful must not.
        ledger = [
            {k: v for k, v in rec.items() if k != "chunk_id"}
            for rec in run["spill_ledger"]
        ]
        return ledger, run["handovers"], run["engine_transitions"]

    replay_identical = canon(fo) == canon(replica)
    result = {
        "experiment": "failover",
        "seed": seed,
        "steps": steps,
        "reactive": reactive,
        "failover": fo,
        "replay_identical": replay_identical,
        "shed_elimination_steps": reactive["shed_steps"] - fo["shed_steps"],
    }
    result["ok"] = (
        reactive["finished"]
        and fo["finished"]
        # the baseline really does lose data under this burst...
        and reactive["shed_fraction"] > 0.0
        # ...and failover turns every loss into bounded-latency delivery
        and fo["shed_fraction"] == 0.0
        and fo["eventual_delivery_pct"] == 100.0
        and fo["spill_pending"] == 0
        and replay_identical
    )
    return result


def run_dst(seed: int = 1, seeds: int = 8, scenario: str = "smoke",
            tenants: int = 4, spec: str = None, **_) -> dict:
    """Deterministic simulation testing: sweep schedule seeds over the smoke
    scenario, checking every registered invariant on every interleaving.

    Stops at the first violating seed; the failure row then carries the
    violation list, the event log, the greedily shrunk minimal fault plan,
    and the one-line repro command.  ``ok`` is False exactly when a
    violation was found (the CLI turns that into a nonzero exit).

    ``--scenario fleet`` sweeps the multi-tenant fleet scenario instead:
    ``tenants`` pipelines on one machine under the fleet arbiter, with the
    two fleet-wide oracles (cross-tenant node leaks, quota conservation)
    active alongside the standard catalogue.

    ``--scenario fuzz`` sweeps *generated topologies*: each seed draws a
    random-but-valid :class:`~repro.spec.model.PipelineSpec` (and its
    chaos plan) from the seeded generator, so the oracles exercise shapes
    nobody hand-wrote.  ``--spec FILE`` sweeps a pipeline loaded from a
    YAML spec file instead.
    """
    from repro.dst import DSTScenario, explore, shrink
    from repro.dst.scenario import plan_for

    if spec is not None:
        from repro.spec.fuzz import SpecFileScenario

        sc = SpecFileScenario(path=str(spec))
    elif scenario == "fuzz":
        from repro.spec.fuzz import FuzzedTopologyScenario

        sc = FuzzedTopologyScenario()
    elif scenario == "fleet":
        from repro.fleet import FleetDSTScenario

        sc = FleetDSTScenario(tenants=tenants)
    else:
        sc = DSTScenario(name=scenario, preset=scenario, plan=plan_for(scenario))
    exploration = explore(sc, range(seed, seed + max(1, seeds)))
    failing = None if exploration.failure is None else exploration.failure.seed
    rows = [
        {"seed": s, "ok": s != failing, "scenario": sc.name}
        for s in exploration.seeds_run
    ]
    result = {
        "experiment": "dst",
        "ok": exploration.ok,
        "rows": rows,
        "failure": None,
        "shrunk": None,
    }
    if exploration.failure is not None:
        failure = exploration.failure
        result["failure"] = failure.as_dict()
        pipe_for_plan = sc.build(failure.seed)
        plan = sc.resolve_plan(failure.seed, pipe_for_plan)
        if plan is not None and plan.events:
            result["shrunk"] = shrink(sc, failure.seed, plan).as_dict()
    return result


def run_fleet(seed: int = 1, tenants: int = 6, steps: int = 6, **_) -> dict:
    """Multi-tenant fleet: N pipelines, one machine, one shared spare pool.

    Builds the canonical mixed slate (tenant ``t00`` = tight-buffer
    overload preset + seeded burst, lowest priority; the rest alternate
    fig7/S3D), arms the merged machine-wide fault plan, and runs everything
    in one simulation.  The acceptance property: every tenant finishes and
    accounts for every timestep, t00 browns out (degradation steps > 0),
    and *no other tenant* misses its SLA — tenant isolation under the
    shared arbiter.
    """
    from repro.fleet import build_mixed_fleet, fleet_plan
    from repro.simkernel import shuffle

    env = Environment(tie_breaker=shuffle(seed))
    fleet = build_mixed_fleet(env, tenants=tenants, steps=steps)
    plan = fleet_plan(seed, fleet)
    if plan.events:
        fleet.arm_faults(plan)
    finished = fleet.run(settle=240.0)
    rows = fleet.summaries()
    unaccounted = {}
    for name, tenant in sorted(fleet.tenants.items()):
        wl = tenant.pipe.driver.workload
        delivered = {s for _, s, _ in tenant.pipe.end_to_end}
        missing = (set(range(wl.total_steps)) - delivered
                   - tenant.pipe.shed_ledger.steps())
        if missing:
            unaccounted[name] = sorted(missing)
    victims = [t for t in fleet.tenants.values() if t.spec.overload_burst]
    browned_out = bool(victims) and all(t.degradations() > 0 for t in victims)
    others_met_sla = all(
        t.sla_compliance() == 1.0
        for t in fleet.tenants.values() if not t.spec.overload_burst
    )
    arbiter = fleet.arbiter
    actions: Dict[str, int] = {}
    for _, action, _, count in arbiter.trace:
        actions[action] = actions.get(action, 0) + count
    return {
        "experiment": "fleet",
        "tenants": tenants,
        "steps": steps,
        "ok": (all(finished.values()) and not unaccounted and browned_out
               and others_met_sla and not arbiter.violations),
        "rows": rows,
        "unaccounted": unaccounted,
        "overloaded_browned_out": browned_out,
        "others_met_sla": others_met_sla,
        "events_processed": int(getattr(env, "events_processed", 0)),
        "arbiter": {
            "actions": actions,
            "trace": [[float(t), a, n, int(c)] for t, a, n, c in arbiter.trace],
            "violations": list(arbiter.violations),
        },
        "plan_signature": plan.signature(),
    }


def run_specs(spec: str = None, **_) -> dict:
    """Validate the pipeline-spec library: parse, validate, round-trip.

    Checks every bundled spec (or one ``--spec`` file) three ways: it
    parses, the validation pass accepts it, and the YAML round-trip is
    loss free (``from_yaml(to_yaml(s)) == s``).  ``ok`` is False on the
    first spec failing any of the three — the CI spec-validation gate.
    """
    from repro.spec.build import bundled_spec_names, bundled_spec_path

    targets = (
        [("file", str(spec))] if spec is not None
        else [(n, str(bundled_spec_path(n))) for n in bundled_spec_names()]
    )
    rows = []
    for name, path in targets:
        row = {"spec": name, "path": path, "stages": "-", "round_trip": False,
               "ok": False, "error": ""}
        try:
            loaded = PipelineSpec.load(path).validate()
            row["stages"] = ("default" if loaded.stages is None
                             else len(loaded.stages))
            row["round_trip"] = PipelineSpec.from_yaml(loaded.to_yaml()) == loaded
            row["ok"] = row["round_trip"]
        except Exception as exc:
            row["error"] = str(exc)
        rows.append(row)
    return {"experiment": "specs", "ok": all(r["ok"] for r in rows),
            "rows": rows}


EXPERIMENTS: Dict[str, callable] = {
    "table1": run_table1,
    "table2": run_table2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "overload": run_overload,
    "predictive": run_predictive,
    "failover": run_failover,
    "dst": run_dst,
    "fleet": run_fleet,
    "specs": run_specs,
}


def run_experiment(name: str, **kwargs) -> dict:
    """Run one experiment by id (``table1``..``fig10``)."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(**kwargs)
