"""Command-line experiment runner.

Usage::

    python -m repro.experiments fig7
    python -m repro.experiments table2 fig4 --json out.json
    python -m repro.experiments all --seed 3
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.report import render


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"experiment ids ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    parser.add_argument("--seeds", type=int, default=None,
                        help="number of schedule seeds to sweep (dst experiment)")
    parser.add_argument("--scenario", default=None,
                        help="pipeline preset for the dst experiment "
                             "(smoke, overload, fleet, ...)")
    parser.add_argument("--tenants", type=int, default=None,
                        help="tenant count for the fleet experiment and the "
                             "fleet dst scenario")
    parser.add_argument("--spec", metavar="PATH", default=None,
                        help="pipeline spec YAML: the dst experiment sweeps "
                             "it, the specs experiment validates it")
    parser.add_argument("--list-presets", action="store_true",
                        help="list the bundled pipeline specs and exit")
    parser.add_argument("--json", metavar="PATH",
                        help="also write all results to a JSON file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress terminal rendering")
    args = parser.parse_args(argv)

    if args.list_presets:
        from repro.spec.build import bundled_spec_names, load_preset

        for name in bundled_spec_names():
            spec = load_preset(name)
            wl = spec.workload
            shape = ("default stage mix" if spec.stages is None
                     else f"{len(spec.stages)} stages")
            print(f"{name}: {wl.sim_nodes} sim + {wl.staging_nodes} staging "
                  f"({wl.spare} spare), {wl.steps} steps, {shape}")
        return 0

    names = list(args.experiments)
    if not names:
        parser.error("no experiments given")
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    kwargs = {"seed": args.seed}
    if args.seeds is not None:
        kwargs["seeds"] = args.seeds
    if args.scenario is not None:
        kwargs["scenario"] = args.scenario
    if args.tenants is not None:
        kwargs["tenants"] = args.tenants
    if args.spec is not None:
        kwargs["spec"] = args.spec

    results = {}
    for name in names:
        result = run_experiment(name, **kwargs)
        results[name] = result
        if not args.quiet:
            print(render(result))
            print()

    # Write the JSON before deciding the exit code: a failing dst sweep must
    # still leave its repro artifact on disk for CI to upload.
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2)
        if not args.quiet:
            print(f"wrote {args.json}")

    failed = [n for n, r in results.items() if r.get("ok") is False]
    if failed and not args.quiet:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
