"""Terminal rendering for experiment results: tables and ASCII sparklines."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """An 8-level unicode sparkline, resampled to ``width`` columns."""
    values = list(values)
    if not values:
        return ""
    if len(values) > width:
        # Simple decimation keeping extrema visible per bucket.
        bucket = len(values) / width
        resampled = []
        for i in range(width):
            segment = values[int(i * bucket): max(int((i + 1) * bucket), int(i * bucket) + 1)]
            resampled.append(max(segment))
        values = resampled
    lo, hi = min(values), max(values)
    span = hi - lo
    # Treat numerically flat series as flat (float jitter otherwise renders
    # as full-scale noise).
    if span <= 1e-6 * max(abs(hi), abs(lo), 1.0):
        return _SPARK[0] * len(values)
    return "".join(_SPARK[int((v - lo) / span * (len(_SPARK) - 1))] for v in values)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render(result: Dict[str, Any]) -> str:
    """Human-readable rendering of a runner result dict."""
    name = result.get("experiment", "?")
    out: List[str] = [f"== {name} =="]
    if "rows" in result:
        rows = result["rows"]
        headers = list(rows[0].keys())
        out.append(format_table(headers, [[r[h] for h in headers] for r in rows]))
        return "\n".join(out)
    if "series" in result:
        series = result["series"]
        headers = list(series[0].keys())
        out.append(format_table(headers, [[r[h] for h in headers] for r in series]))
        return "\n".join(out)
    # head-to-head arm summaries without event traces (e.g. failover):
    # one row per arm, then the run-level verdict fields
    arms = {
        key: value for key, value in result.items()
        if isinstance(value, dict) and "shed_fraction" in value
        and "events" not in value
    }
    if arms:
        metrics = ("finished", "delivered", "shed_fraction",
                   "eventual_delivery_pct", "spilled_steps", "spill_pending",
                   "handovers", "catchup_s")
        headers = ["arm"] + [
            m for m in metrics if any(m in v for v in arms.values())
        ]
        rows = []
        for key, value in arms.items():
            row: List[Any] = [key]
            for metric in headers[1:]:
                cell = value.get(metric, "-")
                if isinstance(cell, list):
                    cell = len(cell)
                elif isinstance(cell, float):
                    cell = f"{cell:.3f}"
                row.append(cell)
            rows.append(row)
        out.append(format_table(headers, rows))
        for key in ("ok", "replay_identical", "shed_elimination_steps"):
            if key in result:
                out.append(f"{key}: {result[key]}")
        return "\n".join(out)
    for key, value in result.items():
        if key == "experiment":
            continue
        if isinstance(value, dict) and "events" in value:
            out.append(f"\n-- {key} --")
            out.append(f"finished={value['finished']}  "
                       f"blocked={value['blocked_seconds']:.1f}s")
            for t, label in value["events"]:
                out.append(f"  t={t:8.1f}s  {label}")
            for metric in ("bonds_latency_by_step", "end_to_end"):
                points = value.get(metric) or []
                if points:
                    values = [v for _, v in points]
                    out.append(f"  {metric}: {sparkline(values)}  "
                               f"[{min(values):.0f} .. {max(values):.0f}]s")
            containers = value.get("containers", {})
            rows = [[c, info["units"], info["offline"], info["completions"]]
                    for c, info in containers.items()]
            out.append(format_table(["container", "units", "offline", "done"], rows))
    return "\n".join(out)
