"""repro: a reproduction of "I/O Containers: Managing the Data Analytics and
Visualization Pipelines of High End Codes" (Dayal et al., IPDPS 2013).

The package builds, from scratch, every system the paper's evaluation rests
on -- a deterministic discrete-event simulation kernel, a Cray-like machine
model, EVPath-style messaging and overlays, the DataTap/DataStager staged
transport, an ADIOS-like I/O layer, a miniature LAMMPS with real crack
physics, the SmartPointer analytics kernels -- and, on top of them, the
paper's contribution: managed I/O containers with local/global managers,
latency-driven resource trading, and offline fallback.

Quickstart::

    from repro import Environment, PipelineBuilder, WeakScalingWorkload

    env = Environment()
    workload = WeakScalingWorkload(sim_nodes=256, staging_nodes=13, total_steps=30)
    pipe = PipelineBuilder(env, workload).build()
    pipe.run()
    print(pipe.global_manager.actions_taken)

or, declaratively, from a validated pipeline spec (see ``repro.spec``)::

    from repro.simkernel import Environment
    from repro.spec import load_preset
    from repro.spec.build import build

    env = Environment()
    pipe = build(env, load_preset("fig7"))
    pipe.run()
"""

from repro.simkernel import Environment
from repro.data import DataChunk
from repro.cluster import BatchScheduler, Machine, franklin, redsky
from repro.evpath import Message, MessageType, Messenger, OverlayTree
from repro.datatap import DataTapLink, DataTapReader, DataTapWriter, PullScheduler
from repro.adios import AdiosStream, Group, ParallelFileSystem, VarInfo, read_bp, write_bp
from repro.lammps import (
    CrackExperiment,
    LammpsDriver,
    MDSystem,
    VelocityVerlet,
    WeakScalingWorkload,
)
from repro.smartpointer import (
    SMARTPOINTER_COMPONENTS,
    SMARTPOINTER_COSTS,
    bonds_adjacency,
    central_symmetry,
    common_neighbor_analysis,
    helper_merge,
)
from repro.containers import (
    Container,
    GlobalManager,
    LatencyPolicy,
    LocalManager,
    Pipeline,
    PipelineBuilder,
    StageConfig,
)
from repro.transactions import TransactionManager

__version__ = "0.1.0"

__all__ = [
    "AdiosStream",
    "BatchScheduler",
    "Container",
    "CrackExperiment",
    "DataChunk",
    "DataTapLink",
    "DataTapReader",
    "DataTapWriter",
    "Environment",
    "GlobalManager",
    "Group",
    "LammpsDriver",
    "LatencyPolicy",
    "LocalManager",
    "MDSystem",
    "Machine",
    "Message",
    "MessageType",
    "Messenger",
    "OverlayTree",
    "ParallelFileSystem",
    "Pipeline",
    "PipelineBuilder",
    "PullScheduler",
    "SMARTPOINTER_COMPONENTS",
    "SMARTPOINTER_COSTS",
    "StageConfig",
    "TransactionManager",
    "VarInfo",
    "VelocityVerlet",
    "WeakScalingWorkload",
    "bonds_adjacency",
    "central_symmetry",
    "common_neighbor_analysis",
    "franklin",
    "helper_merge",
    "read_bp",
    "redsky",
    "write_bp",
]
