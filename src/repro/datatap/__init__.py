"""DataTap / DataStager: asynchronous, pull-based staged data movement.

This reproduces the transport the paper layers under ADIOS (Section III-C):

* the **writer** stores each output chunk in a node-local staging buffer and
  pushes only *metadata* to the reader, returning immediately — writes are
  asynchronous, so the producer moves on to its next timestep;
* the **reader** pulls the data with an RDMA GET *when it is ready* (i.e.
  when its input queue has room), through a **pull scheduler** that bounds
  concurrent pulls to keep interconnect contention from slowing the
  simulation (the DataStager result);
* writers are **pausable**: the container decrease protocol pauses upstream
  writers so no timestep is lost while downstream replicas are torn down
  (the dominant cost in Figure 5).
"""

from repro.datatap.buffer import BufferFull, StagingBuffer
from repro.datatap.scheduling import PullScheduler
from repro.datatap.writer import DataTapWriter
from repro.datatap.reader import DataTapReader
from repro.datatap.link import DataTapLink

__all__ = [
    "BufferFull",
    "DataTapLink",
    "DataTapReader",
    "DataTapWriter",
    "PullScheduler",
    "StagingBuffer",
]
