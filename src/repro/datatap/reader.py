"""DataTap readers: pull-when-ready consumers."""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.simkernel import Environment, Event, Interrupt, Store
from repro.cluster.node import Node
from repro.evpath.channel import Messenger
from repro.evpath.messages import Message, MessageType

if TYPE_CHECKING:
    from repro.datatap.link import DataTapLink

#: Wire size of the pull-completion notification back to the writer.
PULL_DONE_BYTES = 128


class DataTapReader:
    """The consumer half of a DataTap link.

    A reader loops: receive a metadata push, *reserve* room in its output
    queue, get a slot from the pull scheduler, RDMA-GET the chunk from the
    writer's buffer, notify the writer (freeing its buffer), and deposit the
    chunk.  Reserving queue space before moving any data is what makes the
    transport "controlled data movement [that does] not overwhelm receivers"
    (Section III).
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        node: Node,
        name: str,
        out_queue: Store,
        scheduler=None,
    ):
        self.env = env
        self.messenger = messenger
        self.node = node
        self.name = name
        self.out_queue = out_queue
        self.scheduler = scheduler
        self.link: Optional["DataTapLink"] = None
        self.endpoint = messenger.endpoint(node, name)
        self._proc = env.process(self._run(), name=f"dtreader:{name}")
        self._inflight = 0
        self._pull_proc = None
        self._current_meta: Optional[Message] = None
        self._drained: Optional[Event] = None
        #: metadata whose pulls were cancelled by teardown (chunks remain in
        #: the writer's buffer)
        self.cancelled_meta: List[Message] = []
        self.stopped = False
        #: monitoring
        self.chunks_pulled = 0
        self.bytes_pulled = 0.0

    # -- main loop -------------------------------------------------------------------

    def _run(self):
        while True:
            try:
                meta = yield self.endpoint.recv(MessageType.DATA_METADATA)
            except Interrupt:
                return
            self._inflight += 1
            self._current_meta = meta
            self._pull_proc = self.env.process(self._pull(meta), name=f"pull:{self.name}")
            try:
                yield self._pull_proc
            except Interrupt:
                # Teardown raced the pull: cancel it.  The chunk stays in the
                # writer's buffer; stop() hands the metadata back to the link.
                if self._pull_proc.is_alive:
                    self._pull_proc.interrupt("teardown")
                return
            finally:
                self._current_meta = None
                self._inflight -= 1
                if self._inflight == 0 and self._drained is not None:
                    self._drained.succeed()
                    self._drained = None

    def _pull(self, meta: Message):
        info = meta.payload
        writer = self.link.writer_by_name(info["writer"])
        # Back-pressure: claim queue space *before* moving any data.
        if info["chunk_id"] not in writer.buffer:
            # Already pulled through a re-dispatched copy of this metadata.
            yield self.env.timeout(0)
            return
        res_event = self.out_queue.reserve()
        token = None
        try:
            yield res_event
            if self.scheduler is not None:
                token = yield self.scheduler.admit()
            try:
                yield self.messenger.network.rdma_get(
                    self.node, writer.node, info["nbytes"]
                )
            finally:
                if self.scheduler is not None and token is not None:
                    self.scheduler.release(token)
        except Interrupt:
            self.out_queue.cancel_reservation(res_event)
            self.cancelled_meta.append(meta)
            return
        if info["chunk_id"] not in writer.buffer:
            self.out_queue.cancel_reservation(res_event)
            return
        chunk = writer.buffer.get(info["chunk_id"])
        writer.on_pull_complete(info["chunk_id"])
        # Completion notification traffic (fire-and-forget control message).
        self.messenger.network.transfer(self.node, writer.node, PULL_DONE_BYTES)
        self.chunks_pulled += 1
        self.bytes_pulled += info["nbytes"]
        self.out_queue.fulfill(res_event, chunk)

    # -- teardown ---------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    def drain(self):
        """Process: fires once no pull is in flight.

        Call only while upstream writers are paused, otherwise new metadata
        can arrive and restart activity after the drain fires.
        """
        return self.env.process(self._drain(), name=f"drain:{self.name}")

    def _drain(self):
        if self._inflight > 0:
            self._drained = Event(self.env)
            yield self._drained
        else:
            yield self.env.timeout(0)
        return True

    def stop(self) -> List[Message]:
        """Stop the loop; returns metadata messages left undelivered.

        Call while upstream writers are paused.  Undelivered metadata —
        inbox backlog plus the metadata of any pull cancelled mid-flight —
        is returned so the link can re-dispatch it to surviving readers (no
        timestep lost); the corresponding chunks remain safely in the
        writers' buffers.
        """
        self.stopped = True
        pending = [
            m for m in self.endpoint._inbox.items
            if m.mtype is MessageType.DATA_METADATA
        ]
        self.endpoint._inbox.items = [
            m for m in self.endpoint._inbox.items
            if m.mtype is not MessageType.DATA_METADATA
        ]
        if self._current_meta is not None:
            pending.insert(0, self._current_meta)
        if self._proc.is_alive:
            self._proc.interrupt("stop")
        self.messenger.unregister(self.name)
        return pending

    def __repr__(self) -> str:
        return f"<DataTapReader {self.name!r} pulled={self.chunks_pulled}>"
