"""DataTap readers: pull-when-ready consumers."""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.simkernel import Environment, Event, Interrupt, Store
from repro.simkernel.errors import FaultError, SimulationError
from repro.cluster.node import Node
from repro.evpath.channel import Messenger
from repro.evpath.messages import Message, MessageType
from repro.perf.registry import REGISTRY

_DUP_DROPPED = REGISTRY.handle("datatap.dup_dropped")

if TYPE_CHECKING:
    from repro.datatap.link import DataTapLink

#: Wire size of the pull-completion notification back to the writer.
PULL_DONE_BYTES = 128


class DataTapReader:
    """The consumer half of a DataTap link.

    A reader loops: receive a metadata push, *reserve* room in its output
    queue, get a slot from the pull scheduler, RDMA-GET the chunk from the
    writer's buffer, notify the writer (freeing its buffer), and deposit the
    chunk.  Reserving queue space before moving any data is what makes the
    transport "controlled data movement [that does] not overwhelm receivers"
    (Section III).
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        node: Node,
        name: str,
        out_queue: Store,
        scheduler=None,
    ):
        self.env = env
        self.messenger = messenger
        self.node = node
        self.name = name
        self.out_queue = out_queue
        self.scheduler = scheduler
        self.link: Optional["DataTapLink"] = None
        self.endpoint = messenger.endpoint(node, name)
        self._proc = env.process(self._run(), name=f"dtreader:{name}")
        self._inflight = 0
        self._pull_proc = None
        self._current_meta: Optional[Message] = None
        self._drained: Optional[Event] = None
        #: metadata whose pulls were cancelled by teardown (chunks remain in
        #: the writer's buffer)
        self.cancelled_meta: List[Message] = []
        self.stopped = False
        #: monitoring
        self.chunks_pulled = 0
        self.bytes_pulled = 0.0

    # -- main loop -------------------------------------------------------------------

    def _run(self):
        while True:
            try:
                meta = yield self.endpoint.recv(MessageType.DATA_METADATA)
            except Interrupt:
                return
            self._inflight += 1
            self._current_meta = meta
            self._pull_proc = self.env.process(self._pull(meta), name=("pull:{}", self.name))
            try:
                yield self._pull_proc
            except Interrupt:
                # Teardown raced the pull: cancel it.  The chunk stays in the
                # writer's buffer; stop() hands the metadata back to the link.
                if self._pull_proc.is_alive:
                    self._pull_proc.interrupt("teardown")
                return
            finally:
                self._current_meta = None
                self._inflight -= 1
                if self._inflight == 0 and self._drained is not None:
                    self._drained.succeed()
                    self._drained = None

    def _pull(self, meta: Message):
        info = meta.payload
        try:
            writer = self.link.writer_by_name(info["writer"])
        except SimulationError:
            # Writer torn down (e.g. its node crashed and was replaced)
            # after this metadata was pushed; the chunk is unreachable.
            REGISTRY.count("datatap.orphaned_meta")
            self._release_credit(info["chunk_id"])
            yield self.env.timeout(0)
            return
        # Back-pressure: claim queue space *before* moving any data.
        if not writer.needs_delivery(info["chunk_id"]):
            # Already pulled — through a re-dispatched or redelivered copy of
            # this metadata.  Idempotent redelivery: drop the duplicate.
            self._drop_duplicate()
            self._release_credit(info["chunk_id"])
            yield self.env.timeout(0)
            return
        res_event = self.out_queue.reserve()
        token = None
        try:
            yield res_event
            if self.scheduler is not None:
                token = yield self.scheduler.admit()
            try:
                done = yield from self._pull_with_retry(writer, info)
            finally:
                if self.scheduler is not None and token is not None:
                    self.scheduler.release(token)
            if not done:
                # Unrecoverable transfer faults (writer node dead): give up.
                self.out_queue.cancel_reservation(res_event)
                REGISTRY.count("datatap.pull_failed")
                self._release_credit(info["chunk_id"])
                return
        except Interrupt:
            # Teardown cancel: the metadata is handed back for re-dispatch,
            # so the chunk KEEPS its credit — the eventual pull releases it.
            self.out_queue.cancel_reservation(res_event)
            self.cancelled_meta.append(meta)
            return
        if not writer.needs_delivery(info["chunk_id"]) or (
            self.link is not None and info["chunk_id"] in self.link.delivered
        ):
            # A concurrent pull of the same chunk won the race.
            self.out_queue.cancel_reservation(res_event)
            self._drop_duplicate()
            self._release_credit(info["chunk_id"])
            return
        chunk = writer.buffer.get(info["chunk_id"])
        chunk.sources = [(writer.name, info["chunk_id"])]
        writer.on_pull_complete(info["chunk_id"])
        if self.link is not None:
            self.link.delivered.add(info["chunk_id"])
        # Completion notification traffic (fire-and-forget control message).
        self.messenger.network.transfer(self.node, writer.node, PULL_DONE_BYTES)
        self.chunks_pulled += 1
        self.bytes_pulled += info["nbytes"]
        self.out_queue.fulfill(res_event, chunk)
        self._release_credit(info["chunk_id"])

    def _release_credit(self, chunk_id: int) -> None:
        """Return the chunk's flow-control credit at a terminal pull outcome."""
        if self.link is not None and self.link.credits is not None:
            self.link.credits.release(chunk_id)

    def _pull_with_retry(self, writer, info):
        """RDMA-GET with exponential backoff; False when retries exhaust."""
        delays = iter(self.messenger.retry.delays())
        while True:
            try:
                yield self.messenger.network.rdma_get(
                    self.node, writer.node, info["nbytes"]
                )
                return True
            except FaultError:
                try:
                    delay = next(delays)
                except StopIteration:
                    return False
                self.messenger.retries += 1
                REGISTRY.count("evpath.retries")
                yield self.env.timeout(delay)

    def _drop_duplicate(self) -> None:
        if self.link is not None:
            self.link.dup_dropped += 1
        _DUP_DROPPED.add()

    # -- teardown ---------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    def drain(self):
        """Process: fires once no pull is in flight.

        Call only while upstream writers are paused, otherwise new metadata
        can arrive and restart activity after the drain fires.
        """
        return self.env.process(self._drain(), name=f"drain:{self.name}")

    def _drain(self):
        if self._inflight > 0:
            self._drained = Event(self.env)
            yield self._drained
        else:
            yield self.env.timeout(0)
        return True

    def stop(self) -> List[Message]:
        """Stop the loop; returns metadata messages left undelivered.

        Call while upstream writers are paused.  Undelivered metadata —
        inbox backlog, the metadata of any pull cancelled mid-flight (both
        by this stop and by an earlier crash) — is returned so the link can
        re-dispatch it to surviving readers (no timestep lost); the
        corresponding chunks remain safely in the writers' buffers.
        """
        self.stopped = True
        pending = [
            m for m in self.endpoint._inbox.items
            if m.mtype is MessageType.DATA_METADATA
        ]
        self.endpoint._inbox.items = [
            m for m in self.endpoint._inbox.items
            if m.mtype is not MessageType.DATA_METADATA
        ]
        if self._current_meta is not None:
            pending.insert(0, self._current_meta)
        cancelled, self.cancelled_meta = self.cancelled_meta, []
        for meta in cancelled:
            if meta not in pending:
                pending.append(meta)
        if self._proc.is_alive:
            self._proc.interrupt("stop")
        self.messenger.unregister(self.name)
        return pending

    def crash(self) -> None:
        """Violent death (node crash): kill the loop, lose nothing gracefully.

        Unlike :meth:`stop` the endpoint stays registered — a crashed node
        still has an address, it just drops traffic — and no metadata is
        handed back here: recovery re-pushes from the writers' retained
        buffers instead (:meth:`DataTapWriter.redeliver_unacked`), and the
        REPLACE protocol's eventual :meth:`stop` returns the backlog.
        """
        self.stopped = True
        if self._proc.is_alive:
            self._proc.interrupt("crash")

    def __repr__(self) -> str:
        return f"<DataTapReader {self.name!r} pulled={self.chunks_pulled}>"
