"""Writer-side staging buffers.

A :class:`StagingBuffer` holds chunks on the producer's node between the
asynchronous write and the reader's pull.  It reserves real node memory, so a
stalled reader eventually exhausts the buffer and blocks the producer — the
failure mode whose *prediction* triggers the offline decision in Figure 9.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.simkernel import Environment, Event
from repro.simkernel.errors import SimulationError
from repro.cluster.node import Node
from repro.data import DataChunk
from repro.perf.registry import REGISTRY

# Pre-resolved counter handles: these fire once per chunk on the data
# path, so skip the per-call dict lookup of REGISTRY.count.
_INSERTS = REGISTRY.handle("datatap.buffer_inserts")
_EVICTIONS = REGISTRY.handle("datatap.buffer_evictions")


class BufferFull(SimulationError):
    """Raised on non-blocking insert into a full buffer."""


class StagingBuffer:
    """A bounded, memory-reserving chunk buffer on one node.

    Parameters
    ----------
    capacity_bytes:
        Maximum buffered payload.  Defaults to half the node's free memory at
        construction, matching the sizing rule used by DataTap deployments.
    """

    def __init__(
        self,
        env: Environment,
        node: Node,
        capacity_bytes: Optional[float] = None,
        name: str = "buffer",
    ):
        self.env = env
        self.node = node
        self.name = name
        if capacity_bytes is None:
            capacity_bytes = node.memory_free / 2
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = float(capacity_bytes)
        self._chunks: Dict[int, DataChunk] = {}
        self._used = 0.0
        self._space_waiters: List[Event] = []
        #: monitoring
        self.high_water_bytes = 0.0
        self.inserts = 0
        self.evictions = 0

    # -- state ------------------------------------------------------------------

    @property
    def used_bytes(self) -> float:
        return self._used

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self._used

    @property
    def occupancy(self) -> float:
        """Fraction of capacity in use, in [0, 1]."""
        return self._used / self.capacity_bytes

    def __len__(self) -> int:
        return len(self._chunks)

    def __contains__(self, chunk_id: int) -> bool:
        return chunk_id in self._chunks

    # -- operations ----------------------------------------------------------------

    def try_insert(self, chunk: DataChunk) -> bool:
        """Insert without blocking; False if there is no room."""
        if chunk.nbytes > self.capacity_bytes:
            raise BufferFull(
                f"{self.name}: chunk of {chunk.nbytes:.0f} B exceeds capacity "
                f"{self.capacity_bytes:.0f} B"
            )
        if self._used + chunk.nbytes > self.capacity_bytes:
            return False
        self.node.reserve_memory(chunk.nbytes)
        self._chunks[chunk.chunk_id] = chunk
        self._used += chunk.nbytes
        self.high_water_bytes = max(self.high_water_bytes, self._used)
        self.inserts += 1
        _INSERTS.add()
        # The timer's max across all buffers is the fleet high-water mark.
        REGISTRY.record_duration("datatap.buffer_occupancy", self.occupancy)
        return True

    def insert(self, chunk: DataChunk):
        """Blocking insert: returns a process event that fires once stored."""
        return self.env.process(self._insert(chunk), name=("buf-insert:{}", self.name))

    def _insert(self, chunk: DataChunk):
        while not self.try_insert(chunk):
            waiter = Event(self.env)
            self._space_waiters.append(waiter)
            yield waiter
        return chunk

    def get(self, chunk_id: int) -> DataChunk:
        """Look up a buffered chunk (it stays buffered until released)."""
        try:
            return self._chunks[chunk_id]
        except KeyError:
            raise SimulationError(f"{self.name}: chunk {chunk_id} not buffered") from None

    def release(self, chunk_id: int) -> DataChunk:
        """Drop a chunk after the reader confirms its pull completed."""
        chunk = self._chunks.pop(chunk_id, None)
        if chunk is None:
            raise SimulationError(f"{self.name}: releasing unknown chunk {chunk_id}")
        self._used -= chunk.nbytes
        self.node.free_memory(chunk.nbytes)
        self.evictions += 1
        _EVICTIONS.add()
        waiters, self._space_waiters = self._space_waiters, []
        for waiter in waiters:
            waiter.succeed()
        return chunk
