"""DataStager-style pull scheduling.

DataStager's contribution (Abbasi et al.) is that *scheduling* the RDMA pulls
— instead of letting every reader pull the moment metadata arrives — avoids
interconnect contention that would otherwise slow the application itself.

:class:`PullScheduler` bounds the number of concurrent pulls into a staging
area and can defer pulls while the application is in an output phase
(priority to simulation traffic).  The ablation bench compares scheduled vs
unscheduled pulls.
"""

from __future__ import annotations

from repro.simkernel import Environment, Resource
from repro.simkernel.errors import SimulationError
from repro.perf.registry import REGISTRY


class PullScheduler:
    """Admission control for RDMA pulls into a staging area.

    Parameters
    ----------
    max_concurrent_pulls:
        Token count; each in-flight pull holds one token.
    defer_during_output:
        When True, new pulls wait while the application signals an output
        phase (see :meth:`output_phase_begin` / :meth:`output_phase_end`).
    """

    def __init__(
        self,
        env: Environment,
        max_concurrent_pulls: int = 4,
        defer_during_output: bool = False,
    ):
        if max_concurrent_pulls < 1:
            raise ValueError("max_concurrent_pulls must be >= 1")
        self.env = env
        self._tokens = Resource(env, capacity=max_concurrent_pulls)
        self.defer_during_output = defer_during_output
        self._output_phase_depth = 0
        self._phase_clear = None  # Event set while an output phase is active
        #: monitoring
        self.pulls_admitted = 0
        self.total_wait = 0.0

    @property
    def in_flight(self) -> int:
        return self._tokens.count

    @property
    def queued(self) -> int:
        return len(self._tokens.queue)

    # -- application output phases ------------------------------------------------

    def output_phase_begin(self) -> None:
        """The application started writing output; defer new pulls."""
        self._output_phase_depth += 1
        if self._phase_clear is None:
            self._phase_clear = self.env.event()

    def output_phase_end(self) -> None:
        if self._output_phase_depth == 0:
            raise SimulationError("output_phase_end without matching begin")
        self._output_phase_depth -= 1
        if self._output_phase_depth == 0 and self._phase_clear is not None:
            self._phase_clear.succeed()
            self._phase_clear = None

    # -- admission ------------------------------------------------------------------

    def admit(self):
        """Process: wait for a pull slot; returns the token request.

        Usage::

            token = yield scheduler.admit()
            try:
                yield network.rdma_get(...)
            finally:
                scheduler.release(token)
        """
        return self.env.process(self._admit(), name="pull-admit")

    def _admit(self):
        start = self.env.now
        while self.defer_during_output and self._phase_clear is not None:
            yield self._phase_clear
        request = self._tokens.request()
        yield request
        self.pulls_admitted += 1
        wait = self.env.now - start
        self.total_wait += wait
        REGISTRY.count("datatap.pulls_admitted")
        REGISTRY.record_duration("datatap.pull_admit_wait", wait)
        return request

    def release(self, token) -> None:
        self._tokens.release(token)
