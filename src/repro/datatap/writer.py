"""DataTap writers: asynchronous, pausable producers."""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.simkernel import Environment, Event
from repro.simkernel.errors import SimulationError
from repro.cluster.node import Node
from repro.data import DataChunk
from repro.datatap.buffer import StagingBuffer
from repro.evpath.channel import Messenger
from repro.evpath.messages import Message, MessageType

if TYPE_CHECKING:
    from repro.datatap.link import DataTapLink


#: Wire size of a metadata push: variable descriptors, offsets, RDMA keys.
METADATA_BYTES = 1024


class DataTapWriter:
    """The producer half of a DataTap link.

    ``write(chunk)`` buffers the chunk locally and pushes metadata to a
    downstream reader, returning as soon as the chunk is safely buffered —
    the producer never waits for the data itself to move.  If the buffer is
    full the write blocks (this is how a stalled pipeline eventually blocks
    the application).

    ``pause()`` implements the decrease-protocol requirement: after the pause
    completes, no further metadata leaves this writer, and any in-flight
    metadata pushes have finished, so the downstream container can be resized
    without losing timesteps.  Buffering continues while paused — the paper
    notes the upstream component "can move on to its processing of other
    time steps".
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        node: Node,
        buffer: Optional[StagingBuffer] = None,
        name: str = "writer",
        pause_flush_delay: float = 0.05,
    ):
        self.env = env
        self.messenger = messenger
        self.node = node
        self.name = name
        # Note: an empty StagingBuffer is falsy (len 0), so test identity.
        self.buffer = (
            buffer if buffer is not None else StagingBuffer(env, node, name=f"{name}.buf")
        )
        self.link: Optional["DataTapLink"] = None
        self.pause_flush_delay = pause_flush_delay

        self._paused = False
        self._pending_meta: List[DataChunk] = []  # metadata deferred by pause
        self._inflight_meta = 0
        self._drained: Optional[Event] = None
        #: monitoring
        self.chunks_written = 0
        self.pause_count = 0

    # -- state ------------------------------------------------------------------

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def backlog(self) -> int:
        """Chunks buffered locally but whose metadata has not been pushed."""
        return len(self._pending_meta)

    # -- data plane -----------------------------------------------------------------

    def write(self, chunk: DataChunk):
        """Asynchronous write; the event fires once the chunk is buffered."""
        return self.env.process(self._write(chunk), name=f"dtwrite:{self.name}")

    def _write(self, chunk: DataChunk):
        if self.link is None:
            raise SimulationError(f"writer {self.name!r} is not attached to a link")
        yield self.buffer.insert(chunk)
        self.chunks_written += 1
        if self._paused:
            self._pending_meta.append(chunk)
        else:
            # Fire-and-forget metadata push; the writer does not wait.
            self.env.process(self._push_metadata(chunk), name=f"meta:{self.name}")
        return chunk

    def _push_metadata(self, chunk: DataChunk):
        reader_name = self.link.next_reader_for(self)
        self._inflight_meta += 1
        try:
            meta = Message(
                MessageType.DATA_METADATA,
                sender=self.name,
                payload={
                    "chunk_id": chunk.chunk_id,
                    "nbytes": chunk.nbytes,
                    "natoms": chunk.natoms,
                    "timestep": chunk.timestep,
                    "writer": self.name,
                    "writer_node": self.node.node_id,
                },
                size_bytes=METADATA_BYTES,
            )
            yield self.messenger.send(self.node, reader_name, meta)
        finally:
            self._inflight_meta -= 1
            if self._inflight_meta == 0 and self._drained is not None:
                self._drained.succeed()
                self._drained = None

    def on_pull_complete(self, chunk_id: int) -> None:
        """Reader confirmed the RDMA pull; free the buffered chunk."""
        self.buffer.release(chunk_id)

    def drain_buffer(self) -> List[DataChunk]:
        """Remove and return every buffered chunk (the offline flush path).

        Used when the downstream container is pruned: the buffered chunks
        will never be pulled, so the caller writes them to disk instead.
        Deferred metadata is discarded with them.
        """
        chunks = [self.buffer.get(cid) for cid in list(self.buffer._chunks)]
        for chunk in chunks:
            self.buffer.release(chunk.chunk_id)
        self._pending_meta.clear()
        return chunks

    # -- control plane ---------------------------------------------------------------

    def pause(self):
        """Process: quiesce the metadata stream.  Fires once fully paused."""
        return self.env.process(self._pause(), name=f"pause:{self.name}")

    def _pause(self):
        self._paused = True
        self.pause_count += 1
        if self._inflight_meta > 0:
            self._drained = Event(self.env)
            yield self._drained
        # Flush/fence delay: outstanding RDMA state on the NIC must settle
        # before downstream teardown is safe (the cost Figure 5 measures).
        yield self.env.timeout(self.pause_flush_delay)
        return True

    def resume(self):
        """Process: release the pause and push deferred metadata."""
        return self.env.process(self._resume(), name=f"resume:{self.name}")

    def _resume(self):
        if not self._paused:
            return False
        self._paused = False
        pending, self._pending_meta = self._pending_meta, []
        for chunk in pending:
            # Skip chunks that were pulled through a re-dispatch while paused.
            if chunk.chunk_id in self.buffer:
                self.env.process(self._push_metadata(chunk), name=f"meta:{self.name}")
        yield self.env.timeout(0)
        return True

    def __repr__(self) -> str:
        state = "paused" if self._paused else "active"
        return f"<DataTapWriter {self.name!r} {state} buffered={len(self.buffer)}>"
