"""DataTap writers: asynchronous, pausable producers."""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.simkernel import Environment, Event
from repro.simkernel.errors import SimulationError
from repro.cluster.node import Node
from repro.data import DataChunk
from repro.datatap.buffer import StagingBuffer
from repro.evpath.channel import Messenger
from repro.evpath.messages import Message, MessageType
from repro.perf.registry import REGISTRY

if TYPE_CHECKING:
    from repro.datatap.link import DataTapLink


#: Wire size of a metadata push: variable descriptors, offsets, RDMA keys.
METADATA_BYTES = 1024


class DataTapWriter:
    """The producer half of a DataTap link.

    ``write(chunk)`` buffers the chunk locally and pushes metadata to a
    downstream reader, returning as soon as the chunk is safely buffered —
    the producer never waits for the data itself to move.  If the buffer is
    full the write blocks (this is how a stalled pipeline eventually blocks
    the application).

    ``pause()`` implements the decrease-protocol requirement: after the pause
    completes, no further metadata leaves this writer, and any in-flight
    metadata pushes have finished, so the downstream container can be resized
    without losing timesteps.  Buffering continues while paused — the paper
    notes the upstream component "can move on to its processing of other
    time steps".
    """

    def __init__(
        self,
        env: Environment,
        messenger: Messenger,
        node: Node,
        buffer: Optional[StagingBuffer] = None,
        name: str = "writer",
        pause_flush_delay: float = 0.05,
        retain_until_processed: bool = False,
    ):
        self.env = env
        self.messenger = messenger
        self.node = node
        self.name = name
        # Note: an empty StagingBuffer is falsy (len 0), so test identity.
        self.buffer = (
            buffer if buffer is not None else StagingBuffer(env, node, name=f"{name}.buf")
        )
        self.link: Optional["DataTapLink"] = None
        self.pause_flush_delay = pause_flush_delay
        #: fault-tolerance mode: keep custody of a chunk past its pull, until
        #: the consumer acks it *processed*, so a reader crash can be healed
        #: by redelivering from the buffer (see :meth:`redeliver_unacked`)
        self.retain_until_processed = retain_until_processed

        self._paused = False
        self._pending_meta: List[DataChunk] = []  # metadata deferred by pause
        self._inflight_meta = 0
        self._drained: Optional[Event] = None
        #: per-writer chunk sequence numbers (idempotent-redelivery identity)
        self._next_seq = 0
        self._chunk_seq: dict = {}
        #: chunk_id -> reader name the metadata was last pushed to
        self._assigned: dict = {}
        #: retained chunk_ids already pulled downstream (a live copy exists)
        self._pulled = set()
        #: chunk_id -> callback chaining custody upstream: the producer's
        #: *input* is only acked once this output chunk is safely handed
        #: off (processed downstream, or flushed to disk), so a node crash
        #: between producing and delivering loses no timestep
        self._parent_acks: dict = {}
        #: monitoring
        self.chunks_written = 0
        self.pause_count = 0
        self.redelivered = 0

    # -- state ------------------------------------------------------------------

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def backlog(self) -> int:
        """Chunks buffered locally but whose metadata has not been pushed."""
        return len(self._pending_meta)

    def in_custody(self) -> List[int]:
        """Chunk ids this writer still holds responsibility for.

        In retention mode a chunk stays in custody from write until the
        downstream consumer acks it processed; otherwise until it is
        pulled.  The :mod:`repro.dst` exactly-once oracle uses this to
        assert that a timestep is never simultaneously delivered and
        still owed redelivery.
        """
        return sorted(self.buffer._chunks)

    # -- data plane -----------------------------------------------------------------

    def write(self, chunk: DataChunk):
        """Asynchronous write; the event fires once the chunk is buffered."""
        return self.env.process(self._write(chunk), name=("dtwrite:{}", self.name))

    def _write(self, chunk: DataChunk):
        if self.link is None:
            raise SimulationError(f"writer {self.name!r} is not attached to a link")
        yield self.buffer.insert(chunk)
        self.chunks_written += 1
        self._chunk_seq[chunk.chunk_id] = self._next_seq
        self._next_seq += 1
        if self._paused:
            self._pending_meta.append(chunk)
        else:
            self._dispatch_metadata(chunk)
        return chunk

    def _dispatch_metadata(self, chunk: DataChunk) -> None:
        """Push metadata, subject to the link's credit window (if any).

        Without credits this is the historical fire-and-forget push; with
        credits a dispatch beyond the window is deferred (the chunk stays
        in the buffer) until a downstream completion returns a credit.
        """
        credits = self.link.credits if self.link is not None else None
        if credits is not None and not credits.try_acquire(self.name, chunk.chunk_id):
            credits.defer(self, chunk)
            return
        self.spawn_metadata_push(chunk)

    def spawn_metadata_push(self, chunk: DataChunk) -> None:
        """Fire-and-forget metadata push; the writer does not wait."""
        self.env.process(self._push_metadata(chunk), name=("meta:{}", self.name))

    def _push_metadata(self, chunk: DataChunk):
        reader_name = self.link.next_reader_for(self)
        self._assigned[chunk.chunk_id] = reader_name
        self._inflight_meta += 1
        try:
            meta = Message(
                MessageType.DATA_METADATA,
                sender=self.name,
                payload={
                    "chunk_id": chunk.chunk_id,
                    "seq": self._chunk_seq.get(chunk.chunk_id),
                    "nbytes": chunk.nbytes,
                    "natoms": chunk.natoms,
                    "timestep": chunk.timestep,
                    "writer": self.name,
                    "writer_node": self.node.node_id,
                },
                size_bytes=METADATA_BYTES,
            )
            yield self.messenger.send(self.node, reader_name, meta)
        finally:
            self._inflight_meta -= 1
            if self._inflight_meta == 0 and self._drained is not None:
                self._drained.succeed()
                self._drained = None

    def needs_delivery(self, chunk_id: int) -> bool:
        """True while the chunk awaits a (re)pull from this buffer.

        False once pulled (retention mode) or released — the signal readers
        use to drop duplicate metadata instead of pulling twice.
        """
        return chunk_id in self.buffer and chunk_id not in self._pulled

    def on_pull_complete(self, chunk_id: int) -> None:
        """Reader confirmed the RDMA pull; free the buffered chunk.

        In retention mode custody outlives the pull: the chunk stays
        buffered until :meth:`on_processed`, so a consumer that dies with
        the chunk queued (or in service) has not destroyed the only copy.
        """
        if self.retain_until_processed:
            self._pulled.add(chunk_id)
            return
        self._forget(chunk_id)
        self.buffer.release(chunk_id)

    def on_processed(self, chunk_id: int) -> None:
        """Consumer fully processed the chunk; custody ends."""
        self._forget(chunk_id)
        if chunk_id in self.buffer:
            self.buffer.release(chunk_id)

    def _forget(self, chunk_id: int) -> None:
        self._chunk_seq.pop(chunk_id, None)
        self._assigned.pop(chunk_id, None)
        self._pulled.discard(chunk_id)
        ack = self._parent_acks.pop(chunk_id, None)
        if ack is not None:
            ack()

    def defer_parent_ack(self, chunk_id: int, callback) -> None:
        """Chain custody: run ``callback`` when this chunk's custody ends.

        The producing replica registers its input-ack here instead of
        firing it at emit time, so the upstream buffer keeps the input
        until the derived output has itself been safely handed off.
        """
        self._parent_acks[chunk_id] = callback

    def release_handed_off(self) -> None:
        """Crash cleanup: complete the handoff of already-pulled chunks.

        The writer's node died.  Chunks a downstream reader had pulled
        have a live copy there, so their upstream inputs are acked (re-
        producing them would deliver the timestep twice); everything else
        in the buffer died with the node and keeps its input unacked, to
        be re-produced via upstream redelivery.
        """
        for chunk_id in sorted(self._pulled):
            ack = self._parent_acks.pop(chunk_id, None)
            if ack is not None:
                ack()

    def redeliver_unacked(self, reader_name: str) -> int:
        """Re-push every retained chunk last assigned to ``reader_name``.

        The recovery path after a reader crash: chunks the dead reader had
        pulled-but-not-processed (and any whose metadata it never consumed)
        are still in this buffer, so push their metadata again — same chunk
        id, same sequence number — and let link-level dedup make the
        redelivery idempotent for chunks that did survive downstream.
        """
        count = 0
        for chunk_id, assigned in sorted(self._assigned.items()):
            if assigned != reader_name or chunk_id not in self.buffer:
                continue
            chunk = self.buffer.get(chunk_id)
            # The dead reader's copy died with it: custody reverts to
            # "not delivered" so a later resume() re-pushes it too, and
            # the link's delivery commit is revoked so the re-pull is not
            # dropped as a duplicate.
            self._pulled.discard(chunk_id)
            if self.link is not None:
                self.link.delivered.discard(chunk_id)
            count += 1
            self.redelivered += 1
            REGISTRY.count("datatap.redelivered")
            if self._paused:
                if chunk not in self._pending_meta:
                    self._pending_meta.append(chunk)
            else:
                # Recovery traffic bypasses the credit gate: the chunk's
                # original dispatch already consumed a credit (or its holder
                # died), and throttling redelivery would couple fault
                # handling to flow control.
                self.spawn_metadata_push(chunk)
        return count

    def drain_buffer(self) -> List[DataChunk]:
        """Remove and return every buffered chunk (the offline flush path).

        Used when the downstream container is pruned: the buffered chunks
        will never be pulled, so the caller writes them to disk instead.
        Deferred metadata is discarded with them.
        """
        chunks = []
        for chunk_id in list(self.buffer._chunks):
            chunk = self.buffer.get(chunk_id)
            # A retained-but-pulled chunk has a live copy downstream; release
            # custody without flushing it, or the strand path would write the
            # timestep twice.
            if chunk_id not in self._pulled:
                chunks.append(chunk)
            self.buffer.release(chunk_id)
            self._forget(chunk_id)
        self._pending_meta.clear()
        return chunks

    def spill_buffer(self) -> List[DataChunk]:
        """Remove and return buffered chunks with no delivery in flight.

        The failover spill path: when a link's credits collapse, chunks
        whose metadata was never dispatched (deferred against the window,
        or parked by a pause) are diverted to the durable spill store
        instead of waiting out the collapse.  Chunks already pulled (a live
        copy exists downstream) or with metadata in flight (``_assigned``)
        are left alone — the live path still owns them.  Custody transfers
        to the spill store: releasing each chunk fires its parent ack, the
        same handover :meth:`drain_buffer` performs.
        """
        chunks = []
        for chunk_id in list(self.buffer._chunks):
            if chunk_id in self._pulled or chunk_id in self._assigned:
                continue
            chunk = self.buffer.get(chunk_id)
            chunks.append(chunk)
            self.buffer.release(chunk_id)
            self._forget(chunk_id)
            if chunk in self._pending_meta:
                self._pending_meta.remove(chunk)
        return chunks

    # -- control plane ---------------------------------------------------------------

    def pause(self):
        """Process: quiesce the metadata stream.  Fires once fully paused."""
        return self.env.process(self._pause(), name=f"pause:{self.name}")

    def _pause(self):
        self._paused = True
        self.pause_count += 1
        if self._inflight_meta > 0:
            self._drained = Event(self.env)
            yield self._drained
        # Flush/fence delay: outstanding RDMA state on the NIC must settle
        # before downstream teardown is safe (the cost Figure 5 measures).
        yield self.env.timeout(self.pause_flush_delay)
        return True

    def resume(self):
        """Process: release the pause and push deferred metadata."""
        return self.env.process(self._resume(), name=f"resume:{self.name}")

    def _resume(self):
        if not self._paused:
            return False
        self._paused = False
        pending, self._pending_meta = self._pending_meta, []
        for chunk in pending:
            # Skip chunks that were pulled through a re-dispatch while paused
            # (for retaining writers "in the buffer" is not enough — a pulled
            # chunk is merely in custody and must not be pushed again).
            if chunk.chunk_id in self.buffer and chunk.chunk_id not in self._pulled:
                self._dispatch_metadata(chunk)
        yield self.env.timeout(0)
        return True

    def __repr__(self) -> str:
        state = "paused" if self._paused else "active"
        return f"<DataTapWriter {self.name!r} {state} buffered={len(self.buffer)}>"
