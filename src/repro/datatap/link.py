"""DataTap links: writer set -> reader set, with dynamic membership.

A link connects the replicas of an upstream stage to the replicas of a
downstream stage.  Metadata pushes are distributed round-robin across the
current reader set.  The link is where the container resize protocol touches
the data plane:

* ``add_reader`` wires a freshly spawned replica in (part of *increase*);
* ``remove_reader`` detaches a replica — legal only while all upstream
  writers are paused — and re-dispatches any metadata that had already been
  sent to the departing replica (part of *decrease*, no timestep loss);
* ``pause_writers`` / ``resume_writers`` run the quiesce protocol whose
  wait time dominates Figure 5.
"""

from __future__ import annotations

from typing import Dict, List

from repro.simkernel import Environment
from repro.simkernel.errors import SimulationError
from repro.evpath.channel import Messenger
from repro.evpath.messages import Message, MessageType
from repro.datatap.reader import DataTapReader
from repro.datatap.writer import DataTapWriter, METADATA_BYTES


class DataTapLink:
    """Round-robin distribution from N writers to M readers."""

    def __init__(self, env: Environment, messenger: Messenger, name: str = "link"):
        self.env = env
        self.messenger = messenger
        self.name = name
        self.writers: List[DataTapWriter] = []
        self.readers: List[DataTapReader] = []
        self._writers_by_name: Dict[str, DataTapWriter] = {}
        self._rr = 0
        #: chunk_ids that have completed a pull on this link — the dedup set
        #: making redelivery after a reader crash idempotent
        self.delivered = set()
        #: optional :class:`~repro.overload.credits.LinkCredits` window
        #: gating metadata dispatch; None (the default) disables flow
        #: control and keeps the dispatch path byte-identical
        self.credits = None
        #: monitoring
        self.redispatched = 0
        self.dup_dropped = 0

    # -- membership --------------------------------------------------------------------

    def add_writer(self, writer: DataTapWriter) -> DataTapWriter:
        if writer.name in self._writers_by_name:
            raise SimulationError(f"writer {writer.name!r} already on link {self.name!r}")
        writer.link = self
        self.writers.append(writer)
        self._writers_by_name[writer.name] = writer
        return writer

    def add_reader(self, reader: DataTapReader) -> DataTapReader:
        if any(r.name == reader.name for r in self.readers):
            raise SimulationError(f"reader {reader.name!r} already on link {self.name!r}")
        reader.link = self
        self.readers.append(reader)
        return reader

    def remove_reader(self, reader: DataTapReader) -> None:
        """Detach a reader and re-dispatch its undelivered metadata.

        Upstream writers must be paused (enforced) so no push races the
        teardown.
        """
        if any(not w.paused for w in self.writers):
            raise SimulationError(
                f"link {self.name!r}: remove_reader requires all writers paused"
            )
        if reader not in self.readers:
            raise SimulationError(f"reader {reader.name!r} not on link {self.name!r}")
        self.readers.remove(reader)
        pending = reader.stop()
        if pending and not self.readers:
            raise SimulationError(
                f"link {self.name!r}: removing last reader would strand "
                f"{len(pending)} chunks"
            )
        for meta in pending:
            try:
                writer = self.writer_by_name(meta.payload["writer"])
            except SimulationError:
                continue  # writer itself was torn down (crash recovery)
            if not writer.needs_delivery(meta.payload["chunk_id"]):
                continue  # pull completed despite the teardown; nothing to do
            # Re-dispatch bypasses any credit window: the original dispatch
            # already holds the chunk's credit, released at pull completion.
            self.redispatched += 1
            target = self.readers[self._rr % len(self.readers)]
            self._rr += 1
            self.messenger.send(
                writer.node,
                target.name,
                Message(
                    MessageType.DATA_METADATA,
                    sender=writer.name,
                    payload=meta.payload,
                    size_bytes=METADATA_BYTES,
                ),
            )

    def remove_writer(self, writer: DataTapWriter) -> None:
        """Detach a writer whose host died; its buffered chunks are lost.

        Metadata already pushed for those chunks becomes orphaned — readers
        drop it on lookup failure and count it, so the loss is visible
        rather than fatal.
        """
        if writer not in self.writers:
            raise SimulationError(f"writer {writer.name!r} not on link {self.name!r}")
        self.writers.remove(writer)
        del self._writers_by_name[writer.name]
        writer.link = None
        if self.credits is not None:
            self.credits.forget_writer(writer.name)

    # -- routing ---------------------------------------------------------------------

    def writer_by_name(self, name: str) -> DataTapWriter:
        try:
            return self._writers_by_name[name]
        except KeyError:
            raise SimulationError(f"unknown writer {name!r} on link {self.name!r}") from None

    def next_reader_for(self, writer: DataTapWriter) -> str:
        """Round-robin target selection for a metadata push.

        Crashed (but not yet replaced) readers are skipped while any live
        reader remains, so new timesteps keep flowing during recovery.
        """
        if not self.readers:
            raise SimulationError(f"link {self.name!r} has no readers")
        candidates = [r for r in self.readers if not r.stopped] or self.readers
        reader = candidates[self._rr % len(candidates)]
        self._rr += 1
        return reader.name

    # -- quiesce protocol ----------------------------------------------------------------

    def pause_writers(self):
        """Process: pause every writer; fires when all report quiesced."""
        return self.env.process(self._pause_writers(), name=f"pause:{self.name}")

    def _pause_writers(self):
        if not self.writers:
            yield self.env.timeout(0)
            return 0.0
        start = self.env.now
        yield self.env.all_of([w.pause() for w in self.writers])
        return self.env.now - start

    def resume_writers(self):
        return self.env.process(self._resume_writers(), name=f"resume:{self.name}")

    def _resume_writers(self):
        if self.writers:
            yield self.env.all_of([w.resume() for w in self.writers])
        else:
            yield self.env.timeout(0)
        return True

    def drain_readers(self):
        """Process: fires when no reader has a pull in flight."""
        return self.env.process(self._drain_readers(), name=f"drainlink:{self.name}")

    def _drain_readers(self):
        if self.readers:
            yield self.env.all_of([r.drain() for r in self.readers])
        else:
            yield self.env.timeout(0)
        return True
