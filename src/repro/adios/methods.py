"""Transport methods: where an ADIOS write actually goes.

Matching the paper's stack (Figure 2): the application speaks the ADIOS
interface; a *method* binds that interface either to the DataTap staging
transport (online path) or to POSIX writes on the parallel file system
(offline path).  Methods are swappable at runtime — the offline protocol
switches a component's output method mid-run.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.simkernel import Environment
from repro.cluster.node import Node
from repro.data import DataChunk
from repro.datatap.writer import DataTapWriter
from repro.adios.filesystem import ParallelFileSystem


class TransportMethod:
    """Interface: deliver one chunk somewhere."""

    name = "abstract"

    def write_chunk(self, chunk: DataChunk, attributes: Optional[Dict[str, Any]] = None):
        """Returns a process/event that fires when the write completes
        *from the producer's perspective* (async methods fire at buffering).
        """
        raise NotImplementedError


class DataTapMethod(TransportMethod):
    """Online path: asynchronous staged output through a DataTap writer."""

    name = "DATATAP"

    def __init__(self, writer: DataTapWriter):
        self.writer = writer

    def write_chunk(self, chunk: DataChunk, attributes=None):
        return self.writer.write(chunk)


class PosixMethod(TransportMethod):
    """Offline path: synchronous-ish write to the parallel file system.

    Attributes (provenance!) are attached to every file record.
    """

    name = "POSIX"

    def __init__(self, env: Environment, fs: ParallelFileSystem, node: Node,
                 prefix: str = "out"):
        self.env = env
        self.fs = fs
        self.node = node
        self.prefix = prefix

    def write_chunk(self, chunk: DataChunk, attributes=None):
        attrs = dict(attributes or {})
        attrs.setdefault("provenance", list(chunk.provenance))
        attrs.setdefault("timestep", chunk.timestep)
        name = f"{self.prefix}.ts{chunk.timestep:06d}.bp"
        return self.fs.write(self.node, name, chunk.nbytes, attrs)


class SstMethod(TransportMethod):
    """Streaming path: SST-style publish/subscribe with reader-side flow
    control (see :class:`repro.adios.engine.SstStream`).

    Unlike :class:`DataTapMethod` (metadata push, reader RDMA-pull), the
    publisher pushes whole chunks and blocks on each subscriber's window —
    the write completes once every subscriber has the chunk buffered.
    """

    name = "SST"

    def __init__(self, stream, src_node: Optional[Node] = None):
        self.stream = stream
        self.src_node = src_node

    def write_chunk(self, chunk: DataChunk, attributes=None):
        attrs = dict(attributes or {})
        attrs.setdefault("provenance", list(chunk.provenance))
        attrs.setdefault("timestep", chunk.timestep)
        return self.stream.publish(chunk, attrs, src_node=self.src_node)


class NullMethod(TransportMethod):
    """Discard output (for components whose sink is out of scope)."""

    name = "NULL"

    def __init__(self, env: Environment):
        self.env = env

    def write_chunk(self, chunk: DataChunk, attributes=None):
        return self.env.timeout(0, value=chunk)
