"""A simulated parallel file system (Lustre-style).

Writes consume one of ``stripes`` concurrent server streams, each with
``per_stream_bandwidth``; metadata operations cost a fixed latency.  This is
the first-order model of what the offline path pays when a pruned pipeline
writes raw data to storage instead of staging it.

The file system records everything written — name, size, and attributes — so
tests can assert that offline output carries the right provenance labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.simkernel import Environment, Resource
from repro.cluster.node import Node


@dataclass
class FileRecord:
    name: str
    nbytes: float
    written_at: float
    writer_node: int
    attributes: Dict[str, Any] = field(default_factory=dict)


class ParallelFileSystem:
    """Shared storage with striped bandwidth and metadata latency."""

    def __init__(
        self,
        env: Environment,
        stripes: int = 4,
        per_stream_bandwidth: float = 500 * 2**20,
        metadata_latency: float = 2e-3,
    ):
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        if per_stream_bandwidth <= 0:
            raise ValueError("per_stream_bandwidth must be positive")
        self.env = env
        self.per_stream_bandwidth = per_stream_bandwidth
        self.metadata_latency = metadata_latency
        self._streams = Resource(env, capacity=stripes)
        self.files: List[FileRecord] = []
        #: monitoring
        self.bytes_written = 0.0
        self.bytes_read = 0.0

    def write(self, node: Node, name: str, nbytes: float,
              attributes: Optional[Dict[str, Any]] = None):
        """Process: write ``nbytes`` from ``node``; fires with the record."""
        return self.env.process(
            self._write(node, name, nbytes, attributes), name=("pfs:{}", name)
        )

    def _write(self, node: Node, name: str, nbytes: float, attributes):
        if nbytes < 0:
            raise ValueError(f"negative write size {nbytes}")
        yield self.env.timeout(self.metadata_latency)
        stream = self._streams.request()
        yield stream
        try:
            yield self.env.timeout(nbytes / self.per_stream_bandwidth)
        finally:
            self._streams.release(stream)
        record = FileRecord(
            name=name,
            nbytes=nbytes,
            written_at=self.env.now,
            writer_node=node.node_id,
            attributes=dict(attributes or {}),
        )
        self.files.append(record)
        self.bytes_written += nbytes
        return record

    def read(self, node: Node, name: str):
        """Process: read the most recent file named ``name`` back to ``node``.

        Reads pay the same striped-bandwidth and metadata costs as writes
        (the replay path's catch-up latency is dominated by this).  Fires
        with the :class:`FileRecord` read.
        """
        return self.env.process(self._read(node, name), name=("pfs-read:{}", name))

    def _read(self, node: Node, name: str):
        matches = self.find(name)
        if not matches:
            raise FileNotFoundError(f"no file named {name!r} on this file system")
        record = matches[-1]
        yield self.env.timeout(self.metadata_latency)
        stream = self._streams.request()
        yield stream
        try:
            yield self.env.timeout(record.nbytes / self.per_stream_bandwidth)
        finally:
            self._streams.release(stream)
        self.bytes_read += record.nbytes
        return record

    def find(self, name: str) -> List[FileRecord]:
        return [f for f in self.files if f.name == name]
