"""Reading back BP-lite series: the consumer half of the ADIOS interface.

The offline path writes one BP-lite file per timestep; post-processing and
visualization want to iterate them in order, select variables, and filter by
provenance.  :class:`BpSeries` provides that read interface over a
directory of ``<prefix>.ts<NNNN>.bp`` files.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.adios.bp import read_bp

_TS_RE = re.compile(r"\.ts(\d+)\.")


@dataclass
class BpStep:
    """One timestep of a series."""

    path: Path
    timestep: int
    variables: Dict[str, np.ndarray]
    attributes: Dict[str, Any]


class BpSeries:
    """An ordered view over the BP-lite files of one output stream.

    Parameters
    ----------
    directory:
        Where the files live.
    prefix:
        Stream name: files matching ``<prefix>*.ts<NNNN>.bp`` are included.
        None matches every .bp file with a timestep marker.
    """

    def __init__(self, directory, prefix: Optional[str] = None):
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise FileNotFoundError(f"{self.directory} is not a directory")
        self.prefix = prefix
        self._index: List[Tuple[int, Path]] = []
        pattern = f"{prefix}*.bp" if prefix else "*.bp"
        for path in sorted(self.directory.glob(pattern)):
            match = _TS_RE.search(path.name)
            if match is None:
                continue
            self._index.append((int(match.group(1)), path))
        self._index.sort()

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    @property
    def timesteps(self) -> List[int]:
        return [ts for ts, _ in self._index]

    def read(self, timestep: int, variables: Optional[Sequence[str]] = None) -> BpStep:
        """Load one timestep, optionally restricted to named variables."""
        for ts, path in self._index:
            if ts == timestep:
                data, attrs = read_bp(path)
                if variables is not None:
                    missing = set(variables) - set(data)
                    if missing:
                        raise KeyError(
                            f"{path.name}: missing variables {sorted(missing)}"
                        )
                    data = {name: data[name] for name in variables}
                return BpStep(path=path, timestep=ts, variables=data,
                              attributes=attrs)
        raise KeyError(f"timestep {timestep} not in series "
                       f"(have {self.timesteps[:5]}...)")

    def __iter__(self) -> Iterator[BpStep]:
        for ts, _ in self._index:
            yield self.read(ts)

    def select(self, **attr_filters) -> Iterator[BpStep]:
        """Iterate steps whose attributes match all given equalities.

        Example: ``series.select(completed_offline=True)``; a provenance
        filter may pass a list, matched exactly.
        """
        for step in self:
            if all(step.attributes.get(k) == v for k, v in attr_filters.items()):
                yield step

    def variable_series(self, name: str) -> Tuple[List[int], List[np.ndarray]]:
        """All timesteps' values of one variable (loads each file)."""
        steps, values = [], []
        for step in self:
            if name in step.variables:
                steps.append(step.timestep)
                values.append(step.variables[name])
        return steps, values
