"""Degrade-to-disk failover: spill instead of shed, replay to catch up.

The paper's overload remedies are lossy — stride skips and offline prunes
drop timesteps permanently (the brownout ladder reproduces that).  The
:class:`FailoverManager` converts those losses into latency:

* **Spill path** — an interceptor installed on the pipeline's
  :class:`~repro.overload.shed.ShedLedger` diverts every would-be shed
  decision to the :class:`~repro.adios.spill.SpillLedger`, writing the
  timestep to a durable :class:`~repro.adios.spill.SpillStore` as a
  sequenced, content-digested segment.  A sweeper additionally watches
  for collapsed credit windows and flushes a collapsed link's
  undispatched backlog through the ``spill_engage`` control protocol.
* **Replay path** — when the consumer side is healthy again (the ladder
  unwinds, a REPLACE recovery completes, a cold-start consumer attaches,
  or simply the run ends), the ``replay_catchup`` protocol reads pending
  segments back in sequence order, streams them over an SST engine with
  reader-side flow control, and hands over to the live stream at the
  snapshot watermark with no gap, no duplicate, and credits re-primed.

The exactly-one-fate invariant generalizes: every produced timestep ends
as delivered ∪ shed ∪ spilled, and every spilled timestep eventually
settles as replayed (delivered) or superseded (delivered live first).

All of this is strictly opt-in: without a FailoverManager the shed
ledger's ``intercept`` stays None and legacy pipelines are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.simkernel import Environment
from repro.controlplane.engine import ProtocolAbort, ProtocolExit
from repro.controlplane.protocols import REPLAY_CATCHUP, SPILL_ENGAGE
from repro.data import DataChunk
from repro.perf.registry import REGISTRY
from repro.adios.engine import (
    LIVE,
    REPLAYING,
    SPILLING,
    DataTapEngine,
    EngineSwitch,
    FileEngine,
    SstEngine,
    SstStream,
)
from repro.adios.spill import SpillLedger, SpillStore
from repro.overload.shed import SHED_REASONS


@dataclass
class FailoverPolicy:
    """Tuning for the spill/replay layer (the spec ``failover:`` block)."""

    #: shed reasons the interceptor diverts to the spill path
    spill_reasons: Tuple[str, ...] = SHED_REASONS
    #: sweeper period: collapse detection and catch-up eligibility checks
    sweep_interval: float = 10.0
    #: spill store sizing (a dedicated file system, not the sink FS)
    store_stripes: int = 4
    store_bandwidth: float = 500 * 2**20
    store_metadata_latency: float = 2e-3
    #: per-subscriber in-flight window on the replay SST stream
    subscriber_window: int = 4
    #: consecutive collapsed sweeps before spill_engage fires on a link
    collapse_ticks: int = 3
    #: max segments replayed per catch-up round (None = all pending)
    replay_batch: Optional[int] = None
    #: the engine each link runs while healthy — ``datatap`` (the staged
    #: transport) or ``sst`` (publish/subscribe with reader-side windows);
    #: selected by the spec's ``transport:`` field
    live_transport: str = "datatap"

    def __post_init__(self):
        if self.live_transport not in ("datatap", "sst"):
            raise ValueError(
                f"live_transport must be 'datatap' or 'sst', "
                f"got {self.live_transport!r}"
            )
        for reason in self.spill_reasons:
            if reason not in SHED_REASONS:
                raise ValueError(
                    f"spill reason {reason!r} is not interceptable; "
                    f"legal: {SHED_REASONS}"
                )
        if self.sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive")
        if self.subscriber_window < 1:
            raise ValueError("subscriber_window must be >= 1")
        if self.collapse_ticks < 1:
            raise ValueError("collapse_ticks must be >= 1")


class FailoverManager:
    """Owns the spill store, the spill ledger, and the failover protocols.

    Attached by the pipeline builder when the spec enables failover; wires
    itself into the shed ledger (interceptor), the degradation trace
    (catch-up on recovery transitions), and the recovery manager (catch-up
    after REPLACE commits).
    """

    def __init__(self, env: Environment, pipe, policy: Optional[FailoverPolicy] = None):
        self.env = env
        self.pipe = pipe
        self.policy = policy or FailoverPolicy()
        self.store = SpillStore(
            env,
            stripes=self.policy.store_stripes,
            per_stream_bandwidth=self.policy.store_bandwidth,
            metadata_latency=self.policy.store_metadata_latency,
        )
        self.ledger = SpillLedger(is_delivered=pipe._exited_steps.__contains__)
        pipe.spill_ledger = self.ledger
        pipe.shed_ledger.intercept = self._intercept
        #: one engine switch per DataTap link, starting on the live transport
        self.switches: Dict[str, EngineSwitch] = {}
        for lname, link in pipe.links.items():
            switch = EngineSwitch(lname, current="datatap")
            if link.writers:
                switch.add_engine(DataTapEngine(link.writers[0]), "datatap")
            switch.add_engine(
                FileEngine(env, self.store, self._store_node(), stage=lname,
                           ledger=self.ledger),
                "file",
            )
            if self.policy.live_transport == "sst":
                stream = SstStream(
                    env, name=f"sst:{lname}", network=pipe.machine.network
                )
                consumer = self._consumer_of(link)
                node = self._store_node()
                if consumer is not None:
                    live = [r for r in consumer.replicas if not r.crashed]
                    if live:
                        node = live[0].node
                stream.subscribe(
                    lname, node=node, window=self.policy.subscriber_window
                )
                src = link.writers[0].node if link.writers else None
                switch.add_engine(SstEngine(stream, src_node=src), "sst")
                switch.switch_to("sst")
            self.switches[lname] = switch
        #: completed handovers (the no-gap/no-dup oracle's raw data)
        self.handovers: List[dict] = []
        #: spill_engage flushes: (time, link, chunks diverted)
        self.spill_epochs: List[tuple] = []
        self._replaying = False
        self._catchup_requested = False
        self._collapse_ticks: Dict[str, int] = {}
        self._stopped = False
        pipe.degradation.subscribers.append(self._on_transition)
        if pipe.recovery is not None:
            pipe.recovery.on_replace_complete = self._on_replace_complete
        pipe.failover = self
        self._proc = env.process(self._sweep(), name="failover-sweep")

    # -- stage/link mapping --------------------------------------------------------

    def _store_node(self):
        gm = self.pipe.global_manager
        if gm is not None:
            return gm.node
        return self.pipe.machine.nodes[0]

    def _link_for_stage(self, stage: str):
        container = self.pipe.containers.get(stage)
        if container is not None:
            return container.input_link
        driver = self.pipe.driver
        if driver is not None and driver.writers:
            return driver.writers[0].link
        return None

    def _switch_for_stage(self, stage: str) -> Optional[EngineSwitch]:
        link = self._link_for_stage(stage)
        if link is None:
            return None
        return self.switches.get(link.name)

    def _consumer_of(self, link):
        for container in self.pipe.containers.values():
            if container.input_link is link:
                return container
        return None

    def _sink(self):
        """The terminal consumer's (name, node) for the replay stream."""
        for name, container in self.pipe.containers.items():
            if container.output_link is not None:
                continue
            for replica in container.replicas:
                if not replica.crashed:
                    return name, replica.node
            return name, self._store_node()
        return "sink", self._store_node()

    def _nbytes_for(self, stage: str) -> float:
        # First-order sizing: one full output step.  Stage-level spills of
        # concrete chunks pass their true size instead (see _spill_chunk).
        return float(self.pipe.driver.workload.bytes_per_step)

    # -- the spill path -------------------------------------------------------------

    def _intercept(self, timestep, stage, reason, time, chunk_id) -> bool:
        """ShedLedger hook: divert a would-be shed to the spill path.

        Returns True when the timestep's fate is (now) ``spilled``; False
        lets the shed record proceed (reason not covered, or the timestep
        was already shed — a second fragment of an existing decision must
        stay a shed record, never a second fate).
        """
        if reason not in self.policy.spill_reasons:
            return False
        if timestep in self.pipe.shed_ledger.steps():
            return False
        record = self.ledger.record(
            timestep, stage, reason, time,
            nbytes=self._nbytes_for(stage), chunk_id=chunk_id,
        )
        if record is None:
            # Already spilled (another fragment/decision) — fate exists.
            return True
        self.store.write_segment(self._store_node(), record)
        switch = self._switch_for_stage(stage)
        if switch is not None and switch.state == LIVE:
            switch.set_state(SPILLING, time)
            switch.switch_to("file")
            self.pipe.telemetry.mark(time, f"failover: {switch.name} spilling")
        REGISTRY.count("failover.intercepted")
        return True

    def _spill_chunk(self, chunk, stage: str, reason: str) -> bool:
        """Spill one concrete chunk (the spill_engage flush path)."""
        if chunk.timestep in self.pipe.shed_ledger.steps():
            return False  # fate already shed; do not add a second fate
        record = self.ledger.record(
            chunk.timestep, stage, reason, self.env.now,
            nbytes=chunk.nbytes, chunk_id=chunk.chunk_id,
        )
        if record is None:
            return False
        self.store.write_segment(self._store_node(), record)
        return True

    # -- spill_engage protocol rounds -----------------------------------------------

    def engage_spill(self, link_name: str):
        """Process: run the spill_engage protocol on one collapsed link."""
        link = self.pipe.links[link_name]
        return self.pipe.control_plane.execute(
            SPILL_ENGAGE, subject=link_name,
            data={"fo": self, "link": link, "lname": link_name, "flushed": 0},
        )

    def _se_check(self, ctx):
        link = ctx["link"]
        undispatched = 0
        for writer in link.writers:
            for chunk_id in writer.buffer._chunks:
                if chunk_id not in writer._pulled and chunk_id not in writer._assigned:
                    undispatched += 1
        if undispatched == 0:
            raise ProtocolExit(0)

    def _se_flush(self, ctx):
        link, lname = ctx["link"], ctx["lname"]
        flushed = 0
        for writer in list(link.writers):
            for chunk in writer.spill_buffer():
                self._spill_chunk(chunk, lname, "credit_collapse")
                flushed += 1
        ctx["flushed"] = flushed

    def _se_mark(self, ctx):
        switch = self.switches.get(ctx["lname"])
        if switch is not None:
            switch.set_state(SPILLING, self.env.now)
            switch.switch_to("file")
        self.spill_epochs.append((self.env.now, ctx["lname"], ctx["flushed"]))
        self.pipe.telemetry.mark(
            self.env.now, f"failover: spill engaged on {ctx['lname']}"
        )
        ctx.result = ctx["flushed"]

    def _se_reopen(self, ctx):
        # Compensation: the flush already moved custody to the spill store
        # (durable), so nothing is lost — just unmark the epoch.
        switch = self.switches.get(ctx["lname"])
        if switch is not None and switch.state == SPILLING:
            switch.set_state(LIVE, self.env.now)
            switch.switch_to(self.policy.live_transport)

    def _se_abort(self, ctx):
        ctx.result = 0

    # -- replay_catchup protocol rounds ----------------------------------------------

    def request_catchup(self) -> None:
        """Ask the sweeper to run a catch-up at its next opportunity (the
        cold-start-attach and post-REPLACE triggers)."""
        self._catchup_requested = True

    def catchup(self):
        """Process: run the replay_catchup protocol now."""
        return self.pipe.control_plane.execute(
            REPLAY_CATCHUP, subject="spill-store",
            data={"fo": self, "replayed": 0, "superseded": 0},
        )

    def _rc_snapshot(self, ctx):
        if self._replaying:
            raise ProtocolExit("replay already in flight")
        pending = self.ledger.pending()
        if self.policy.replay_batch is not None:
            pending = pending[: self.policy.replay_batch]
        if not pending:
            raise ProtocolExit(0)
        self._replaying = True
        ctx["batch"] = list(pending)
        ctx["watermark"] = max(r.seq for r in pending)
        for switch in self.switches.values():
            if switch.state == SPILLING:
                switch.set_state(REPLAYING, self.env.now)
                switch.switch_to("sst")

    def _rc_stream(self, ctx):
        """Read pending segments in seq order and stream them to the sink
        over an SST engine — reader-side window, strict ordering."""
        reader_node = self._store_node()
        sink_name, sink_node = self._sink()
        stream = SstStream(
            self.env, name="replay", network=self.pipe.machine.network
        )
        subscriber = stream.subscribe(
            sink_name, node=sink_node, window=self.policy.subscriber_window
        )
        engine = SstEngine(stream, src_node=reader_node)
        for switch in self.switches.values():
            if "sst" not in switch.engines:
                switch.add_engine(engine, "sst")
        order: List[int] = []

        def consume():
            while True:
                chunk, attrs = yield subscriber.get()
                if attrs.get("eos"):
                    return
                record = attrs["record"]
                if record.timestep in self.pipe._exited_steps:
                    self.ledger.mark_superseded(record.seq, self.env.now)
                    ctx["superseded"] += 1
                else:
                    self.pipe.record_exit(chunk, sink="replay")
                    self.ledger.mark_replayed(record.seq, self.env.now)
                    ctx["replayed"] += 1
                    order.append(record.seq)

        consumer = self.env.process(consume(), name="replay-consume")
        for record in ctx["batch"]:
            yield self.store.read_segment(reader_node, record)
            chunk = DataChunk(
                timestep=record.timestep,
                nbytes=record.nbytes,
                provenance=("replay",),
                created_at=record.time,
                integrity=record.digest,
            )
            yield engine.put(chunk, {"record": record})
        yield engine.put(
            DataChunk(timestep=-1, nbytes=0.0, created_at=self.env.now),
            {"eos": True},
        )
        yield consumer
        subscriber.detach()
        ctx["order"] = order

    def _rc_handover(self, ctx):
        leftover = [
            r for r in self.ledger.pending() if r.seq <= ctx["watermark"]
        ]
        if leftover:
            raise ProtocolAbort(
                f"{len(leftover)} segments at or below the watermark "
                f"were not settled"
            )
        # Re-prime flow control: a resize-to-current re-drains any pushes
        # deferred while the link was degraded.
        for link in self.pipe.links.values():
            if link.credits is not None:
                link.credits.resize(link.credits.window)
        for switch in self.switches.values():
            if switch.state != LIVE:
                switch.watermark = ctx["watermark"]
                switch.switch_to(self.policy.live_transport)
                switch.set_state(LIVE, self.env.now)
        self.handovers.append({
            "time": self.env.now,
            "watermark": ctx["watermark"],
            "expected": [r.seq for r in ctx["batch"]],
            "replayed": [
                r.seq for r in ctx["batch"] if r.status == "replayed"
            ],
            "superseded": [
                r.seq for r in ctx["batch"] if r.status == "superseded"
            ],
            "order": list(ctx.get("order", [])),
        })
        self.pipe.telemetry.mark(
            self.env.now,
            f"failover: handover at watermark {ctx['watermark']} "
            f"({ctx['replayed']} replayed, {ctx['superseded']} superseded)",
        )
        self._replaying = False
        ctx.result = ctx["replayed"]

    def _rc_abort(self, ctx):
        self._replaying = False
        ctx.result = ctx.get("replayed", 0)

    # -- triggers -------------------------------------------------------------------

    def _on_transition(self, step, trace) -> None:
        # Recovery-direction ladder transitions (undo_*) mean the consumer
        # side is healing: schedule a catch-up attempt.
        if str(getattr(step, "action", "")).startswith("undo"):
            self._catchup_requested = True

    def _on_replace_complete(self, name: str) -> None:
        self._catchup_requested = True

    # -- the sweeper ----------------------------------------------------------------

    def _healthy(self) -> bool:
        """Catch-up eligibility: the pressure that caused the spills is
        gone (ladder fully unwound, driver stride back to 1), or the run
        is over and only the backlog remains."""
        driver = self.pipe.driver
        if driver is None:
            return True
        if driver.finished.triggered:
            return True
        return (
            self.pipe.degradation.overall_level == 0
            and driver.output_stride == 1
        )

    def _sweep(self):
        while not self._stopped:
            yield self.env.timeout(self.policy.sweep_interval)
            if self._stopped:
                return
            yield from self._check_collapse()
            if self._should_catchup():
                self._catchup_requested = False
                yield self.catchup()

    def _should_catchup(self) -> bool:
        if self._replaying or not self.ledger.pending():
            return False
        return self._healthy() or self._catchup_requested

    def _check_collapse(self):
        for lname, link in sorted(self.pipe.links.items()):
            credits = link.credits
            if credits is None:
                continue
            consumer = self._consumer_of(link)
            if consumer is not None and consumer.gather_count > 1:
                # Fragment links: spilling one writer's fragment would
                # strand the gather of the others.  The driver-side stride
                # interceptor covers this link's overload instead.
                continue
            collapsed = (
                credits.window <= credits.min_window and credits.backlog > 0
            )
            if not collapsed:
                self._collapse_ticks[lname] = 0
                continue
            ticks = self._collapse_ticks.get(lname, 0) + 1
            self._collapse_ticks[lname] = ticks
            if ticks >= self.policy.collapse_ticks:
                self._collapse_ticks[lname] = 0
                yield self.engage_spill(lname)

    def stop(self) -> None:
        self._stopped = True

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> dict:
        return {
            "spilled": len(self.ledger),
            "pending": len(self.ledger.pending()),
            "by_status": self.ledger.by_status(),
            "by_reason": self.ledger.by_reason(),
            "handovers": len(self.handovers),
            "spill_epochs": len(self.spill_epochs),
            "store_bytes_written": self.store.fs.bytes_written,
            "store_bytes_read": self.store.fs.bytes_read,
        }

    def __repr__(self) -> str:
        return (
            f"<FailoverManager spilled={len(self.ledger)} "
            f"pending={len(self.ledger.pending())} "
            f"handovers={len(self.handovers)}>"
        )
