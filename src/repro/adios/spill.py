"""Degrade-to-disk accounting: the spill ledger and the spill store.

The paper's only remedy for a failed or lagging consumer is to shed data
(stride skips, offline prunes).  The failover layer replaces that loss
with *latency*: a timestep that would have been shed is instead written
to a simulated file store as a sequenced, content-digested segment and
recorded in the :class:`SpillLedger`.  The exactly-one-fate invariant
then generalizes from ``delivered ∪ shed`` to
``delivered ∪ shed ∪ spilled`` — a spilled timestep is owed eventual
delivery via replay, never silently dropped.

Mirrors :class:`repro.overload.shed.ShedLedger` deliberately: same
suppression rule (a delivered timestep cannot also be spilled), same
subscriber hook, same one-decision-per-timestep discipline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.overload.shed import SHED_REASONS
from repro.perf.registry import REGISTRY
from repro.simkernel import Environment, Event
from repro.adios.filesystem import ParallelFileSystem

#: the legal spill reasons: every shed reason (the failover interceptor
#: converts those decisions in place), plus the two triggers that only
#: exist once spilling is available.
SPILL_REASONS = SHED_REASONS + (
    "credit_collapse",   # a link's credit window collapsed with a backlog
    "consumer_crash",    # the consumer died and redelivery was not possible
)

#: lifecycle of a spill record: spilled -> replayed (delivered via the
#: catch-up stream) or superseded (the timestep was delivered live before
#: replay reached it, so the segment is redundant).
SPILL_STATUSES = ("spilled", "replayed", "superseded")


def segment_digest(stage: str, timestep: int, reason: str, nbytes: float) -> str:
    """Deterministic content digest for a spilled segment.

    Hash of the segment's identity tuple, not of simulated payload bytes
    (there are none) — stable across runs, schedules, and machines, so
    replay-identity checks can compare digests byte-for-byte.
    """
    key = f"{stage}:{timestep}:{reason}:{int(nbytes)}"
    return hashlib.sha256(key.encode()).hexdigest()[:16]


@dataclass
class SpillRecord:
    """One spill decision: a timestep diverted to the file store.

    Mutable (unlike :class:`~repro.overload.shed.ShedRecord`) because a
    spill is not terminal — ``status`` advances to ``replayed`` or
    ``superseded`` when the catch-up stream settles the timestep's fate.
    """

    timestep: int
    stage: str
    reason: str
    time: float
    seq: int
    nbytes: float
    digest: str
    chunk_id: Optional[int] = None
    status: str = "spilled"
    #: simulation time the record left ``spilled`` (replay or supersede)
    settled_at: Optional[float] = None

    def as_dict(self) -> dict:
        return {
            "timestep": self.timestep,
            "stage": self.stage,
            "reason": self.reason,
            "time": self.time,
            "seq": self.seq,
            "nbytes": self.nbytes,
            "digest": self.digest,
            "chunk_id": self.chunk_id,
            "status": self.status,
            "settled_at": self.settled_at,
        }


class SpillLedger:
    """Append-only record of every spill decision, with fate tracking.

    The same suppression discipline as the shed ledger: a record for a
    timestep that already exited the pipeline is refused (its fate is
    ``delivered``), and a second spill for an already-spilled timestep is
    absorbed into the existing record rather than double-counted — one
    segment per timestep is what replay re-delivers.
    """

    def __init__(self, is_delivered: Optional[Callable[[int], bool]] = None):
        self.records: List[SpillRecord] = []
        self.subscribers: List[Callable[[SpillRecord, "SpillLedger"], None]] = []
        self._is_delivered = is_delivered or (lambda step: False)
        self._by_step: Dict[int, SpillRecord] = {}
        self._next_seq = 0
        #: refused records (timestep already delivered)
        self.suppressed = 0
        #: duplicate spills folded into an existing record
        self.absorbed = 0

    def record(
        self,
        timestep: int,
        stage: str,
        reason: str,
        time: float,
        nbytes: float,
        chunk_id: Optional[int] = None,
    ) -> Optional[SpillRecord]:
        """Record a spill decision; returns the new record, or None if the
        timestep already has a fate (delivered, or already spilled)."""
        if reason not in SPILL_REASONS:
            raise ValueError(
                f"unknown spill reason {reason!r}; legal: {SPILL_REASONS}"
            )
        if self._is_delivered(timestep):
            self.suppressed += 1
            REGISTRY.count("failover.spill_suppressed")
            return None
        if timestep in self._by_step:
            self.absorbed += 1
            REGISTRY.count("failover.spill_absorbed")
            return None
        record = SpillRecord(
            timestep=timestep,
            stage=stage,
            reason=reason,
            time=time,
            seq=self._next_seq,
            nbytes=float(nbytes),
            digest=segment_digest(stage, timestep, reason, nbytes),
            chunk_id=chunk_id,
        )
        self._next_seq += 1
        self.records.append(record)
        self._by_step[timestep] = record
        REGISTRY.count("failover.spilled")
        for subscriber in self.subscribers:
            subscriber(record, self)
        return record

    # -- fate transitions -----------------------------------------------------------

    def mark_replayed(self, seq: int, time: float) -> None:
        self._settle(seq, "replayed", time)
        REGISTRY.count("failover.replayed")

    def mark_superseded(self, seq: int, time: float) -> None:
        self._settle(seq, "superseded", time)
        REGISTRY.count("failover.superseded")

    def _settle(self, seq: int, status: str, time: float) -> None:
        record = self.records[seq]
        if record.seq != seq:  # records are appended in seq order
            record = next(r for r in self.records if r.seq == seq)
        if record.status != "spilled":
            raise ValueError(
                f"spill seq {seq} already settled as {record.status!r}"
            )
        record.status = status
        record.settled_at = time

    # -- views ----------------------------------------------------------------------

    def steps(self) -> set:
        """Timesteps with a spill record (any status)."""
        return set(self._by_step)

    def record_for(self, timestep: int) -> Optional[SpillRecord]:
        return self._by_step.get(timestep)

    def pending(self) -> List[SpillRecord]:
        """Records still owed replay, in spill (seq) order."""
        return [r for r in self.records if r.status == "spilled"]

    def replayed_steps(self) -> set:
        return {r.timestep for r in self.records if r.status == "replayed"}

    def by_reason(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts

    def by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def spill_fraction(self, total_steps: int) -> float:
        return len(self._by_step) / total_steps if total_steps else 0.0

    def as_dicts(self) -> List[dict]:
        return [r.as_dict() for r in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"<SpillLedger {len(self.records)} records "
            f"pending={len(self.pending())} suppressed={self.suppressed}>"
        )


@dataclass
class Segment:
    """Bookkeeping for one durable spill segment."""

    seq: int
    name: str
    digest: str
    nbytes: float
    durable_at: float


class SpillStore:
    """Sequenced, content-digested segments on a dedicated file system.

    The spill path's durability: each spilled timestep becomes one ``.bp``
    segment whose name encodes (stage, timestep, seq) and whose attributes
    carry the digest and provenance.  Reads block until the segment is
    durable, so a replay racing an in-flight spill write waits instead of
    missing data.
    """

    def __init__(
        self,
        env: Environment,
        stripes: int = 4,
        per_stream_bandwidth: float = 500 * 2**20,
        metadata_latency: float = 2e-3,
    ):
        self.env = env
        self.fs = ParallelFileSystem(
            env,
            stripes=stripes,
            per_stream_bandwidth=per_stream_bandwidth,
            metadata_latency=metadata_latency,
        )
        self.segments: List[Segment] = []
        self._durable: Dict[int, Event] = {}
        #: monitoring
        self.writes_started = 0

    @staticmethod
    def segment_name(record: SpillRecord) -> str:
        return (
            f"spill/{record.stage}/ts{record.timestep:06d}"
            f".seq{record.seq:06d}.bp"
        )

    def _durable_event(self, seq: int) -> Event:
        event = self._durable.get(seq)
        if event is None:
            event = Event(self.env)
            self._durable[seq] = event
        return event

    def write_segment(self, node, record: SpillRecord):
        """Process: persist ``record`` as a segment; fires when durable."""
        return self.env.process(
            self._write_segment(node, record),
            name=("spill-write:{}", record.seq),
        )

    def _write_segment(self, node, record: SpillRecord):
        self.writes_started += 1
        name = self.segment_name(record)
        yield self.fs.write(
            node,
            name,
            record.nbytes,
            attributes={
                "digest": record.digest,
                "reason": record.reason,
                "stage": record.stage,
                "timestep": record.timestep,
                "seq": record.seq,
                "spilled_at": record.time,
            },
        )
        segment = Segment(
            seq=record.seq,
            name=name,
            digest=record.digest,
            nbytes=record.nbytes,
            durable_at=self.env.now,
        )
        self.segments.append(segment)
        event = self._durable_event(record.seq)
        if not event.triggered:
            event.succeed(segment)
        return segment

    def read_segment(self, node, record: SpillRecord):
        """Process: read ``record``'s segment back (waits for durability)."""
        return self.env.process(
            self._read_segment(node, record),
            name=("spill-read:{}", record.seq),
        )

    def _read_segment(self, node, record: SpillRecord):
        event = self._durable_event(record.seq)
        if not event.triggered:
            yield event
        file_record = yield self.fs.read(node, self.segment_name(record))
        if file_record.attributes.get("digest") != record.digest:
            raise ValueError(
                f"digest mismatch reading spill seq {record.seq}: "
                f"{file_record.attributes.get('digest')} != {record.digest}"
            )
        return file_record

    @property
    def durable_count(self) -> int:
        return len(self.segments)

    def __repr__(self) -> str:
        return f"<SpillStore {len(self.segments)} durable segments>"
