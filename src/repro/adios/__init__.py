"""ADIOS-like I/O layer: declarative groups, swappable transport methods.

The paper uses the ADIOS read/write interface to define component inputs and
outputs, so components can swap I/O methods without code changes.  Two
methods matter for the experiments:

* :class:`DataTapMethod` — staging transport (the online path);
* :class:`PosixMethod` — write to the parallel file system, with provenance
  attributes attached (the path taken when a container is moved *offline*:
  "each component replica in the upstream container has to switch its output
  method within ADIOS to write to disk using the attribute system to mark
  the provenance").

A real on-disk serializer (:mod:`repro.adios.bp`, a BP-lite binary format
for dicts of NumPy arrays plus attributes) backs the examples, while the
simulated :class:`ParallelFileSystem` provides timing for in-simulation
writes.

The failover layer (:mod:`repro.adios.engine`, :mod:`repro.adios.spill`,
:mod:`repro.adios.failover`) adds an SST-style streaming method and a
degrade-to-disk spill/replay path behind one hot-swappable
:class:`Engine` API — see DESIGN.md §4k.
"""

from repro.adios.variable import AttributeSet, VarInfo
from repro.adios.group import Group
from repro.adios.filesystem import ParallelFileSystem
from repro.adios.bp import read_bp, write_bp
from repro.adios.read_api import BpSeries, BpStep
from repro.adios.methods import (
    DataTapMethod,
    PosixMethod,
    SstMethod,
    TransportMethod,
)
from repro.adios.api import AdiosStream
from repro.adios.engine import (
    DataTapEngine,
    Engine,
    EngineSwitch,
    FileEngine,
    SstEngine,
    SstStream,
    SstSubscriber,
)
from repro.adios.spill import (
    SPILL_REASONS,
    SPILL_STATUSES,
    SpillLedger,
    SpillRecord,
    SpillStore,
)
from repro.adios.failover import FailoverManager, FailoverPolicy

__all__ = [
    "AdiosStream",
    "BpSeries",
    "BpStep",
    "AttributeSet",
    "DataTapEngine",
    "DataTapMethod",
    "Engine",
    "EngineSwitch",
    "FailoverManager",
    "FailoverPolicy",
    "FileEngine",
    "Group",
    "ParallelFileSystem",
    "PosixMethod",
    "SPILL_REASONS",
    "SPILL_STATUSES",
    "SpillLedger",
    "SpillRecord",
    "SpillStore",
    "SstEngine",
    "SstMethod",
    "SstStream",
    "SstSubscriber",
    "TransportMethod",
    "VarInfo",
    "read_bp",
    "write_bp",
]
