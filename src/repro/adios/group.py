"""ADIOS groups: named sets of variable declarations."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.adios.variable import AttributeSet, VarInfo


class Group:
    """A declared I/O group (e.g. ``atoms``, ``bonds``, ``restart``).

    Components declare what they read and write as groups; the container
    framework uses these declarations as the components' "well-defined input
    and output interfaces".
    """

    def __init__(self, name: str, variables: Iterable[VarInfo] = (),
                 attributes: Optional[Dict] = None):
        if not name:
            raise ValueError("group name must be non-empty")
        self.name = name
        self._vars: Dict[str, VarInfo] = {}
        for var in variables:
            self.declare(var)
        self.attributes = AttributeSet(attributes)

    def declare(self, var: VarInfo) -> VarInfo:
        if var.name in self._vars:
            raise ValueError(f"variable {var.name!r} already declared in group {self.name!r}")
        self._vars[var.name] = var
        return var

    def var(self, name: str) -> VarInfo:
        return self._vars[name]

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def __iter__(self):
        return iter(self._vars.values())

    def __len__(self) -> int:
        return len(self._vars)

    def nbytes(self, bindings: Optional[Dict[str, int]] = None) -> int:
        """Total declared byte size of one timestep with the given bindings."""
        return sum(var.nbytes(bindings) for var in self._vars.values())

    def __repr__(self) -> str:
        return f"<Group {self.name!r} vars={list(self._vars)}>"


def lammps_atoms_group() -> Group:
    """The atoms output group LAMMPS emits each output epoch.

    Positions, velocities, types, and ids; 8 doubles per atom matches the
    ~8 B/atom ratio implied by Table II (67 MB / 8.82 M atoms ≈ 8 B — the
    paper streams a compact per-atom record; we declare ids only to keep
    the per-atom size at the measured 8 bytes).
    """
    return Group(
        "atoms",
        [
            VarInfo("id", "uint32", ("natoms",)),
            VarInfo("type", "uint32", ("natoms",)),
        ],
    )
