"""Variable and attribute metadata for ADIOS groups."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

#: dtype name -> bytes per element, for size accounting without real payloads
_DTYPE_SIZES = {
    "float32": 4,
    "float64": 8,
    "int32": 4,
    "int64": 8,
    "uint8": 1,
    "uint32": 4,
    "uint64": 8,
}


@dataclass(frozen=True)
class VarInfo:
    """Declared metadata for one output variable.

    ``dims`` uses symbolic sizes: an int is a fixed extent, a string names a
    runtime dimension (e.g. ``"natoms"``) resolved against a binding dict
    when sizing a timestep's output.
    """

    name: str
    dtype: str
    dims: Tuple = ()

    def __post_init__(self):
        if self.dtype not in _DTYPE_SIZES:
            raise ValueError(f"unsupported dtype {self.dtype!r}")
        for d in self.dims:
            if not isinstance(d, (int, str)):
                raise TypeError(f"dimension must be int or symbol, got {d!r}")
            if isinstance(d, int) and d < 0:
                raise ValueError(f"negative dimension {d}")

    @property
    def itemsize(self) -> int:
        return _DTYPE_SIZES[self.dtype]

    def nbytes(self, bindings: Optional[Dict[str, int]] = None) -> int:
        """Byte size of one timestep of this variable."""
        total = self.itemsize
        for d in self.dims:
            if isinstance(d, str):
                if not bindings or d not in bindings:
                    raise KeyError(f"unbound dimension {d!r} for variable {self.name!r}")
                d = bindings[d]
            total *= d
        return total

    def matches(self, array: np.ndarray, bindings: Optional[Dict[str, int]] = None) -> bool:
        """Whether a concrete array conforms to this declaration."""
        if str(array.dtype) != self.dtype:
            return False
        if len(array.shape) != len(self.dims):
            return False
        for actual, declared in zip(array.shape, self.dims):
            if isinstance(declared, int) and actual != declared:
                return False
            if isinstance(declared, str) and bindings and declared in bindings:
                if actual != bindings[declared]:
                    return False
        return True


class AttributeSet:
    """Ordered string-keyed attributes (ADIOS's attribute system).

    Used to label offline-written data with its processing provenance.
    """

    def __init__(self, initial: Optional[Dict[str, Any]] = None):
        self._attrs: Dict[str, Any] = dict(initial or {})

    def set(self, key: str, value: Any) -> None:
        if not isinstance(key, str) or not key:
            raise ValueError("attribute keys must be non-empty strings")
        self._attrs[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._attrs.get(key, default)

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._attrs)

    def __contains__(self, key: str) -> bool:
        return key in self._attrs

    def __len__(self) -> int:
        return len(self._attrs)

    def __repr__(self) -> str:
        return f"<AttributeSet {self._attrs!r}>"
