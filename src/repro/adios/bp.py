"""BP-lite: a real on-disk container for arrays + attributes.

A deliberately small binary format in the spirit of ADIOS-BP: a magic header,
a JSON metadata block (variable names, dtypes, shapes, byte offsets, and the
attribute set), then the raw C-contiguous array payloads.  Round-trips dicts
of NumPy arrays exactly; used by the examples to land analysis output on
disk with provenance attributes, just as the offline path of the paper does.

Layout::

    bytes 0..7    magic  b"BPLITE1\\n"
    bytes 8..15   little-endian uint64: header length H
    bytes 16..16+H  UTF-8 JSON header
    then          raw array bytes at the offsets recorded in the header
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Tuple, Union

import numpy as np

MAGIC = b"BPLITE1\n"


def write_bp(
    path: Union[str, Path],
    variables: Dict[str, np.ndarray],
    attributes: Dict[str, Any] | None = None,
) -> int:
    """Write arrays and attributes to ``path``; returns bytes written."""
    path = Path(path)
    arrays = {}
    for name, value in variables.items():
        array = np.ascontiguousarray(value)
        if array.dtype == object:
            raise TypeError(f"variable {name!r} has object dtype; only numeric arrays supported")
        arrays[name] = array

    entries = {}
    offset = 0
    for name, array in arrays.items():
        entries[name] = {
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": int(array.nbytes),
        }
        offset += array.nbytes

    header = json.dumps(
        {"variables": entries, "attributes": attributes or {}},
        separators=(",", ":"),
        default=_json_default,
    ).encode()

    with path.open("wb") as fh:
        fh.write(MAGIC)
        fh.write(len(header).to_bytes(8, "little"))
        fh.write(header)
        for array in arrays.values():
            fh.write(array.tobytes())
    return len(MAGIC) + 8 + len(header) + offset


def read_bp(path: Union[str, Path]) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Read a BP-lite file; returns (variables, attributes)."""
    path = Path(path)
    with path.open("rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"{path}: not a BP-lite file (magic={magic!r})")
        header_len = int.from_bytes(fh.read(8), "little")
        header = json.loads(fh.read(header_len).decode())
        base = fh.tell()
        variables = {}
        for name, entry in header["variables"].items():
            fh.seek(base + entry["offset"])
            raw = fh.read(entry["nbytes"])
            if len(raw) != entry["nbytes"]:
                raise ValueError(f"{path}: truncated payload for variable {name!r}")
            variables[name] = np.frombuffer(raw, dtype=entry["dtype"]).reshape(entry["shape"]).copy()
    return variables, header["attributes"]


def _json_default(obj):
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"attribute value {obj!r} is not JSON-serializable")
