"""Hot-swappable transport engines: one put() API over stream or file.

ADIOS2's central idea (Poeschel et al., PAPERS.md) is that file-based and
streaming transports sit behind one engine API, so a pipeline can change
how data moves without changing the code that moves it.  This module
reproduces that seam:

* :class:`SstEngine` — an SST-style publish/subscribe stream with
  *reader-side* flow control: each subscriber grants the publisher a
  bounded window of in-flight chunks, and the publisher blocks when a
  subscriber's window is exhausted.  Distinct from DataTap's
  metadata-push / RDMA-pull model (the reader never "pulls"; the
  publisher pushes whole chunks as windows open).
* :class:`FileEngine` — the degrade-to-disk transport: puts become
  sequenced, content-digested segments on a :class:`~repro.adios.spill.SpillStore`,
  readable later in order (the replay path).
* :class:`DataTapEngine` — an adapter over the legacy DataTap writer, so
  existing pipelines slot behind the same API unchanged.

:class:`EngineSwitch` holds one engine per transport name and the
failover state machine (live → spilling → replaying → live); the
:class:`~repro.adios.failover.FailoverManager` drives its transitions.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.simkernel import Environment, Event, Resource
from repro.adios.spill import SpillLedger, SpillStore

#: failover states of a link's transport
LIVE = "live"
SPILLING = "spilling"
REPLAYING = "replaying"
FAILOVER_STATES = (LIVE, SPILLING, REPLAYING)


class Engine:
    """Abstract transport engine: ``put(chunk)`` moves one timestep."""

    name = "engine"

    def put(self, chunk, attributes: Optional[dict] = None):
        """Start moving ``chunk``; returns an event firing on completion."""
        raise NotImplementedError

    def close(self) -> None:
        pass


class SstSubscriber:
    """The consumer half of an SST stream.

    Holds a bounded window (a :class:`Resource`): the publisher acquires
    one slot per in-flight chunk and the slot is only returned when the
    consumer ``get()``s the chunk — reader-side flow control, enforced at
    the subscriber, not negotiated via credits.
    """

    def __init__(
        self,
        env: Environment,
        stream: "SstStream",
        name: str,
        node=None,
        window: int = 4,
    ):
        if window < 1:
            raise ValueError("subscriber window must be >= 1")
        self.env = env
        self.stream = stream
        self.name = name
        self.node = node
        self.window = window
        self._slots = Resource(env, capacity=window)
        self._queue: deque = deque()
        self._waiter: Optional[Event] = None
        #: every chunk consumed, in order: (time, timestep, digest-ish attrs)
        self.received: List[Tuple[float, Any, dict]] = []
        self.consumed = 0
        self.detached = False

    @property
    def backlog(self) -> int:
        """Chunks delivered but not yet consumed."""
        return len(self._queue)

    def _deliver(self, chunk, attributes: dict, slot) -> None:
        self._queue.append((chunk, attributes, slot))
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.succeed()

    def get(self):
        """Process: consume the next chunk (FIFO); frees its window slot."""
        return self.env.process(self._get(), name=("sst-get:{}", self.name))

    def _get(self):
        while not self._queue:
            if self._waiter is None:
                self._waiter = Event(self.env)
            yield self._waiter
        chunk, attributes, slot = self._queue.popleft()
        self._slots.release(slot)
        self.consumed += 1
        self.received.append((self.env.now, chunk, attributes))
        return chunk, attributes

    def detach(self) -> None:
        """Leave the stream; the publisher stops delivering to us."""
        self.detached = True
        self.stream.unsubscribe(self)

    def __repr__(self) -> str:
        return (
            f"<SstSubscriber {self.name!r} window={self.window} "
            f"backlog={self.backlog} consumed={self.consumed}>"
        )


class SstStream:
    """An SST-style publish/subscribe stream.

    ``publish()`` pushes a chunk to every subscriber, blocking on each
    subscriber's window before transferring (over the cluster network
    when both endpoints are known, else a zero-cost local handoff).
    Publication completes when every subscriber has the chunk buffered.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "sst",
        network=None,
    ):
        self.env = env
        self.name = name
        self.network = network
        self.subscribers: List[SstSubscriber] = []
        self.published = 0

    def subscribe(
        self, name: str, node=None, window: int = 4
    ) -> SstSubscriber:
        subscriber = SstSubscriber(self.env, self, name, node=node, window=window)
        self.subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: SstSubscriber) -> None:
        if subscriber in self.subscribers:
            self.subscribers.remove(subscriber)

    def publish(self, chunk, attributes: Optional[dict] = None, src_node=None):
        """Process: deliver ``chunk`` to every current subscriber."""
        return self.env.process(
            self._publish(chunk, dict(attributes or {}), src_node),
            name=("sst-pub:{}", self.name),
        )

    def _publish(self, chunk, attributes: dict, src_node):
        for subscriber in list(self.subscribers):
            if subscriber.detached:
                continue
            # Reader-side flow control: wait for a window slot *before*
            # moving any data toward this subscriber.
            slot = subscriber._slots.request()
            yield slot
            if subscriber.detached:
                subscriber._slots.release(slot)
                continue
            if (
                self.network is not None
                and src_node is not None
                and subscriber.node is not None
                and src_node is not subscriber.node
            ):
                yield self.network.transfer(
                    src_node, subscriber.node, chunk.nbytes
                )
            subscriber._deliver(chunk, attributes, slot)
        self.published += 1
        return chunk

    def __repr__(self) -> str:
        return (
            f"<SstStream {self.name!r} subscribers={len(self.subscribers)} "
            f"published={self.published}>"
        )


class SstEngine(Engine):
    """Engine adapter over an :class:`SstStream` publisher."""

    name = "sst"

    def __init__(self, stream: SstStream, src_node=None):
        self.stream = stream
        self.src_node = src_node

    def put(self, chunk, attributes: Optional[dict] = None):
        return self.stream.publish(chunk, attributes, src_node=self.src_node)


class FileEngine(Engine):
    """Engine adapter over a :class:`SpillStore`: puts become segments.

    Carries its own :class:`SpillLedger` for sequencing and digests when
    used standalone (e.g. as a history tee for cold-start replay); the
    failover layer instead passes the pipeline's shared ledger so all
    spill accounting lands in one place.
    """

    name = "file"

    def __init__(
        self,
        env: Environment,
        store: SpillStore,
        node,
        stage: str = "file",
        ledger: Optional[SpillLedger] = None,
        reason: str = "credit_collapse",
    ):
        self.env = env
        self.store = store
        self.node = node
        self.stage = stage
        self.ledger = ledger if ledger is not None else SpillLedger()
        self.reason = reason

    def put(self, chunk, attributes: Optional[dict] = None):
        record = self.ledger.record(
            chunk.timestep, self.stage, self.reason, self.env.now,
            nbytes=chunk.nbytes, chunk_id=getattr(chunk, "chunk_id", None),
        )
        if record is None:  # timestep already has a fate; durable no-op
            return self.env.timeout(0)
        return self.store.write_segment(self.node, record)

    def read_history(self, node, upto_seq: Optional[int] = None):
        """Process: read every recorded segment in seq order (the cold-start
        catch-up path); fires with the list of records read."""
        return self.env.process(self._read_history(node, upto_seq))

    def _read_history(self, node, upto_seq):
        out = []
        for record in list(self.ledger.records):
            if upto_seq is not None and record.seq > upto_seq:
                break
            yield self.store.read_segment(node, record)
            out.append(record)
        return out


class DataTapEngine(Engine):
    """Engine adapter over the legacy DataTap writer (metadata-push/pull)."""

    name = "datatap"

    def __init__(self, writer):
        self.writer = writer

    def put(self, chunk, attributes: Optional[dict] = None):
        return self.writer.write(chunk)


class EngineSwitch:
    """Per-link transport selection plus the failover state machine.

    Holds one engine per transport name; ``current`` names the live
    transport.  State transitions (live → spilling → replaying → live)
    are recorded with timestamps so the DST handover oracle can audit
    that every spill epoch was closed by a handover.
    """

    def __init__(
        self,
        name: str,
        engines: Optional[Dict[str, Engine]] = None,
        current: str = "datatap",
    ):
        self.name = name
        self.engines: Dict[str, Engine] = dict(engines or {})
        self.current = current
        self.state = LIVE
        #: (time, from_state, to_state) transitions, in order
        self.transitions: List[Tuple[float, str, str]] = []
        #: highest spill seq handed over at the last replay (None = never)
        self.watermark: Optional[int] = None

    @property
    def engine(self) -> Engine:
        return self.engines[self.current]

    def add_engine(self, engine: Engine, name: Optional[str] = None) -> None:
        self.engines[name or engine.name] = engine

    def switch_to(self, name: str) -> Engine:
        if name not in self.engines:
            raise KeyError(
                f"switch {self.name!r} has no engine {name!r}; "
                f"known: {sorted(self.engines)}"
            )
        self.current = name
        return self.engines[name]

    def put(self, chunk, attributes: Optional[dict] = None):
        return self.engine.put(chunk, attributes)

    def set_state(self, state: str, time: float) -> None:
        if state not in FAILOVER_STATES:
            raise ValueError(f"unknown failover state {state!r}")
        if state != self.state:
            self.transitions.append((time, self.state, state))
            self.state = state

    def __repr__(self) -> str:
        return (
            f"<EngineSwitch {self.name!r} current={self.current!r} "
            f"state={self.state}>"
        )
