"""The ADIOS-style streaming handle components write through."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.simkernel import Environment
from repro.simkernel.errors import SimulationError
from repro.data import DataChunk
from repro.adios.group import Group
from repro.adios.methods import TransportMethod


class AdiosStream:
    """A component's output handle: one group bound to a transport method.

    The method can be swapped at runtime (``set_method``) — this is the hook
    the offline protocol uses: when downstream containers are pruned, the
    upstream replicas switch from the DataTap method to POSIX and keep
    running, with provenance recorded in the attribute system.
    """

    def __init__(self, env: Environment, group: Group, method: TransportMethod,
                 name: str = "stream"):
        self.env = env
        self.group = group
        self.name = name
        self._method = method
        #: monitoring
        self.chunks_out = 0
        self.method_switches = 0

    @property
    def method(self) -> TransportMethod:
        return self._method

    def set_method(self, method: TransportMethod) -> TransportMethod:
        """Swap the transport method; returns the previous one."""
        previous, self._method = self._method, method
        self.method_switches += 1
        return previous

    def write(self, chunk: DataChunk, attributes: Optional[Dict[str, Any]] = None):
        """Write one timestep's chunk through the current method."""
        if chunk.nbytes < 0:
            raise SimulationError(f"chunk with negative size on stream {self.name!r}")
        self.chunks_out += 1
        merged = self.group.attributes.as_dict()
        if attributes:
            merged.update(attributes)
        return self._method.write_chunk(chunk, merged)
