"""The invariant catalogue: always-on oracles over a running pipeline.

Each :class:`Invariant` states a property that must hold on *every*
schedule and under *every* fault plan — the correctness claims the DST
harness checks while :class:`~repro.dst.scenario.DSTScenario` sweeps
seeds.  Checkers are registered in :data:`INVARIANTS` and instantiated
per run by :class:`InvariantMonitor`, which sweeps them periodically in
simulated time and once more after the run settles (``final=True``,
where quiescent-only properties such as full node-pool coverage become
checkable).

Checkers must be *sound on legal schedules*: a property that can be
transiently violated mid-protocol (nodes in flight during a resize, a
timestep between pull and ack) is only asserted at quiescence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.perf.registry import REGISTRY


@dataclass(frozen=True)
class Violation:
    """One invariant violation: which oracle, when, and what it saw."""

    invariant: str
    time: float
    detail: str

    def as_dict(self) -> dict:
        return {"invariant": self.invariant, "time": self.time, "detail": self.detail}


class Invariant:
    """Base class: subclasses override :meth:`check` (and optionally keep
    state across sweeps, reset via :meth:`reset`)."""

    name = "invariant"

    def reset(self, pipe) -> None:
        """Called once before the run starts."""

    def check(self, pipe, final: bool) -> List[str]:
        """Return a list of problem strings (empty = invariant holds)."""
        raise NotImplementedError


#: name -> checker class; ``InvariantMonitor`` instantiates from here.
INVARIANTS: Dict[str, Type[Invariant]] = {}


def register(cls: Type[Invariant]) -> Type[Invariant]:
    INVARIANTS[cls.name] = cls
    return cls


def _quiescent(pipe) -> bool:
    """No control-plane protocol is mid-flight."""
    return all(t.status != "running" for t in pipe.control_trace.records)


@register
class NodeConservation(Invariant):
    """Spare pool + container allocations + quarantined = cluster size.

    During the run only schedule-independent facts are asserted (the free
    list holds no duplicates and no crashed or container-held node); full
    pool coverage is asserted at quiescence, when no protocol holds nodes
    in flight.
    """

    name = "node_conservation"

    def check(self, pipe, final: bool) -> List[str]:
        census = pipe.node_census()
        pool, free = census["pool"], census["free"]
        failed, held = census["failed"], census["held"]
        problems: List[str] = []
        dupes = sorted({n for n in free if free.count(n) > 1})
        if dupes:
            problems.append(f"free list holds duplicates: {dupes}")
        free_set = set(free)
        leaked_failed = sorted(free_set & failed)
        if leaked_failed:
            problems.append(f"crashed nodes back in the free pool: {leaked_failed}")
        stray = sorted(free_set - pool)
        if stray:
            problems.append(f"free list holds nodes outside the pool: {stray}")
        if final and _quiescent(pipe):
            double = sorted(free_set & held)
            if double:
                problems.append(f"nodes both free and container-held: {double}")
            missing = sorted(pool - free_set - held - failed)
            if missing:
                problems.append(
                    f"nodes unaccounted for (not free, held, or failed): {missing}"
                )
        return problems


@register
class ExactlyOnceDelivery(Invariant):
    """Every timestep exits the pipeline at most once — and, if the driver
    finished, exactly once.

    The DataTap custody chain (retained buffers, link-level dedup,
    redelivery on crash) exists precisely so that a crash neither loses a
    timestep nor delivers it twice; ``pipe.end_to_end`` records the exits.
    """

    name = "exactly_once_delivery"

    def __init__(self):
        self._finished = False

    def note_finished(self, finished: bool) -> None:
        self._finished = finished

    def check(self, pipe, final: bool) -> List[str]:
        exits = [step for _, step, _ in pipe.end_to_end]
        problems: List[str] = []
        # A fan-out topology has several sink stages, each owed the full
        # stream once — duplicates are per (sink, timestep), not per step.
        exit_log = getattr(pipe, "exit_log", None)
        pairs = (
            [(sink, step) for _, sink, step in exit_log]
            if exit_log is not None else [(None, s) for s in exits]
        )
        if len(pairs) != len(set(pairs)):
            dupes = sorted({p[1] for p in pairs if pairs.count(p) > 1})
            problems.append(f"timesteps delivered more than once: {dupes}")
        if final and self._finished and pipe.driver is not None:
            expected = pipe.driver.workload.total_steps
            ledger = getattr(pipe, "shed_ledger", None)
            shed = ledger.steps() if ledger is not None else set()
            spill = getattr(pipe, "spill_ledger", None)
            spilled = spill.steps() if spill is not None else set()
            missing = set(range(expected)) - set(exits) - shed - spilled
            if missing:
                problems.append(
                    f"timesteps neither delivered, shed, nor spilled: "
                    f"{sorted(missing)[:10]}"
                    f"{'...' if len(missing) > 10 else ''}"
                )
        return problems


@register
class ShedAccounting(Invariant):
    """Under overload, exactly-once generalizes to exactly-one-fate: every
    emitted timestep is either delivered end-to-end or attributed to
    exactly one shed decision — never both, never neither, never two
    distinct decisions.

    The :class:`~repro.overload.shed.ShedLedger` records each decision
    (backpressure stride skip, container stride skip, offline prune); its
    delivery-aware guard suppresses records for already-exited timesteps,
    so an overlap here means custody accounting broke.
    """

    name = "shed_accounting"

    def __init__(self):
        self._finished = False

    def note_finished(self, finished: bool) -> None:
        self._finished = finished

    def check(self, pipe, final: bool) -> List[str]:
        ledger = getattr(pipe, "shed_ledger", None)
        if ledger is None:
            return []
        problems: List[str] = []
        delivered = {step for _, step, _ in pipe.end_to_end}
        overlap = delivered & ledger.steps()
        if overlap:
            problems.append(
                f"timesteps both delivered and shed: {sorted(overlap)[:10]}"
            )
        for step, decisions in ledger.decisions().items():
            if len(decisions) > 1:
                problems.append(
                    f"timestep {step} attributed to multiple shed decisions: "
                    f"{sorted(decisions)}"
                )
        spill = getattr(pipe, "spill_ledger", None)
        spilled = spill.steps() if spill is not None else set()
        two_fates = spilled & ledger.steps()
        if two_fates:
            problems.append(
                f"timesteps both shed and spilled: {sorted(two_fates)[:10]}"
            )
        if final and self._finished and pipe.driver is not None:
            expected = pipe.driver.workload.total_steps
            missing = set(range(expected)) - delivered - ledger.steps() - spilled
            if missing:
                problems.append(
                    f"timesteps with no fate (neither delivered, shed, nor "
                    f"spilled): "
                    f"{sorted(missing)[:10]}{'...' if len(missing) > 10 else ''}"
                )
        return problems


@register
class SpillReplayConservation(Invariant):
    """The spill path loses nothing and invents nothing.

    On failover pipelines (``pipe.spill_ledger`` attached):

    * a spilled timestep is never also shed (one fate per step);
    * every record's content digest matches a recomputation from its
      identity fields (the segment the store wrote is the segment the
      ledger owes);
    * a ``replayed`` or ``superseded`` record's timestep was actually
      delivered end-to-end, and a replayed one was delivered by the
      replay sink exactly once;
    * settled records carry a settle time at or after the spill time.

    No-op without a spill ledger (legacy pipelines have nothing to audit).
    """

    name = "spill_replay_conservation"

    def check(self, pipe, final: bool) -> List[str]:
        spill = getattr(pipe, "spill_ledger", None)
        if spill is None:
            return []
        from repro.adios.spill import segment_digest

        problems: List[str] = []
        shed = getattr(pipe, "shed_ledger", None)
        if shed is not None:
            overlap = spill.steps() & shed.steps()
            if overlap:
                problems.append(
                    f"timesteps both spilled and shed: {sorted(overlap)[:10]}"
                )
        delivered = {step for _, step, _ in pipe.end_to_end}
        replay_exits = [
            step for _, sink, step in getattr(pipe, "exit_log", [])
            if sink == "replay"
        ]
        dupes = sorted({s for s in replay_exits if replay_exits.count(s) > 1})
        if dupes:
            problems.append(f"timesteps replayed more than once: {dupes}")
        for record in spill.records:
            expect = segment_digest(
                record.stage, record.timestep, record.reason, record.nbytes
            )
            if record.digest != expect:
                problems.append(
                    f"seq {record.seq} digest mismatch: ledger {record.digest} "
                    f"!= identity {expect}"
                )
            if record.status in ("replayed", "superseded"):
                if record.timestep not in delivered:
                    problems.append(
                        f"seq {record.seq} marked {record.status} but "
                        f"timestep {record.timestep} never exited"
                    )
                if record.settled_at is None or record.settled_at < record.time:
                    problems.append(
                        f"seq {record.seq} settled at {record.settled_at}, "
                        f"before its spill at {record.time}"
                    )
            if record.status == "replayed" and record.timestep not in replay_exits:
                problems.append(
                    f"seq {record.seq} marked replayed but timestep "
                    f"{record.timestep} has no replay-sink exit"
                )
        return problems


@register
class NoGapNoDupAfterHandover(Invariant):
    """Every replay→live handover is gapless and duplicate-free.

    For each completed ``replay_catchup`` handover: the snapshot batch is
    fully settled (replayed ∪ superseded == expected, disjoint), segments
    were delivered in strictly increasing sequence order, the watermark is
    the batch maximum, and no sequence number is claimed by two handovers.

    No-op without a failover manager.
    """

    name = "no_gap_no_dup_after_handover"

    def check(self, pipe, final: bool) -> List[str]:
        failover = getattr(pipe, "failover", None)
        if failover is None:
            return []
        problems: List[str] = []
        claimed: Dict[int, float] = {}
        for hand in failover.handovers:
            head = f"handover@{hand['time']}"
            expected = set(hand["expected"])
            replayed = set(hand["replayed"])
            superseded = set(hand["superseded"])
            if replayed & superseded:
                problems.append(
                    f"{head}: seqs both replayed and superseded: "
                    f"{sorted(replayed & superseded)}"
                )
            gaps = expected - replayed - superseded
            if gaps:
                problems.append(
                    f"{head}: unsettled seqs at handover (gap): {sorted(gaps)}"
                )
            extra = (replayed | superseded) - expected
            if extra:
                problems.append(
                    f"{head}: settled seqs outside the snapshot: {sorted(extra)}"
                )
            if expected and hand["watermark"] != max(expected):
                problems.append(
                    f"{head}: watermark {hand['watermark']} != batch max "
                    f"{max(expected)}"
                )
            order = hand["order"]
            if any(b <= a for a, b in zip(order, order[1:])):
                problems.append(f"{head}: replay out of sequence order: {order}")
            for seq in expected:
                if seq in claimed:
                    problems.append(
                        f"{head}: seq {seq} already claimed by "
                        f"handover@{claimed[seq]} (duplicate)"
                    )
                claimed[seq] = hand["time"]
        return problems


@register
class ControlPlaneWellFormed(Invariant):
    """Every finished protocol trace is structurally sound: rounds in
    order, committed traces uncompensated, aborted traces compensated in
    reverse execution order (see :meth:`ProtocolTrace.audit`)."""

    name = "controlplane_well_formed"

    def check(self, pipe, final: bool) -> List[str]:
        problems: List[str] = []
        for trace in pipe.control_trace.records:
            if trace.status == "running":
                continue
            problems.extend(trace.audit())
        return problems


@register
class D2TPresumedAbort(Invariant):
    """D2T safety: a transaction commits only on a full, unanimous yes.

    Presumed abort means any silence (a timed-out group) or any no vote
    must yield an abort decision; a recorded commit with a missing or
    negative vote is a protocol violation.
    """

    name = "d2t_presumed_abort"

    @staticmethod
    def audit_outcomes(outcomes) -> List[str]:
        problems: List[str] = []
        for out in outcomes:
            head = f"txn-{out.txn_id}"
            if out.committed:
                if not out.votes:
                    problems.append(f"{head}: committed with no votes collected")
                elif not all(out.votes):
                    problems.append(f"{head}: committed over a no vote: {out.votes}")
                if out.timed_out_groups:
                    problems.append(
                        f"{head}: committed despite timed-out groups "
                        f"{out.timed_out_groups} (presumed abort)"
                    )
            if out.decided_at < out.started_at or out.finished_at < out.decided_at:
                problems.append(f"{head}: non-monotone phase timestamps")
        return problems

    def check(self, pipe, final: bool) -> List[str]:
        tm = getattr(pipe.global_manager, "transaction_manager", None)
        if tm is None or getattr(tm, "coordinator", None) is None:
            return []
        return self.audit_outcomes(tm.coordinator.outcomes)


@register
class MonotonePerf(Invariant):
    """Accounting only accumulates: perf timers/counters never decrease
    between sweeps, per-timer stats stay ordered (min <= mean <= max), and
    wall-clock-indexed telemetry series are recorded in time order
    (``*_by_step`` series are indexed by timestep, not time, and exempt).
    """

    name = "monotone_perf"

    def __init__(self):
        self._timers: Dict[str, tuple] = {}
        self._counters: Dict[str, int] = {}

    def reset(self, pipe) -> None:
        self._timers.clear()
        self._counters.clear()

    def check(self, pipe, final: bool) -> List[str]:
        problems: List[str] = []
        for name, stats in REGISTRY._timers.items():
            prev = self._timers.get(name)
            cur = (stats.calls, stats.total_seconds)
            if prev is not None and (cur[0] < prev[0] or cur[1] < prev[1] - 1e-12):
                problems.append(f"timer {name!r} went backwards: {prev} -> {cur}")
            self._timers[name] = cur
            if stats.calls and not (
                stats.min_seconds - 1e-12
                <= stats.mean_seconds
                <= stats.max_seconds + 1e-12
            ):
                problems.append(f"timer {name!r} stats out of order: {stats.as_dict()}")
        for name, value in REGISTRY._counters.items():
            prev = self._counters.get(name)
            if prev is not None and value < prev:
                problems.append(f"counter {name!r} went backwards: {prev} -> {value}")
            self._counters[name] = value
        for (scope, metric), series in pipe.telemetry._series.items():
            if metric.endswith("_by_step"):
                continue
            times = series.times
            for i in range(1, len(times)):
                if times[i] < times[i - 1]:
                    problems.append(
                        f"series {scope}.{metric} recorded out of time order "
                        f"at index {i}: {times[i - 1]} -> {times[i]}"
                    )
                    break
        return problems


@register
class PredictiveActionsBounded(Invariant):
    """Forecast-driven actions stay evidenced and rung-by-rung.

    On predictive pipelines (``pipe.analytics`` attached) three properties
    must hold on every schedule:

    * every proactive transition in the degradation trace is preceded by
      recorded forecaster evidence — a ``signal.*`` sample in the series
      store at or before the transition time (the controllers emit the
      signal *before* executing the protocol);
    * the ladder never skips rungs: consecutive transitions of one
      controller kind change its level by exactly one; and
    * forecast-built rungs stay bounded and harmless — at most
      ``max_proactive_level`` proactive rungs on the brownout stack at
      once, and every proactive brownout action is one of the configured
      non-shedding ``proactive_kinds``.

    No-op on reactive pipelines: without the forecaster stack there is
    nothing proactive to audit.
    """

    name = "predictive_actions_bounded"

    def check(self, pipe, final: bool) -> List[str]:
        analytics = getattr(pipe, "analytics", None)
        if analytics is None:
            return []
        problems: List[str] = []
        store = analytics.store
        signal_times = [
            ts
            for name in store.names() if name.startswith("signal.")
            for ts, _ in store.get(name).window()
        ]
        trace = pipe.degradation
        levels: Dict[str, int] = {}
        for step in trace.steps:
            prev = levels.get(step.kind, 0)
            if abs(step.level - prev) != 1:
                problems.append(
                    f"{step.kind} ladder skipped rungs at t={step.time}: "
                    f"level {prev} -> {step.level} ({step.action})"
                )
            levels[step.kind] = step.level
            if not step.detail.get("proactive"):
                continue
            if not any(ts <= step.time for ts in signal_times):
                problems.append(
                    f"proactive {step.kind}/{step.action} at t={step.time} "
                    f"has no preceding forecaster signal in the store"
                )
            if (step.kind == "brownout"
                    and step.action not in analytics.config.proactive_kinds):
                problems.append(
                    f"proactive brownout action {step.action!r} at "
                    f"t={step.time} outside proactive_kinds "
                    f"{analytics.config.proactive_kinds}"
                )
        brownout = getattr(pipe, "brownout", None)
        if brownout is not None and brownout.predictor is not None:
            cap = brownout.predictor.config.max_proactive_level
            count = sum(
                1 for entry in brownout._stack if entry[-1] == "proactive"
            )
            if count > cap:
                problems.append(
                    f"{count} proactive rungs on the brownout stack "
                    f"exceeds max_proactive_level {cap}"
                )
        return problems


@register
class NoCrossTenantNodeLeak(Invariant):
    """Fleet-wide exclusivity: every staging node lives in exactly one
    place — one tenant's pool or the arbiter's spare list — and each
    tenant's free list stays inside its own pool.

    No-op on single-pipeline runs (``pipe.fleet is None``): always-on, but
    only a fleet has cross-tenant structure to leak across.
    """

    name = "no_cross_tenant_node_leak"

    def check(self, pipe, final: bool) -> List[str]:
        fleet = getattr(pipe, "fleet", None)
        if fleet is None:
            return []
        problems: List[str] = []
        owner: Dict[int, str] = {}
        for name in sorted(fleet.tenants):
            sched = fleet.tenants[name].pipe.scheduler
            pool_ids = set()
            for node in sched.pool.nodes:
                if node.node_id in owner:
                    problems.append(
                        f"node {node.node_id} in two tenant pools: "
                        f"{owner[node.node_id]!r} and {name!r}"
                    )
                owner[node.node_id] = name
                pool_ids.add(node.node_id)
            stray = sorted(
                {n.node_id for n in sched._free} - pool_ids
            )
            if stray:
                problems.append(
                    f"tenant {name!r} free list holds nodes outside its pool: {stray}"
                )
        for node in fleet.arbiter.spares:
            if node.node_id in owner:
                problems.append(
                    f"node {node.node_id} both an arbiter spare and held by "
                    f"{owner[node.node_id]!r}"
                )
        return problems


@register
class QuotaConservation(Invariant):
    """Fleet-wide conservation: Σ tenant holdings + arbiter spares equals
    the registered pool size, and no tenant exceeds its burst ceiling.

    Two layers: the arbiter audits itself after *every* mutation (event
    time) and parks failures in ``arbiter.violations``; this oracle drains
    that list each sweep and re-checks the census independently (so a
    mutation that bypassed the arbiter is still caught).  No-op without a
    fleet.
    """

    name = "quota_conservation"

    def check(self, pipe, final: bool) -> List[str]:
        fleet = getattr(pipe, "fleet", None)
        if fleet is None:
            return []
        arbiter = fleet.arbiter
        problems: List[str] = list(arbiter.violations)
        total = len(arbiter.spares) + sum(
            len(t.pipe.scheduler.pool.nodes) for t in fleet.tenants.values()
        )
        if total != arbiter._expected_total:
            problems.append(
                f"sweep census: holdings+spares = {total}, "
                f"expected {arbiter._expected_total}"
            )
        for name in sorted(fleet.tenants):
            quota = arbiter.tenants[name].quota
            held = len(fleet.tenants[name].pipe.scheduler.pool.nodes)
            if held > quota.burst:
                problems.append(
                    f"sweep census: tenant {name!r} holds {held} > burst {quota.burst}"
                )
        return problems


class InvariantMonitor:
    """Periodically sweeps a set of invariant checkers over a pipeline.

    Attach before (or just after) ``pipe.run()`` starts; the monitor
    re-checks every ``interval`` simulated seconds and deduplicates
    repeated reports of the same problem.  Call :meth:`finish` after the
    run for the final (quiescence-aware) sweep and the violation list.
    """

    def __init__(self, pipe, invariants: Optional[List[str]] = None,
                 interval: float = 10.0):
        self.pipe = pipe
        names = list(INVARIANTS) if invariants is None else list(invariants)
        unknown = [n for n in names if n not in INVARIANTS]
        if unknown:
            raise ValueError(f"unknown invariants {unknown}; known: {sorted(INVARIANTS)}")
        self.checkers: List[Invariant] = [INVARIANTS[n]() for n in names]
        for checker in self.checkers:
            checker.reset(pipe)
        self.violations: List[Violation] = []
        self._seen = set()
        self.sweeps = 0
        self.interval = interval
        self._proc = pipe.env.process(self._loop(), name="dst-monitor")

    def _loop(self):
        while True:
            yield self.pipe.env.timeout(self.interval)
            self.sweep(final=False)

    def sweep(self, final: bool) -> None:
        self.sweeps += 1
        now = self.pipe.env.now
        for checker in self.checkers:
            try:
                problems = checker.check(self.pipe, final)
            except Exception as exc:  # noqa: BLE001 - a broken oracle is a finding
                problems = [f"checker raised {exc!r}"]
            for problem in problems:
                key = (checker.name, problem)
                if key in self._seen:
                    continue
                self._seen.add(key)
                self.violations.append(Violation(checker.name, now, problem))

    def note_finished(self, finished: bool) -> None:
        for checker in self.checkers:
            if hasattr(checker, "note_finished"):
                checker.note_finished(finished)

    def finish(self) -> List[Violation]:
        self.sweep(final=True)
        return self.violations
