"""Seed sweeps: run one scenario across many interleavings.

``explore`` is the harness's outer loop — the FoundationDB move of
checking the same invariants over N reproducible schedules instead of
one.  It stops at the first violating seed and hands back that run's
full :class:`~repro.dst.scenario.DSTReport`, ready for
:func:`repro.dst.shrink.shrink` to minimize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.dst.scenario import DSTReport, DSTScenario


@dataclass
class Exploration:
    """Result of a seed sweep."""

    scenario: str
    seeds_run: List[int]
    failure: Optional[DSTReport]

    @property
    def ok(self) -> bool:
        return self.failure is None

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seeds_run": list(self.seeds_run),
            "ok": self.ok,
            "failure": None if self.failure is None else self.failure.as_dict(),
        }


def explore(scenario: DSTScenario, seeds: Iterable[int]) -> Exploration:
    """Run ``scenario`` under each seed, stopping at the first violation."""
    seeds_run: List[int] = []
    for seed in seeds:
        seed = int(seed)
        seeds_run.append(seed)
        report = scenario.run(seed)
        if not report.ok:
            return Exploration(scenario.name, seeds_run, report)
    return Exploration(scenario.name, seeds_run, None)
