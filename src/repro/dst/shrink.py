"""Greedy fault-plan minimization for violation repro reports.

Once :func:`repro.dst.explorer.explore` finds a violating seed, the
shrinker removes fault events one at a time, re-running the scenario
under the *same* seed after each removal and keeping any removal that
still violates.  The fixpoint is a 1-minimal plan: dropping any single
remaining event makes the violation disappear — the smallest repro the
greedy strategy can certify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.faults.plan import FaultPlan
from repro.dst.scenario import DSTScenario


@dataclass
class ShrinkResult:
    """A minimized plan plus how much work certification took."""

    plan: FaultPlan
    runs: int
    removed: int

    def as_dict(self) -> dict:
        return {
            "events": self.plan.as_dicts(),
            "signature": self.plan.signature(),
            "runs": self.runs,
            "removed": self.removed,
        }


def shrink(scenario: DSTScenario, seed, plan: FaultPlan,
           max_runs: int = 64) -> ShrinkResult:
    """Greedily minimize ``plan`` while the violation persists under ``seed``."""
    events: List = list(plan.events)
    original = len(events)
    runs = 0
    changed = True
    while changed and runs < max_runs:
        changed = False
        for i in range(len(events)):
            trial = events[:i] + events[i + 1:]
            report = scenario.run(seed, plan_override=plan.subset(trial))
            runs += 1
            if not report.ok:
                events = trial
                changed = True
                break
            if runs >= max_runs:
                break
    return ShrinkResult(plan.subset(events), runs, original - len(events))
