"""Pipeline presets: named, reproducible experiment configurations.

A preset is a zero-argument recipe producing a fully wired
:class:`~repro.containers.pipeline.Pipeline` on a given
:class:`~repro.simkernel.Environment` — the fixed half of a
:class:`~repro.dst.scenario.DSTScenario` (the variable half being the
fault plan and the schedule seed).  Each recipe is an overlay on a
bundled spec from :mod:`repro.spec` — the DST presets *are* specs, just
resized to keep a sweep of 20 seeds affordable in CI.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.simkernel import Environment
from repro.containers.pipeline import Pipeline
from repro.spec.build import build, load_preset

PresetFn = Callable[[Environment], Pipeline]

#: name -> builder; scenarios refer to presets by name so repro reports
#: stay self-describing.
PRESETS: Dict[str, PresetFn] = {}


def preset(name: str):
    def wrap(fn: PresetFn) -> PresetFn:
        PRESETS[name] = fn
        return fn

    return wrap


@preset("smoke")
def smoke(env: Environment) -> Pipeline:
    """The CI scenario: Figure-7 stage mix at 8 timesteps, fault tolerance
    on, two spare staging nodes for the recovery ladder to draw from."""
    return build(env, load_preset("fig7"))


@preset("overload")
def overload(env: Environment) -> Pipeline:
    """The overload scenario: tight staging buffers plus backpressure and
    the brownout ladder, driven against burst/ramp slowdown plans (see
    :func:`repro.overload.scenario.overload_burst_plan`)."""
    return build(env, load_preset("overload").override(workload=dict(steps=12)))


@preset("predictive")
def predictive(env: Environment) -> Pipeline:
    """The overload scenario under ``mode: predictive``: identical burst
    exposure, but the :mod:`repro.analytics` forecaster stack drives the
    controllers — the ``predictive_actions_bounded`` oracle audits its
    signal-before-action discipline on every schedule."""
    return build(env, load_preset("predictive").override(workload=dict(steps=12)))


@preset("failover")
def failover(env: Environment) -> Pipeline:
    """The overload scenario with degrade-to-disk failover attached: the
    same burst exposure, but every would-be shed spills to the store and
    is owed an eventual replay — the ``spill_replay_conservation`` and
    ``no_gap_no_dup_after_handover`` oracles audit the catch-up."""
    return build(env, load_preset("failover").override(workload=dict(steps=12)))


@preset("smoke_no_spares")
def smoke_no_spares(env: Environment) -> Pipeline:
    """Same mix with an empty spare pool: replacement must steal capacity,
    exercising the GM_REPLACE abort/degrade and TRADE paths."""
    return build(
        env,
        load_preset("fig7").override(
            workload=dict(staging_nodes=13, spare=0)
        ),
    )
