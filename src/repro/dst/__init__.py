"""Deterministic simulation testing (DST) for the I/O-container stack.

The harness FoundationDB made famous, specialized to this repository's
discrete-event world: because *everything* — cluster, transport,
containers, managers, faults — runs on one deterministic
:class:`~repro.simkernel.Environment`, a single integer seed pins a full
cluster-wide interleaving.  The pieces:

* **Schedule exploration** — ``Environment(tie_breaker=shuffle(seed))``
  permutes same-``(time, priority)`` event ties per seed
  (:mod:`repro.simkernel.core`); the default tie-breaker preserves the
  historical schedule bit-for-bit.
* **Invariant checkers** (:mod:`repro.dst.invariants`) — always-on
  oracles: node conservation, exactly-once timestep delivery,
  control-plane trace well-formedness, D2T presumed-abort safety,
  monotone perf accounting.
* **Scenarios, exploration, shrinking** (:mod:`repro.dst.scenario`,
  :mod:`repro.dst.explorer`, :mod:`repro.dst.shrink`) — a scenario is
  preset x fault plan x seed; the explorer sweeps seeds to the first
  violation; the shrinker minimizes the violating fault plan.

Reproduce any reported failure with the one-liner in the report::

    PYTHONPATH=src python -m repro.experiments dst --seed <N> --seeds 1
"""

from repro.dst.explorer import Exploration, explore
from repro.dst.invariants import (
    INVARIANTS,
    Invariant,
    InvariantMonitor,
    Violation,
    register,
)
from repro.dst.presets import PRESETS, preset
from repro.dst.scenario import (
    DSTReport,
    DSTScenario,
    default_smoke_plan,
    repro_command,
)
from repro.dst.shrink import ShrinkResult, shrink

__all__ = [
    "Exploration",
    "INVARIANTS",
    "Invariant",
    "InvariantMonitor",
    "PRESETS",
    "DSTReport",
    "DSTScenario",
    "ShrinkResult",
    "Violation",
    "default_smoke_plan",
    "explore",
    "preset",
    "register",
    "repro_command",
    "shrink",
]
