"""The DST scenario DSL: preset x fault plan x schedule seed.

A :class:`DSTScenario` names a pipeline preset, a fault-plan recipe, and
the invariants to watch; :meth:`DSTScenario.run` executes it under one
schedule seed and returns a :class:`DSTReport` — the self-contained
record of what happened, including the one-line command that replays the
exact run (same preset, same plan, same seed, same interleaving).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.simkernel import Environment, shuffle
from repro.containers.pipeline import Pipeline
from repro.faults.plan import FaultPlan
from repro.dst.invariants import InvariantMonitor, Violation
from repro.dst.presets import PRESETS
from repro.spec.build import register_fault_recipe

PlanFactory = Callable[[int, Pipeline], FaultPlan]


@register_fault_recipe("smoke")
def default_smoke_plan(seed: int, pipe: Pipeline) -> FaultPlan:
    """One mid-run crash of a non-essential replica plus one slowdown.

    Victims are drawn from the bonds/csym round-robin replicas *excluding*
    each container's first replica (which co-hosts its local manager) and
    the global manager's node, so the scenario is always recoverable —
    the invariants must then hold on every seed.
    """
    wl = pipe.driver.workload
    nominal = wl.total_steps * wl.output_interval
    rng = np.random.default_rng(seed if seed is not None else 0)
    gm_id = pipe.global_manager.node.node_id
    manager_ids = {m.node.node_id for m in pipe.managers.values()}
    candidates = []
    for name in ("bonds", "csym"):
        container = pipe.containers.get(name)
        if container is None:
            continue
        for replica in container.replicas[1:]:
            nid = replica.node.node_id
            if nid != gm_id and nid not in manager_ids:
                candidates.append(nid)
    plan = FaultPlan(seed=seed if seed is not None else 0)
    if not candidates:
        return plan
    victim = int(candidates[rng.integers(len(candidates))])
    plan.node_crash(float(rng.uniform(0.3, 0.7)) * nominal, victim)
    slow = int(candidates[rng.integers(len(candidates))])
    plan.node_slowdown(
        float(rng.uniform(0.2, 0.8)) * nominal, slow,
        factor=float(rng.uniform(1.5, 3.0)),
        duration=0.15 * nominal,
    )
    return plan


def overload_plan(seed: int, pipe: Pipeline) -> FaultPlan:
    """The overload schedule: a seeded burst/ramp slowdown (see
    :func:`repro.overload.scenario.overload_burst_plan`)."""
    from repro.overload.scenario import overload_burst_plan

    return overload_burst_plan(seed, pipe)


def plan_for(preset: str) -> PlanFactory:
    """The default plan factory for a preset name."""
    if preset in ("overload", "predictive", "failover"):
        return overload_plan
    return default_smoke_plan


@dataclass
class DSTReport:
    """Everything needed to understand — and replay — one scenario run."""

    scenario: str
    preset: str
    seed: Optional[int]
    finished: bool
    violations: List[Violation]
    plan_signature: Optional[str]
    plan_events: List[dict]
    event_log: List[list]
    repro: str

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "preset": self.preset,
            "seed": self.seed,
            "finished": self.finished,
            "ok": self.ok,
            "violations": [v.as_dict() for v in self.violations],
            "plan_signature": self.plan_signature,
            "plan_events": self.plan_events,
            "event_log": self.event_log,
            "repro": self.repro,
        }


@dataclass
class DSTScenario:
    """A named, fully reproducible test scenario.

    ``plan`` is either a concrete :class:`FaultPlan`, a factory called
    with ``(seed, pipe)`` once the pipeline exists (so schedules can
    target the concrete nodes stages landed on), or ``None`` for a
    fault-free run.  ``hook`` runs right after build — the place tests
    install deliberate bugs for the harness to catch.
    """

    name: str
    preset: str = "smoke"
    plan: Union[FaultPlan, PlanFactory, None] = default_smoke_plan
    invariants: Optional[List[str]] = None
    check_interval: float = 10.0
    settle: float = 120.0
    #: extra simulated seconds granted for recovery backlogs to drain
    #: before the exactly-once completeness check is enforced
    drain: float = 600.0
    hook: Optional[Callable[[Pipeline], None]] = field(default=None, repr=False)

    def build(self, seed: Optional[int]) -> Pipeline:
        if self.preset not in PRESETS:
            raise ValueError(f"unknown preset {self.preset!r}; known: {sorted(PRESETS)}")
        # seed=None runs the historical insertion-order schedule; an int
        # explores that seed's deterministic permutation of event ties.
        env = Environment() if seed is None else Environment(tie_breaker=shuffle(seed))
        return PRESETS[self.preset](env)

    def resolve_plan(self, seed: Optional[int], pipe: Pipeline) -> Optional[FaultPlan]:
        if self.plan is None:
            return None
        if isinstance(self.plan, FaultPlan):
            return self.plan
        return self.plan(seed if seed is not None else 0, pipe)

    def run(self, seed: Optional[int] = None,
            plan_override: Optional[FaultPlan] = None) -> DSTReport:
        pipe = self.build(seed)
        if self.hook is not None:
            self.hook(pipe)
        plan = plan_override if plan_override is not None else self.resolve_plan(seed, pipe)
        if plan is not None and plan.events:
            pipe.arm_faults(plan)
        monitor = InvariantMonitor(pipe, self.invariants, interval=self.check_interval)
        finished = pipe.run(settle=self.settle)
        if finished:
            self._drain(pipe)
        monitor.note_finished(finished)
        violations = monitor.finish()
        return DSTReport(
            scenario=self.name,
            preset=self.preset,
            seed=seed,
            finished=finished,
            violations=violations,
            plan_signature=plan.signature() if plan is not None else None,
            plan_events=plan.as_dicts() if plan is not None else [],
            event_log=self._event_log(pipe),
            repro=self._repro(seed),
        )

    def _repro(self, seed: Optional[int]) -> str:
        """The replay one-liner; subclasses extend it with their own flags."""
        return repro_command(seed, self.preset)

    def _drain(self, pipe: Pipeline) -> None:
        """Run on (bounded) until every timestep has exited the pipeline.

        A crash mid-run queues a recovery backlog whose tail can outlive
        ``settle``; giving that tail bounded extra time separates "still
        draining" from "timestep genuinely lost", which is what the
        exactly-once oracle must flag.
        """
        env = pipe.env
        expected = pipe.driver.workload.total_steps
        deadline = env.now + self.drain
        ledger = getattr(pipe, "shed_ledger", None)
        spill = getattr(pipe, "spill_ledger", None)
        while env.now < deadline:
            # a shed timestep has its fate already — only undecided
            # timesteps hold the drain open.  A *spilled* timestep has a
            # fate too, but is owed an eventual replay: keep draining
            # until the spill backlog settles (bounded by the deadline).
            fated = {step for _, step, _ in pipe.end_to_end}
            if ledger is not None:
                fated |= ledger.steps()
            if spill is not None:
                fated |= spill.steps()
            if len(fated) >= expected and (spill is None or not spill.pending()):
                return
            env.run(until=min(env.now + 30.0, deadline))

    @staticmethod
    def _event_log(pipe: Pipeline) -> List[list]:
        """Merged, time-ordered log: injected faults, telemetry marks, and
        finished control-plane protocols."""
        log: List[list] = []
        if pipe.fault_injector is not None:
            for entry in pipe.fault_injector.trace:
                log.append([float(entry[0]), "fault", *map(str, entry[1:])])
        for time, label in pipe.telemetry.events:
            log.append([float(time), "mark", label])
        for trace in pipe.control_trace.records:
            log.append([
                float(trace.started_at), "protocol", trace.protocol,
                trace.subject, trace.status, trace.abort_reason or "",
            ])
        log.sort(key=lambda row: row[0])
        return log


def repro_command(seed: Optional[int], scenario: str = "smoke") -> str:
    """The one-liner that replays this exact run."""
    cmd = "PYTHONPATH=src python -m repro.experiments dst"
    if seed is not None:
        cmd += f" --seed {seed}"
    cmd += " --seeds 1"
    if scenario != "smoke":
        cmd += f" --scenario {scenario}"
    return cmd
