"""Weak-scaling workloads matching Table II of the paper.

Table II (node count -> atoms -> output data size per timestep)::

    256    8,819,989   67 MB
    512   17,639,979  134.6 MB
    1024  35,279,958  269.2 MB

The atom counts scale almost exactly linearly (34,453 atoms/node) and the
output is 8 bytes per atom (the sizes are MiB: 134.6 MiB / 17,639,979 atoms
= 8.000 B).  The workload generator reproduces the table exactly at the
tabulated node counts and interpolates the same ratios elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Exact rows from Table II: node count -> (atoms, data bytes per timestep).
TABLE_II: Dict[int, tuple] = {
    256: (8_819_989, 67 * 2**20),
    512: (17_639_979, 134.6 * 2**20),
    1024: (35_279_958, 269.2 * 2**20),
}

#: Atoms per simulation node implied by the table.
ATOMS_PER_NODE = 8_819_989 / 256

#: Output bytes per atom implied by the table.
BYTES_PER_ATOM = (134.6 * 2**20) / 17_639_979


def atoms_for_nodes(node_count: int) -> int:
    """Atom count for a weak-scaling run on ``node_count`` simulation nodes."""
    if node_count <= 0:
        raise ValueError(f"node_count must be positive, got {node_count}")
    if node_count in TABLE_II:
        return TABLE_II[node_count][0]
    return round(node_count * ATOMS_PER_NODE)


def output_bytes_for_atoms(natoms: int) -> float:
    """Per-timestep output size for ``natoms`` atoms."""
    if natoms < 0:
        raise ValueError("natoms must be non-negative")
    return natoms * BYTES_PER_ATOM


@dataclass(frozen=True)
class WeakScalingWorkload:
    """One run configuration of the paper's weak-scaling experiments.

    ``output_interval`` defaults to the stressed cadence the latency
    experiments use: "LAMMPS output steps are generated more frequently than
    normal, every 15 seconds".
    """

    sim_nodes: int
    staging_nodes: int
    spare_staging_nodes: int = 0
    output_interval: float = 15.0
    total_steps: int = 40

    def __post_init__(self):
        if self.sim_nodes <= 0 or self.staging_nodes <= 0:
            raise ValueError("node counts must be positive")
        if self.spare_staging_nodes < 0 or self.spare_staging_nodes > self.staging_nodes:
            raise ValueError("spare nodes must be within the staging allocation")
        if self.output_interval <= 0:
            raise ValueError("output_interval must be positive")

    @property
    def natoms(self) -> int:
        return atoms_for_nodes(self.sim_nodes)

    @property
    def bytes_per_step(self) -> float:
        return output_bytes_for_atoms(self.natoms)


#: The three staging configurations of Figures 7-9.
FIGURE_7 = WeakScalingWorkload(sim_nodes=256, staging_nodes=13, spare_staging_nodes=0)
FIGURE_8 = WeakScalingWorkload(sim_nodes=512, staging_nodes=24, spare_staging_nodes=4)
FIGURE_9 = WeakScalingWorkload(sim_nodes=1024, staging_nodes=24, spare_staging_nodes=4)
