"""A miniature LAMMPS: real molecular dynamics plus a scaled DES driver.

Two layers, per the substitution rule in DESIGN.md:

1. **Real physics** (laptop scale): Lennard-Jones crystals on fcc/hex
   lattices, cell-list neighbour search, velocity-Verlet integration, and a
   notched-plate tensile test that genuinely forms a crack — the
   application-level event the paper's pipeline reacts to.  The SmartPointer
   kernels run on these real snapshots in the examples and tests.

2. **DES driver** (Franklin scale): a simulated LAMMPS application emitting
   Table II data volumes on the paper's 15-second output cadence through
   DataTap writers, used by the Figure 7–10 experiments where only timing
   matters.
"""

from repro.lammps.lattice import fcc_lattice, hex_lattice, notch
from repro.lammps.potential import LennardJones
from repro.lammps.neighbor import CellList, neighbor_pairs
from repro.lammps.md import MDSystem, VelocityVerlet
from repro.lammps.crack import CrackExperiment, broken_bond_fraction
from repro.lammps.workload import TABLE_II, WeakScalingWorkload, atoms_for_nodes
from repro.lammps.driver import LammpsDriver

__all__ = [
    "CellList",
    "CrackExperiment",
    "LammpsDriver",
    "LennardJones",
    "MDSystem",
    "TABLE_II",
    "VelocityVerlet",
    "WeakScalingWorkload",
    "atoms_for_nodes",
    "broken_bond_fraction",
    "fcc_lattice",
    "hex_lattice",
    "neighbor_pairs",
    "notch",
]
