"""Notched-plate tensile test: real crack formation.

The paper's running example is online detection of crack formation in a
material modelled by LAMMPS.  This module reproduces the physics at laptop
scale: a 2-D hexagonal LJ plate with an edge notch is pulled apart by
displacing frozen grip rows; stress concentrates at the notch tip and bonds
break there first — a crack.  The experiment yields a stream of snapshots
whose *broken-bond fraction* jumps when the crack nucleates, giving the
SmartPointer pipeline a genuine data-dependent event to branch on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.lammps.lattice import R0, hex_lattice, notch as cut_notch
from repro.lammps.md import MDSystem, Snapshot, VelocityVerlet
from repro.lammps.neighbor import CellList
from repro.lammps.potential import LennardJones

#: Bond cutoff: halfway between first (R0) and second (R0*sqrt(3)) neighbour
#: shells of the triangular lattice.
BOND_CUTOFF = R0 * 1.35


def reference_bonds(positions: np.ndarray, cutoff: float = BOND_CUTOFF) -> np.ndarray:
    """Bond pairs of the unstrained structure (the 'intact' reference)."""
    return CellList(positions, cutoff).pairs()


def broken_bond_fraction(
    positions: np.ndarray,
    reference: np.ndarray,
    cutoff: float = BOND_CUTOFF,
    stretch_factor: float = 1.25,
) -> float:
    """Fraction of reference bonds now stretched beyond breaking.

    A bond is 'broken' when its current length exceeds ``stretch_factor *
    cutoff`` — well past the LJ inflection point, so it will not re-form
    elastically.
    """
    if len(reference) == 0:
        return 0.0
    d = positions[reference[:, 0]] - positions[reference[:, 1]]
    lengths = np.sqrt(np.einsum("ij,ij->i", d, d))
    return float(np.mean(lengths > stretch_factor * cutoff))


@dataclass
class CrackFrame:
    """One observation of the tensile test."""

    snapshot: Snapshot
    strain: float
    broken_fraction: float

    @property
    def cracked(self) -> bool:
        return self.broken_fraction > 0.01


class CrackExperiment:
    """Quasi-static tension on a notched hexagonal plate.

    Parameters
    ----------
    nx, ny:
        Lattice dimensions (atoms before the notch is cut).
    notch_fraction:
        Notch length as a fraction of the plate width.
    strain_per_epoch:
        Engineering strain increment applied between output epochs.
    md_steps_per_epoch:
        Relaxation steps after each strain increment.
    temperature:
        Thermostat target (reduced units); small but non-zero so the crack
        path is not perfectly symmetric.
    """

    def __init__(
        self,
        nx: int = 40,
        ny: int = 24,
        notch_fraction: float = 0.3,
        strain_per_epoch: float = 0.01,
        md_steps_per_epoch: int = 60,
        temperature: float = 0.02,
        seed: int = 7,
    ):
        if not (0 < notch_fraction < 1):
            raise ValueError("notch_fraction must be in (0, 1)")
        if strain_per_epoch <= 0:
            raise ValueError("strain_per_epoch must be positive")
        self.strain_per_epoch = strain_per_epoch
        self.md_steps_per_epoch = md_steps_per_epoch
        self.temperature = temperature
        rng = np.random.default_rng(seed)

        positions, box = hex_lattice(nx, ny)
        width = box[0, 1] - box[0, 0]
        height = box[1, 1] - box[1, 0]
        # Horizontal notch entering from the left at mid-height.
        tip = np.array([box[0, 0] + notch_fraction * width, box[1, 0] + height / 2.0])
        positions = cut_notch(positions, tip, length=notch_fraction * width + 1.0,
                              half_width=0.6 * R0)

        # Grip rows: the top and bottom two rows are frozen and displaced.
        y = positions[:, 1]
        row = R0 * np.sqrt(3.0) / 2.0
        frozen = (y < box[1, 0] + 2 * row) | (y > box[1, 1] - 2 * row)
        self._top = frozen & (y > (box[1, 0] + box[1, 1]) / 2)
        self._bottom = frozen & ~self._top
        self.height = height

        system = MDSystem(positions, frozen=frozen)
        system.thermalize(temperature, rng)
        self.system = system
        self.integrator = VelocityVerlet(system, LennardJones(cutoff=2.5), dt=0.005)
        self.reference = reference_bonds(positions)
        self.strain = 0.0
        self.epoch = 0

    def run_epoch(self) -> CrackFrame:
        """Apply one strain increment, relax, and observe."""
        delta = self.strain_per_epoch * self.height / 2.0
        self.system.positions[self._top, 1] += delta
        self.system.positions[self._bottom, 1] -= delta
        self.strain += self.strain_per_epoch
        self.integrator.step(self.md_steps_per_epoch, rescale_to=self.temperature)
        self.epoch += 1
        snap = self.integrator.snapshot()
        frac = broken_bond_fraction(snap.positions, self.reference)
        return CrackFrame(snapshot=snap, strain=self.strain, broken_fraction=frac)

    def run(self, epochs: int) -> List[CrackFrame]:
        """Run ``epochs`` strain increments; returns all frames."""
        return [self.run_epoch() for _ in range(epochs)]

    def frames(self, max_epochs: int = 100) -> Iterator[CrackFrame]:
        """Yield frames until the plate cracks or ``max_epochs`` is reached."""
        for _ in range(max_epochs):
            frame = self.run_epoch()
            yield frame
            if frame.cracked:
                return
