"""Cell-list neighbour search, vectorized.

Naive all-pairs distance checks are O(n^2); the cell list bins atoms into
boxes of edge >= cutoff so only the 3^dim neighbouring bins need checking,
giving O(n) for homogeneous densities.  Both paths are provided: the
SmartPointer *Bonds* action is characterized as O(n^2) in Table I (it is a
brute-force bonding scan in the original toolkit), while the MD integrator
uses the cell list to stay fast.
"""

from __future__ import annotations

import numpy as np


def neighbor_pairs(positions: np.ndarray, cutoff: float) -> np.ndarray:
    """All-pairs neighbour search: O(n^2) time, vectorized.

    Returns an ``(m, 2)`` int array of index pairs ``i < j`` with
    ``|r_i - r_j| <= cutoff``.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if cutoff <= 0:
        raise ValueError(f"cutoff must be positive, got {cutoff}")
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)
    deltas = positions[:, None, :] - positions[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", deltas, deltas)
    iu = np.triu_indices(n, k=1)
    mask = dist2[iu] <= cutoff * cutoff
    return np.column_stack([iu[0][mask], iu[1][mask]]).astype(np.int64)


class CellList:
    """Spatial binning for O(n) neighbour queries."""

    def __init__(self, positions: np.ndarray, cutoff: float):
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2:
            raise ValueError("positions must be (n, dim)")
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        self.positions = positions
        self.cutoff = float(cutoff)
        self.dim = positions.shape[1]
        n = len(positions)

        if n == 0:
            self._origin = np.zeros(self.dim)
            self._shape = np.ones(self.dim, dtype=np.int64)
            self._cell_of = np.empty(0, dtype=np.int64)
            self._order = np.empty(0, dtype=np.int64)
            self._starts = np.zeros(2, dtype=np.int64)
            return

        self._origin = positions.min(axis=0)
        extent = positions.max(axis=0) - self._origin
        self._shape = np.maximum(1, np.floor(extent / cutoff).astype(np.int64) + 1)
        coords = np.floor((positions - self._origin) / cutoff).astype(np.int64)
        coords = np.minimum(coords, self._shape - 1)
        # Flatten cell coordinates to a single index (row-major).
        strides = np.cumprod(np.concatenate([[1], self._shape[::-1][:-1]]))[::-1]
        self._cell_of = coords @ strides
        self._strides = strides
        ncells = int(np.prod(self._shape))
        # Counting sort of atoms by cell: starts[c]..starts[c+1] index into
        # order for cell c's members.
        self._order = np.argsort(self._cell_of, kind="stable")
        counts = np.bincount(self._cell_of, minlength=ncells)
        self._starts = np.concatenate([[0], np.cumsum(counts)])

    def _cell_members(self, cell_index: int) -> np.ndarray:
        return self._order[self._starts[cell_index] : self._starts[cell_index + 1]]

    def pairs(self) -> np.ndarray:
        """All pairs ``i < j`` within the cutoff, as an ``(m, 2)`` array."""
        n = len(self.positions)
        if n < 2:
            return np.empty((0, 2), dtype=np.int64)
        # Neighbouring cell offsets in flattened index space.
        offsets = np.stack(
            np.meshgrid(*([np.array([-1, 0, 1])] * self.dim), indexing="ij"), axis=-1
        ).reshape(-1, self.dim)

        out_i, out_j = [], []
        cutoff2 = self.cutoff * self.cutoff
        coords_cache = np.stack(
            np.unravel_index(np.arange(int(np.prod(self._shape))), self._shape), axis=-1
        )
        occupied = np.unique(self._cell_of)
        for cell in occupied:
            members = self._cell_members(cell)
            cell_coord = coords_cache[cell]
            neigh_coords = cell_coord + offsets
            valid = np.all((neigh_coords >= 0) & (neigh_coords < self._shape), axis=1)
            neigh_cells = neigh_coords[valid] @ self._strides
            # Only visit neighbour cells with index >= this cell to avoid
            # double counting; handle same-cell pairs via triangle below.
            for other in neigh_cells:
                if other < cell:
                    continue
                others = self._cell_members(other)
                if len(others) == 0:
                    continue
                if other == cell:
                    if len(members) < 2:
                        continue
                    a, b = np.triu_indices(len(members), k=1)
                    ii, jj = members[a], members[b]
                else:
                    ii = np.repeat(members, len(others))
                    jj = np.tile(others, len(members))
                d = self.positions[ii] - self.positions[jj]
                mask = np.einsum("ij,ij->i", d, d) <= cutoff2
                if mask.any():
                    out_i.append(ii[mask])
                    out_j.append(jj[mask])
        if not out_i:
            return np.empty((0, 2), dtype=np.int64)
        i = np.concatenate(out_i)
        j = np.concatenate(out_j)
        lo = np.minimum(i, j)
        hi = np.maximum(i, j)
        return np.column_stack([lo, hi])

    def neighbors_of(self, index: int) -> np.ndarray:
        """Indices of atoms within the cutoff of atom ``index`` (excluding it)."""
        pos = self.positions[index]
        coord = np.floor((pos - self._origin) / self.cutoff).astype(np.int64)
        coord = np.minimum(np.maximum(coord, 0), self._shape - 1)
        offsets = np.stack(
            np.meshgrid(*([np.array([-1, 0, 1])] * self.dim), indexing="ij"), axis=-1
        ).reshape(-1, self.dim)
        neigh = coord + offsets
        valid = np.all((neigh >= 0) & (neigh < self._shape), axis=1)
        cells = neigh[valid] @ self._strides
        candidates = np.concatenate([self._cell_members(c) for c in cells])
        candidates = candidates[candidates != index]
        if len(candidates) == 0:
            return candidates
        d = self.positions[candidates] - pos
        mask = np.einsum("ij,ij->i", d, d) <= self.cutoff * self.cutoff
        return candidates[mask]
