"""Cell-list neighbour search, vectorized.

Naive all-pairs distance checks are O(n^2); the cell list bins atoms into
boxes of edge >= cutoff so only the 3^dim neighbouring bins need checking,
giving O(n) for homogeneous densities.  Both paths are provided: the
SmartPointer *Bonds* action is characterized as O(n^2) in Table I (it is a
brute-force bonding scan in the original toolkit), while the MD integrator
uses the cell list to stay fast.

:meth:`CellList.pairs` is fully vectorized: atoms are counting-sorted into
cell buckets at construction, and pair generation broadcasts over the half
stencil of cell offsets with ragged cross-products in index arithmetic — no
per-cell Python loop.  The seed per-cell implementation is kept as
:meth:`CellList._reference_pairs` for the equivalence tests and the
before/after numbers in ``BENCH_kernels.json``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.perf.registry import REGISTRY as _perf

#: Row-block size of the memory-bounded all-pairs path: peak memory is about
#: ``chunk * n * (dim + 2)`` float64s instead of the n x n x dim delta tensor.
PAIR_CHUNK = 2048


def neighbor_pairs(
    positions: np.ndarray, cutoff: float, chunk_size: Optional[int] = None
) -> np.ndarray:
    """All-pairs neighbour search: O(n^2) time, vectorized.

    Returns an ``(m, 2)`` int array of index pairs ``i < j`` with
    ``|r_i - r_j| <= cutoff``, in lexicographic order.

    ``chunk_size`` bounds memory: rows are processed in blocks of that many
    atoms, so n >~ 20k no longer allocates an n x n x dim delta tensor.  The
    default keeps the one-shot tensor (the Table I "faithful O(n^2)"
    reference) up to ``PAIR_CHUNK`` atoms and blocks beyond that; both paths
    return identical arrays.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if cutoff <= 0:
        raise ValueError(f"cutoff must be positive, got {cutoff}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)
    if chunk_size is None:
        chunk_size = n if n <= PAIR_CHUNK else PAIR_CHUNK
    with _perf.timer("neighbor.pairs_naive"):
        if chunk_size >= n:
            deltas = positions[:, None, :] - positions[None, :, :]
            dist2 = np.einsum("ijk,ijk->ij", deltas, deltas)
            iu = np.triu_indices(n, k=1)
            mask = dist2[iu] <= cutoff * cutoff
            return np.column_stack([iu[0][mask], iu[1][mask]]).astype(np.int64)
        cutoff2 = cutoff * cutoff
        blocks = []
        for start in range(0, n - 1, chunk_size):
            stop = min(start + chunk_size, n)
            deltas = positions[start:stop, None, :] - positions[None, :, :]
            dist2 = np.einsum("ijk,ijk->ij", deltas, deltas)
            ii, jj = np.nonzero(dist2 <= cutoff2)
            keep = jj > ii + start
            blocks.append(
                np.column_stack([ii[keep] + start, jj[keep]]).astype(np.int64)
            )
        return np.concatenate(blocks, axis=0)


def _ragged_cross(
    a_start: np.ndarray, a_count: np.ndarray, b_start: np.ndarray, b_count: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cross-product index pairs of aligned ragged groups, vectorized.

    Group ``g`` contributes ``a_count[g] * b_count[g]`` pairs; the return is
    ``(slot_a, slot_b, group)`` where the slots index the *sorted-by-cell*
    atom order (``a_start[g] + local_a`` etc.).
    """
    totals = a_count * b_count
    grand_total = int(totals.sum())
    if grand_total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    bounds = np.concatenate([[0], np.cumsum(totals)])
    group = np.repeat(np.arange(len(totals), dtype=np.int64), totals)
    local = np.arange(grand_total, dtype=np.int64) - bounds[group]
    local_a = local // b_count[group]
    local_b = local % b_count[group]
    return a_start[group] + local_a, b_start[group] + local_b, group


class CellList:
    """Spatial binning for O(n) neighbour queries."""

    def __init__(self, positions: np.ndarray, cutoff: float):
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2:
            raise ValueError("positions must be (n, dim)")
        if cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        self.positions = positions
        self.cutoff = float(cutoff)
        self.dim = positions.shape[1]
        n = len(positions)
        _perf.count("celllist.build")

        if n == 0:
            self._origin = np.zeros(self.dim)
            self._shape = np.ones(self.dim, dtype=np.int64)
            self._strides = np.ones(self.dim, dtype=np.int64)
            self._cell_of = np.empty(0, dtype=np.int64)
            self._order = np.empty(0, dtype=np.int64)
            self._starts = np.zeros(2, dtype=np.int64)
            return

        self._origin = positions.min(axis=0)
        extent = positions.max(axis=0) - self._origin
        self._shape = np.maximum(1, np.floor(extent / cutoff).astype(np.int64) + 1)
        coords = np.floor((positions - self._origin) / cutoff).astype(np.int64)
        coords = np.minimum(coords, self._shape - 1)
        # Flatten cell coordinates to a single index (row-major).
        strides = np.cumprod(np.concatenate([[1], self._shape[::-1][:-1]]))[::-1]
        self._cell_of = coords @ strides
        self._strides = strides
        ncells = int(np.prod(self._shape))
        # Counting sort of atoms by cell: starts[c]..starts[c+1] index into
        # order for cell c's members.
        self._order = np.argsort(self._cell_of, kind="stable")
        counts = np.bincount(self._cell_of, minlength=ncells)
        self._starts = np.concatenate([[0], np.cumsum(counts)])

    def _cell_members(self, cell_index: int) -> np.ndarray:
        return self._order[self._starts[cell_index] : self._starts[cell_index + 1]]

    def _stencil(self) -> np.ndarray:
        """All 3^dim cell-coordinate offsets."""
        return np.stack(
            np.meshgrid(*([np.array([-1, 0, 1])] * self.dim), indexing="ij"), axis=-1
        ).reshape(-1, self.dim)

    def pairs(self) -> np.ndarray:
        """All pairs ``i < j`` within the cutoff, as an ``(m, 2)`` array.

        Vectorized: candidate pairs for every occupied cell and every
        half-stencil offset are generated in one ragged-cross-product sweep
        over the counting-sort buckets, then distance-filtered in a single
        pass.  No Python loop over cells.
        """
        n = len(self.positions)
        if n < 2:
            return np.empty((0, 2), dtype=np.int64)
        with _perf.timer("celllist.pairs"):
            return self._pairs_vectorized()

    def _pairs_vectorized(self) -> np.ndarray:
        starts = self._starts
        order = self._order
        counts = np.diff(starts)
        occupied = np.nonzero(counts)[0]
        occ_counts = counts[occupied]
        occ_starts = starts[occupied]
        occ_coords = np.stack(np.unravel_index(occupied, self._shape), axis=-1)

        slot_a_parts = []
        slot_b_parts = []

        # Same-cell candidates: the full cross product of each bucket with
        # itself, triangle-filtered on bucket-local slots.
        slot_a, slot_b, _ = _ragged_cross(
            occ_starts, occ_counts, occ_starts, occ_counts
        )
        upper = slot_a < slot_b
        slot_a_parts.append(slot_a[upper])
        slot_b_parts.append(slot_b[upper])

        # Cross-cell candidates: each unordered cell pair exactly once, via
        # the lexicographically-positive half of the offset stencil.
        for offset in self._stencil():
            if not offset.any():
                continue
            nonzero = np.nonzero(offset)[0]
            if offset[nonzero[0]] < 0:
                continue
            neigh_coords = occ_coords + offset
            valid = np.all(
                (neigh_coords >= 0) & (neigh_coords < self._shape), axis=1
            )
            if not valid.any():
                continue
            neigh_cells = neigh_coords[valid] @ self._strides
            neigh_counts = counts[neigh_cells]
            busy = neigh_counts > 0
            if not busy.any():
                continue
            slot_a, slot_b, _ = _ragged_cross(
                occ_starts[valid][busy],
                occ_counts[valid][busy],
                starts[neigh_cells[busy]],
                neigh_counts[busy],
            )
            slot_a_parts.append(slot_a)
            slot_b_parts.append(slot_b)

        i = order[np.concatenate(slot_a_parts)]
        j = order[np.concatenate(slot_b_parts)]
        d = self.positions[i] - self.positions[j]
        within = np.einsum("ij,ij->i", d, d) <= self.cutoff * self.cutoff
        i, j = i[within], j[within]
        lo = np.minimum(i, j)
        hi = np.maximum(i, j)
        return np.column_stack([lo, hi])

    def _reference_pairs(self) -> np.ndarray:
        """Seed per-occupied-cell implementation (kept for the equivalence
        tests and the before/after numbers in ``BENCH_kernels.json``)."""
        n = len(self.positions)
        if n < 2:
            return np.empty((0, 2), dtype=np.int64)
        offsets = self._stencil()
        out_i, out_j = [], []
        cutoff2 = self.cutoff * self.cutoff
        coords_cache = np.stack(
            np.unravel_index(np.arange(int(np.prod(self._shape))), self._shape), axis=-1
        )
        occupied = np.unique(self._cell_of)
        for cell in occupied:
            members = self._cell_members(cell)
            cell_coord = coords_cache[cell]
            neigh_coords = cell_coord + offsets
            valid = np.all((neigh_coords >= 0) & (neigh_coords < self._shape), axis=1)
            neigh_cells = neigh_coords[valid] @ self._strides
            # Only visit neighbour cells with index >= this cell to avoid
            # double counting; handle same-cell pairs via triangle below.
            for other in neigh_cells:
                if other < cell:
                    continue
                others = self._cell_members(other)
                if len(others) == 0:
                    continue
                if other == cell:
                    if len(members) < 2:
                        continue
                    a, b = np.triu_indices(len(members), k=1)
                    ii, jj = members[a], members[b]
                else:
                    ii = np.repeat(members, len(others))
                    jj = np.tile(others, len(members))
                d = self.positions[ii] - self.positions[jj]
                mask = np.einsum("ij,ij->i", d, d) <= cutoff2
                if mask.any():
                    out_i.append(ii[mask])
                    out_j.append(jj[mask])
        if not out_i:
            return np.empty((0, 2), dtype=np.int64)
        i = np.concatenate(out_i)
        j = np.concatenate(out_j)
        lo = np.minimum(i, j)
        hi = np.maximum(i, j)
        return np.column_stack([lo, hi])

    def neighbors_of(self, index: int) -> np.ndarray:
        """Indices of atoms within the cutoff of atom ``index`` (excluding it)."""
        pos = self.positions[index]
        coord = np.floor((pos - self._origin) / self.cutoff).astype(np.int64)
        coord = np.minimum(np.maximum(coord, 0), self._shape - 1)
        neigh = coord + self._stencil()
        valid = np.all((neigh >= 0) & (neigh < self._shape), axis=1)
        cells = neigh[valid] @ self._strides
        candidates = np.concatenate([self._cell_members(c) for c in cells])
        candidates = candidates[candidates != index]
        if len(candidates) == 0:
            return candidates
        d = self.positions[candidates] - pos
        mask = np.einsum("ij,ij->i", d, d) <= self.cutoff * self.cutoff
        return candidates[mask]
