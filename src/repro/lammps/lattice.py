"""Crystal lattice generation: fcc (3-D) and hexagonal (2-D), with notches.

All geometry is vectorized NumPy; positions are float64 arrays of shape
``(n, dim)``.  Lattice constants are in reduced Lennard-Jones units: the
equilibrium nearest-neighbour distance of an LJ solid is ``r0 = 2^(1/6) σ``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Equilibrium LJ pair separation (sigma = 1).
R0 = 2.0 ** (1.0 / 6.0)


def hex_lattice(nx: int, ny: int, spacing: float = R0) -> Tuple[np.ndarray, np.ndarray]:
    """A 2-D triangular (hexagonal close-packed) lattice.

    Returns ``(positions, box)`` where ``box`` is the rectangular extent
    ``[[xmin, xmax], [ymin, ymax]]``.  Rows are offset by half a spacing and
    separated by ``spacing * sqrt(3)/2``, giving six nearest neighbours per
    interior atom.
    """
    if nx < 1 or ny < 1:
        raise ValueError(f"lattice dims must be positive, got {nx}x{ny}")
    row_height = spacing * np.sqrt(3.0) / 2.0
    ix = np.arange(nx)
    iy = np.arange(ny)
    gx, gy = np.meshgrid(ix, iy, indexing="ij")
    x = gx * spacing + (gy % 2) * (spacing / 2.0)
    y = gy * row_height
    positions = np.column_stack([x.ravel(), y.ravel()]).astype(np.float64)
    box = np.array(
        [
            [positions[:, 0].min(), positions[:, 0].max()],
            [positions[:, 1].min(), positions[:, 1].max()],
        ]
    )
    return positions, box


def fcc_lattice(nx: int, ny: int, nz: int, a: float = R0 * np.sqrt(2.0)) -> Tuple[np.ndarray, np.ndarray]:
    """A 3-D face-centred-cubic lattice of ``nx*ny*nz`` unit cells.

    ``a`` is the cubic cell edge; the default gives nearest-neighbour
    distance ``a/sqrt(2) = R0``, the LJ equilibrium spacing.  Returns
    ``(positions, box)`` with 4 atoms per cell.
    """
    if min(nx, ny, nz) < 1:
        raise ValueError(f"lattice dims must be positive, got {nx}x{ny}x{nz}")
    basis = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    cells = np.stack(
        np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"),
        axis=-1,
    ).reshape(-1, 3)
    positions = ((cells[:, None, :] + basis[None, :, :]).reshape(-1, 3) * a).astype(np.float64)
    box = np.array([[0.0, nx * a], [0.0, ny * a], [0.0, nz * a]])
    return positions, box


def notch(
    positions: np.ndarray,
    tip: np.ndarray,
    length: float,
    half_width: float,
    direction: int = 0,
) -> np.ndarray:
    """Remove atoms inside a wedge-shaped notch; returns the kept positions.

    The notch is a slot entering from the low-``direction`` side, ending at
    ``tip``: atoms with ``x[direction] < tip[direction]`` and within
    ``half_width`` of the tip in the perpendicular coordinate(s) are removed.
    A notch concentrates stress at its tip, which is where the crack
    nucleates under tension.
    """
    positions = np.asarray(positions, dtype=np.float64)
    tip = np.asarray(tip, dtype=np.float64)
    dim = positions.shape[1]
    if tip.shape != (dim,):
        raise ValueError(f"tip must have shape ({dim},), got {tip.shape}")
    if length <= 0 or half_width <= 0:
        raise ValueError("length and half_width must be positive")
    along = positions[:, direction]
    inside_len = (along >= tip[direction] - length) & (along <= tip[direction])
    perp = np.delete(positions, direction, axis=1) - np.delete(tip, direction)
    inside_wid = np.all(np.abs(perp) <= half_width, axis=1)
    keep = ~(inside_len & inside_wid)
    return positions[keep]
