"""Lennard-Jones pair potential, vectorized over pair lists."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class LennardJones:
    """Truncated-and-shifted 12-6 Lennard-Jones potential.

    ``V(r) = 4 eps [ (sigma/r)^12 - (sigma/r)^6 ] - V(rc)`` for ``r < rc``.
    Reduced units throughout (eps = sigma = mass = 1 by default).
    """

    def __init__(self, epsilon: float = 1.0, sigma: float = 1.0, cutoff: float = 2.5):
        if epsilon <= 0 or sigma <= 0 or cutoff <= 0:
            raise ValueError("epsilon, sigma and cutoff must be positive")
        self.epsilon = float(epsilon)
        self.sigma = float(sigma)
        self.cutoff = float(cutoff)
        sr6 = (sigma / cutoff) ** 6
        self._shift = 4.0 * epsilon * (sr6 * sr6 - sr6)

    def energy_forces(
        self, positions: np.ndarray, pairs: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Potential energy and per-atom forces for the given pair list.

        ``pairs`` is an ``(m, 2)`` index array (as from the neighbour
        modules); pairs beyond the cutoff contribute nothing.
        """
        positions = np.asarray(positions, dtype=np.float64)
        forces = np.zeros_like(positions)
        if len(pairs) == 0:
            return 0.0, forces

        i, j = pairs[:, 0], pairs[:, 1]
        rij = positions[i] - positions[j]
        r2 = np.einsum("ij,ij->i", rij, rij)
        within = r2 <= self.cutoff * self.cutoff
        if not within.any():
            return 0.0, forces
        i, j, rij, r2 = i[within], j[within], rij[within], r2[within]

        inv_r2 = (self.sigma * self.sigma) / r2
        inv_r6 = inv_r2 * inv_r2 * inv_r2
        inv_r12 = inv_r6 * inv_r6
        energy = float(np.sum(4.0 * self.epsilon * (inv_r12 - inv_r6) - self._shift))
        # dV/dr * (1/r) for the pair force vector f_i = coeff * rij
        coeff = (24.0 * self.epsilon * (2.0 * inv_r12 - inv_r6)) / r2
        fij = coeff[:, None] * rij
        np.add.at(forces, i, fij)
        np.add.at(forces, j, -fij)
        return energy, forces

    def pair_energy(self, r: np.ndarray) -> np.ndarray:
        """Pair energy at separations ``r`` (vectorized; 0 beyond cutoff)."""
        r = np.asarray(r, dtype=np.float64)
        sr6 = (self.sigma / r) ** 6
        e = 4.0 * self.epsilon * (sr6 * sr6 - sr6) - self._shift
        return np.where(r <= self.cutoff, e, 0.0)
