"""Velocity-Verlet molecular dynamics on LJ systems."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.lammps.neighbor import CellList
from repro.lammps.potential import LennardJones


@dataclass
class Snapshot:
    """One output epoch's worth of simulation state."""

    step: int
    positions: np.ndarray
    velocities: np.ndarray
    potential_energy: float
    kinetic_energy: float

    @property
    def total_energy(self) -> float:
        return self.potential_energy + self.kinetic_energy

    @property
    def natoms(self) -> int:
        return len(self.positions)


class MDSystem:
    """Atom state: positions, velocities, masses, optional frozen atoms.

    ``frozen`` marks boundary atoms whose positions are prescribed
    externally (grip rows in the tensile test); the integrator zeroes their
    velocities and forces.
    """

    def __init__(
        self,
        positions: np.ndarray,
        velocities: Optional[np.ndarray] = None,
        mass: float = 1.0,
        frozen: Optional[np.ndarray] = None,
    ):
        self.positions = np.array(positions, dtype=np.float64)
        if self.positions.ndim != 2:
            raise ValueError("positions must be (n, dim)")
        n, dim = self.positions.shape
        if velocities is None:
            velocities = np.zeros((n, dim))
        self.velocities = np.array(velocities, dtype=np.float64)
        if self.velocities.shape != self.positions.shape:
            raise ValueError("velocities shape must match positions")
        if mass <= 0:
            raise ValueError("mass must be positive")
        self.mass = float(mass)
        self.frozen = (
            np.zeros(n, dtype=bool) if frozen is None else np.asarray(frozen, dtype=bool)
        )
        if self.frozen.shape != (n,):
            raise ValueError("frozen mask must have one entry per atom")

    @property
    def natoms(self) -> int:
        return len(self.positions)

    @property
    def dim(self) -> int:
        return self.positions.shape[1]

    def kinetic_energy(self) -> float:
        mobile = ~self.frozen
        return float(0.5 * self.mass * np.sum(self.velocities[mobile] ** 2))

    def thermalize(self, temperature: float, rng: np.random.Generator) -> None:
        """Draw Maxwell-Boltzmann velocities at ``temperature`` (kB = 1)."""
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        sigma = np.sqrt(temperature / self.mass)
        self.velocities = rng.normal(0.0, sigma, self.positions.shape)
        self.velocities[self.frozen] = 0.0
        # Remove centre-of-mass drift of the mobile atoms.
        mobile = ~self.frozen
        if mobile.any():
            self.velocities[mobile] -= self.velocities[mobile].mean(axis=0)


class VelocityVerlet:
    """The integrator, with cell-list forces and optional velocity rescaling.

    Parameters
    ----------
    dt:
        Timestep in reduced LJ time units (0.005 is the standard stable
        choice).
    rebuild_every:
        Steps between cell-list rebuilds.  With a skin of 0.3 sigma on the
        neighbour cutoff, rebuilding every ~10 steps is safe at the
        velocities reached here.
    """

    def __init__(
        self,
        system: MDSystem,
        potential: Optional[LennardJones] = None,
        dt: float = 0.005,
        rebuild_every: int = 10,
        skin: float = 0.3,
    ):
        if dt <= 0:
            raise ValueError("dt must be positive")
        if rebuild_every < 1:
            raise ValueError("rebuild_every must be >= 1")
        self.system = system
        self.potential = potential or LennardJones()
        self.dt = float(dt)
        self.rebuild_every = int(rebuild_every)
        self.skin = float(skin)
        self.step_count = 0
        self._pairs: Optional[np.ndarray] = None
        self._energy, self._forces = self._compute_forces(rebuild=True)

    # -- forces -----------------------------------------------------------------

    def _compute_forces(self, rebuild: bool):
        if rebuild or self._pairs is None:
            cells = CellList(self.system.positions, self.potential.cutoff + self.skin)
            self._pairs = cells.pairs()
        energy, forces = self.potential.energy_forces(self.system.positions, self._pairs)
        forces[self.system.frozen] = 0.0
        return energy, forces

    @property
    def potential_energy(self) -> float:
        return self._energy

    # -- stepping ----------------------------------------------------------------

    def step(self, nsteps: int = 1, rescale_to: Optional[float] = None) -> None:
        """Advance ``nsteps`` velocity-Verlet steps.

        ``rescale_to`` applies a crude velocity-rescale thermostat after each
        step (enough to bleed off the strain work in the tensile test).
        """
        sysm = self.system
        inv_m = 1.0 / sysm.mass
        for _ in range(nsteps):
            half_kick = 0.5 * self.dt * inv_m * self._forces
            sysm.velocities += half_kick
            sysm.velocities[sysm.frozen] = 0.0
            sysm.positions += self.dt * sysm.velocities
            self.step_count += 1
            rebuild = (self.step_count % self.rebuild_every) == 0
            self._energy, self._forces = self._compute_forces(rebuild)
            sysm.velocities += 0.5 * self.dt * inv_m * self._forces
            sysm.velocities[sysm.frozen] = 0.0
            if rescale_to is not None and rescale_to >= 0:
                self._rescale(rescale_to)

    def _rescale(self, temperature: float) -> None:
        sysm = self.system
        mobile = ~sysm.frozen
        n_dof = mobile.sum() * sysm.dim
        if n_dof == 0:
            return
        ke = 0.5 * sysm.mass * np.sum(sysm.velocities[mobile] ** 2)
        target = 0.5 * n_dof * temperature
        if ke > 1e-12:
            sysm.velocities[mobile] *= np.sqrt(max(target, 1e-12) / ke)

    def snapshot(self) -> Snapshot:
        return Snapshot(
            step=self.step_count,
            positions=self.system.positions.copy(),
            velocities=self.system.velocities.copy(),
            potential_energy=self._energy,
            kinetic_energy=self.system.kinetic_energy(),
        )
