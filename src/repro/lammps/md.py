"""Velocity-Verlet molecular dynamics on LJ systems.

The integrator keeps a Verlet-skin neighbour list: pairs are gathered once
within ``cutoff + skin`` and *reused* until some atom has moved more than
``skin / 2`` since the list was built — only then is the cell list rebuilt.
Because no atom pair can close from beyond ``cutoff + skin`` to within
``cutoff`` before that displacement bound trips, the reused list always
contains every interacting pair, so trajectories match the always-rebuild
path to numerical tolerance while rebuilds drop to a small fraction of
steps (counted by ``rebuild_count`` and the ``md.rebuild`` perf counter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.lammps.neighbor import CellList
from repro.lammps.potential import LennardJones
from repro.perf.registry import REGISTRY as _perf


@dataclass
class Snapshot:
    """One output epoch's worth of simulation state."""

    step: int
    positions: np.ndarray
    velocities: np.ndarray
    potential_energy: float
    kinetic_energy: float

    @property
    def total_energy(self) -> float:
        return self.potential_energy + self.kinetic_energy

    @property
    def natoms(self) -> int:
        return len(self.positions)


class MDSystem:
    """Atom state: positions, velocities, masses, optional frozen atoms.

    ``frozen`` marks boundary atoms whose positions are prescribed
    externally (grip rows in the tensile test); the integrator zeroes their
    velocities and forces.
    """

    def __init__(
        self,
        positions: np.ndarray,
        velocities: Optional[np.ndarray] = None,
        mass: float = 1.0,
        frozen: Optional[np.ndarray] = None,
    ):
        self.positions = np.array(positions, dtype=np.float64)
        if self.positions.ndim != 2:
            raise ValueError("positions must be (n, dim)")
        n, dim = self.positions.shape
        if velocities is None:
            velocities = np.zeros((n, dim))
        self.velocities = np.array(velocities, dtype=np.float64)
        if self.velocities.shape != self.positions.shape:
            raise ValueError("velocities shape must match positions")
        if mass <= 0:
            raise ValueError("mass must be positive")
        self.mass = float(mass)
        self.frozen = (
            np.zeros(n, dtype=bool) if frozen is None else np.asarray(frozen, dtype=bool)
        )
        if self.frozen.shape != (n,):
            raise ValueError("frozen mask must have one entry per atom")

    @property
    def natoms(self) -> int:
        return len(self.positions)

    @property
    def dim(self) -> int:
        return self.positions.shape[1]

    def kinetic_energy(self) -> float:
        mobile = ~self.frozen
        return float(0.5 * self.mass * np.sum(self.velocities[mobile] ** 2))

    def thermalize(self, temperature: float, rng: np.random.Generator) -> None:
        """Draw Maxwell-Boltzmann velocities at ``temperature`` (kB = 1)."""
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        sigma = np.sqrt(temperature / self.mass)
        self.velocities = rng.normal(0.0, sigma, self.positions.shape)
        self.velocities[self.frozen] = 0.0
        # Remove centre-of-mass drift of the mobile atoms.
        mobile = ~self.frozen
        if mobile.any():
            self.velocities[mobile] -= self.velocities[mobile].mean(axis=0)


class VelocityVerlet:
    """The integrator, with cell-list forces and optional velocity rescaling.

    Parameters
    ----------
    dt:
        Timestep in reduced LJ time units (0.005 is the standard stable
        choice).
    rebuild_every:
        Steps between cell-list rebuilds in ``neighbor_mode='interval'``
        (the seed policy, kept for comparison runs).
    skin:
        Extra margin on the neighbour cutoff; pair lists built at
        ``cutoff + skin`` stay exact until some atom moves ``skin / 2``.
    neighbor_mode:
        ``'verlet'`` (default) rebuilds only when the max displacement
        since the last build exceeds ``skin / 2`` — exact and typically an
        order of magnitude fewer rebuilds; ``'interval'`` rebuilds every
        ``rebuild_every`` steps unconditionally.
    """

    def __init__(
        self,
        system: MDSystem,
        potential: Optional[LennardJones] = None,
        dt: float = 0.005,
        rebuild_every: int = 10,
        skin: float = 0.3,
        neighbor_mode: str = "verlet",
    ):
        if dt <= 0:
            raise ValueError("dt must be positive")
        if rebuild_every < 1:
            raise ValueError("rebuild_every must be >= 1")
        if neighbor_mode not in ("verlet", "interval"):
            raise ValueError(f"unknown neighbor_mode {neighbor_mode!r}")
        if skin < 0:
            raise ValueError("skin must be non-negative")
        self.system = system
        self.potential = potential or LennardJones()
        self.dt = float(dt)
        self.rebuild_every = int(rebuild_every)
        self.skin = float(skin)
        self.neighbor_mode = neighbor_mode
        self.step_count = 0
        #: number of cell-list (re)builds, including the initial one
        self.rebuild_count = 0
        self._pairs: Optional[np.ndarray] = None
        self._built_positions: Optional[np.ndarray] = None
        self._energy, self._forces = self._compute_forces(rebuild=True)

    # -- forces -----------------------------------------------------------------

    def _needs_rebuild(self) -> bool:
        if self._pairs is None or self._built_positions is None:
            return True
        if self.neighbor_mode == "interval":
            return (self.step_count % self.rebuild_every) == 0
        displacement = self.system.positions - self._built_positions
        max_disp2 = np.einsum("ij,ij->i", displacement, displacement).max()
        return max_disp2 > (0.5 * self.skin) ** 2

    def _compute_forces(self, rebuild: bool):
        with _perf.timer("md.forces"):
            if rebuild or self._pairs is None:
                with _perf.timer("md.rebuild"):
                    cells = CellList(
                        self.system.positions, self.potential.cutoff + self.skin
                    )
                    self._pairs = cells.pairs()
                self._built_positions = self.system.positions.copy()
                self.rebuild_count += 1
                _perf.count("md.rebuild")
            energy, forces = self.potential.energy_forces(
                self.system.positions, self._pairs
            )
            forces[self.system.frozen] = 0.0
            return energy, forces

    @property
    def potential_energy(self) -> float:
        return self._energy

    # -- stepping ----------------------------------------------------------------

    def step(self, nsteps: int = 1, rescale_to: Optional[float] = None) -> None:
        """Advance ``nsteps`` velocity-Verlet steps.

        ``rescale_to`` applies a crude velocity-rescale thermostat after each
        step (enough to bleed off the strain work in the tensile test).
        """
        sysm = self.system
        inv_m = 1.0 / sysm.mass
        for _ in range(nsteps):
            half_kick = 0.5 * self.dt * inv_m * self._forces
            sysm.velocities += half_kick
            sysm.velocities[sysm.frozen] = 0.0
            sysm.positions += self.dt * sysm.velocities
            self.step_count += 1
            _perf.count("md.step")
            self._energy, self._forces = self._compute_forces(self._needs_rebuild())
            sysm.velocities += 0.5 * self.dt * inv_m * self._forces
            sysm.velocities[sysm.frozen] = 0.0
            if rescale_to is not None and rescale_to >= 0:
                self._rescale(rescale_to)

    def _rescale(self, temperature: float) -> None:
        sysm = self.system
        mobile = ~sysm.frozen
        n_dof = mobile.sum() * sysm.dim
        if n_dof == 0:
            return
        ke = 0.5 * sysm.mass * np.sum(sysm.velocities[mobile] ** 2)
        target = 0.5 * n_dof * temperature
        if ke > 1e-12:
            sysm.velocities[mobile] *= np.sqrt(max(target, 1e-12) / ke)

    def snapshot(self) -> Snapshot:
        return Snapshot(
            step=self.step_count,
            positions=self.system.positions.copy(),
            velocities=self.system.velocities.copy(),
            potential_energy=self._energy,
            kinetic_energy=self.system.kinetic_energy(),
        )
