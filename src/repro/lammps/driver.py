"""The simulated LAMMPS application inside the DES.

The driver models the parallel simulation as seen by the I/O pipeline: every
``output_interval`` seconds of computation it emits one timestep of output —
``bytes_per_step`` split across its I/O aggregator writers — through the
ADIOS/DataTap path.  Writes are asynchronous, so the application only stalls
when the writer-side staging buffers are full; that stall time is recorded as
``blocked_time`` (the "application blocking" the containers runtime must
prevent).

A configurable *crack step* marks all chunks from that step onward with
``payload={'crack': True}``: the data-dependent event that triggers the
SmartPointer pipeline's dynamic branch (CSym detects the break, Bonds hands
off to CNA).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.simkernel import Environment, Event
from repro.data import DataChunk
from repro.datatap.writer import DataTapWriter
from repro.datatap.scheduling import PullScheduler
from repro.lammps.workload import WeakScalingWorkload


class LammpsDriver:
    """Emits weak-scaling output through DataTap writers on a cadence."""

    def __init__(
        self,
        env: Environment,
        writers: List[DataTapWriter],
        workload: WeakScalingWorkload,
        crack_step: Optional[int] = None,
        pull_scheduler: Optional[PullScheduler] = None,
        write_phase_duration: float = 0.5,
    ):
        if not writers:
            raise ValueError("driver needs at least one writer")
        self.env = env
        self.writers = writers
        self.workload = workload
        self.crack_step = crack_step
        self.pull_scheduler = pull_scheduler
        self.write_phase_duration = write_phase_duration

        #: fires when all steps have been emitted
        self.finished = Event(env)
        #: emit only every k-th output step — the backpressure controller's
        #: upstream signal: a congested pipeline raises the stride so the
        #: application sheds output instead of blocking on full buffers
        self.output_stride = 1
        #: output steps skipped under a raised stride
        self.steps_shed = 0
        #: called with the step number for each stride-skipped step (the
        #: shed ledger's accounting hook)
        self.on_shed: Optional[Callable[[int], None]] = None
        #: time the application spent blocked on full staging buffers
        #: (completed waits only; see :attr:`total_blocked_time`)
        self.blocked_time = 0.0
        self._write_started: Optional[float] = None
        #: emit wall-clock time of each output step
        self.emit_times: List[float] = []
        self._proc = env.process(self._run(), name="lammps")

    @property
    def steps_emitted(self) -> int:
        return len(self.emit_times)

    @property
    def is_blocked(self) -> bool:
        """True while an output write is stalled on full staging buffers."""
        return (
            self._write_started is not None
            and self.env.now - self._write_started > self.write_phase_duration
        )

    @property
    def total_blocked_time(self) -> float:
        """Blocked time including a still-ongoing stall (a fully wedged
        pipeline otherwise reports zero because the write never returns)."""
        total = self.blocked_time
        if self._write_started is not None:
            total += max(
                0.0, self.env.now - self._write_started - self.write_phase_duration
            )
        return total

    def _run(self):
        wl = self.workload
        per_writer = wl.bytes_per_step / len(self.writers)
        atoms_per_writer = wl.natoms // len(self.writers)
        for step in range(wl.total_steps):
            # Compute phase between outputs.
            yield self.env.timeout(wl.output_interval)

            if self.output_stride > 1 and step % self.output_stride != 0:
                # Backpressure stride in effect: the step's output is shed
                # at the source (computation continues; only I/O is skipped).
                self.steps_shed += 1
                if self.on_shed is not None:
                    self.on_shed(step)
                continue
            cracked = self.crack_step is not None and step >= self.crack_step
            if self.pull_scheduler is not None:
                self.pull_scheduler.output_phase_begin()
            write_start = self.env.now
            self._write_started = write_start
            writes = []
            for writer in self.writers:
                chunk = DataChunk(
                    timestep=step,
                    nbytes=per_writer,
                    natoms=atoms_per_writer,
                    payload={"crack": cracked},
                    created_at=self.env.now,
                )
                writes.append(writer.write(chunk))
            yield self.env.all_of(writes)
            elapsed = self.env.now - write_start
            self._write_started = None
            # Anything beyond the nominal local-buffering cost is blocking.
            self.blocked_time += max(0.0, elapsed - self.write_phase_duration)
            if self.pull_scheduler is not None:
                self.pull_scheduler.output_phase_end()
            self.emit_times.append(self.env.now)
        self.finished.succeed(self.env.now)
