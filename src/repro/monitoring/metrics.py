"""Metric primitives: sliding windows and recorded time series."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np


class LatencyWindow:
    """Sliding window of (time, latency) observations.

    ``mean()`` over the most recent ``maxlen`` observations is the
    per-container latency statistic the bottleneck detector uses.
    """

    def __init__(self, maxlen: int = 8):
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._window: Deque[Tuple[float, float]] = deque(maxlen=maxlen)
        self.count = 0

    def observe(self, time: float, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self._window.append((time, latency))
        self.count += 1

    def mean(self) -> Optional[float]:
        if not self._window:
            return None
        return float(np.mean([lat for _, lat in self._window]))

    def last(self) -> Optional[float]:
        return self._window[-1][1] if self._window else None

    def trend(self) -> float:
        """Least-squares slope of latency vs time over the window (s/s).

        0.0 when fewer than three observations are available.
        """
        if len(self._window) < 3:
            return 0.0
        times = np.array([t for t, _ in self._window])
        lats = np.array([lat for _, lat in self._window])
        if np.ptp(times) <= 0:
            return 0.0
        return float(np.polyfit(times, lats, 1)[0])

    def __len__(self) -> int:
        return len(self._window)


class TimeSeries:
    """An append-only (time, value) series."""

    def __init__(self, name: str):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.array(self.times), np.array(self.values)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None


class Telemetry:
    """Central recorder for everything the figures plot.

    Series are keyed ``(scope, metric)`` — e.g. ``("bonds", "latency")`` or
    ``("pipeline", "end_to_end")``.  Events (resizes, offlines) are recorded
    as ``(time, label)`` markers, matching the annotations on the paper's
    figures.
    """

    def __init__(self):
        self._series: Dict[Tuple[str, str], TimeSeries] = {}
        self.events: List[Tuple[float, str]] = []

    def series(self, scope: str, metric: str) -> TimeSeries:
        key = (scope, metric)
        if key not in self._series:
            self._series[key] = TimeSeries(f"{scope}.{metric}")
        return self._series[key]

    def record(self, scope: str, metric: str, time: float, value: float) -> None:
        self.series(scope, metric).record(time, value)

    def mark(self, time: float, label: str) -> None:
        self.events.append((time, label))

    def scopes(self) -> List[str]:
        return sorted({scope for scope, _ in self._series})

    def get(self, scope: str, metric: str) -> Optional[TimeSeries]:
        return self._series.get((scope, metric))
