"""Monitoring: metric windows, time series, bottleneck detection.

Implements the paper's lightweight monitoring layer (Section III-E): latency
is measured "from the time the input data from a timestep enters the
component until it exits"; the bottleneck is "the pipeline's container with
the longest average latency"; and all series are recorded so the Figure 7-10
benches can print them.
"""

from repro.monitoring.metrics import LatencyWindow, Telemetry, TimeSeries
from repro.monitoring.bottleneck import find_bottleneck, queue_growth_rate

__all__ = [
    "LatencyWindow",
    "Telemetry",
    "TimeSeries",
    "find_bottleneck",
    "queue_growth_rate",
]
