"""Bottleneck detection over per-container metrics."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple


def find_bottleneck(latencies: Dict[str, Optional[float]]) -> Optional[str]:
    """The paper's policy: the container with the longest average latency.

    Containers without observations yet (None) are skipped.  Returns None if
    nothing has reported.
    """
    best_name, best_value = None, -1.0
    for name, latency in latencies.items():
        if latency is not None and latency > best_value:
            best_name, best_value = name, latency
    return best_name


def queue_growth_rate(samples: Sequence[Tuple[float, float]]) -> float:
    """Slope of queue length (or buffer occupancy) vs time.

    A sustained positive slope under a fixed arrival rate means the
    container cannot keep up; extrapolating it against remaining capacity
    predicts the overflow the Figure 9 runtime acts on.
    """
    if len(samples) < 2:
        return 0.0
    (t0, v0), (t1, v1) = samples[0], samples[-1]
    if t1 <= t0:
        return 0.0
    return (v1 - v0) / (t1 - t0)


def predict_overflow_time(
    samples: Sequence[Tuple[float, float]], capacity: float
) -> Optional[float]:
    """Extrapolated time at which occupancy reaches ``capacity``.

    None when the trend is flat/decreasing or capacity already exceeded
    information is insufficient.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    rate = queue_growth_rate(samples)
    if rate <= 0 or not samples:
        return None
    t_last, v_last = samples[-1]
    if v_last >= capacity:
        return t_last
    return t_last + (capacity - v_last) / rate
