"""Kernel micro-benchmark: pairs / CSP / CNA / MD-step across atom counts.

Times the vectorized analytics kernels against the seed implementations
(kept in-tree as ``_reference_*``) on hexagonal plates of n ~ {1k, 4k, 16k}
atoms, runs short MD segments in both neighbour-list modes to record
cell-list rebuild counts, and emits everything — timings, perf counters,
speedups, and a comparison against the previous run — to
``BENCH_kernels.json`` at the repo root via :mod:`repro.perf.report`.

The speedup floor asserted here (>= 5x at n = 4096 for ``CellList.pairs``
and ``central_symmetry``) is the PR's acceptance bar; equivalence against
the reference kernels is asserted on every size the references can afford.

Smoke mode for CI: ``BENCH_SMOKE=1`` shrinks sizes to n ~ 1k and skips the
speedup-floor assertions (shared-runner timings are too noisy to gate on).

Run standalone with ``PYTHONPATH=src python benchmarks/bench_kernels.py``.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.lammps import MDSystem, VelocityVerlet, hex_lattice
from repro.lammps.crack import BOND_CUTOFF
from repro.lammps.neighbor import CellList
from repro.perf.cache import KERNEL_CACHE
from repro.perf.registry import REGISTRY
from repro.perf.report import write_kernel_report
from repro.smartpointer.cna import common_neighbor_analysis
from repro.smartpointer.csym import central_symmetry, _reference_central_symmetry

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
SIZES = (1024,) if SMOKE else (1024, 4096, 16384)
#: the seed kernels are too slow to time beyond this
REFERENCE_MAX_N = 4096
CSYM_CUTOFF = 1.5
MD_STEPS = 20 if SMOKE else 100
MD_MAX_N = 4096
SPEEDUP_FLOOR = 5.0
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _plate(n):
    side = max(2, int(round(np.sqrt(n))))
    return hex_lattice(side, side)[0]


def _best(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        KERNEL_CACHE.clear()  # time the kernel, not the snapshot cache
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _md_segment(pos, mode):
    system = MDSystem(pos.copy())
    system.thermalize(0.02, np.random.default_rng(11))
    integ = VelocityVerlet(system, dt=0.005, neighbor_mode=mode)
    t0 = time.perf_counter()
    integ.step(MD_STEPS)
    return (time.perf_counter() - t0) / MD_STEPS, integ.rebuild_count


def run_kernel_suite():
    """Time every kernel; returns (results, counters, speedups)."""
    results, counters, speedups = {}, {}, {}
    for n in SIZES:
        pos = _plate(n)
        label = f"n{len(pos)}"
        cells = CellList(pos, BOND_CUTOFF)

        results[f"pairs.vectorized.{label}"] = _best(cells.pairs)
        results[f"csym.vectorized.{label}"] = _best(
            lambda: central_symmetry(pos, 6, CSYM_CUTOFF)
        )
        pairs = cells.pairs()
        counters[f"npairs.{label}"] = int(len(pairs))
        results[f"cna.labels.{label}"] = _best(
            lambda: common_neighbor_analysis(pairs, len(pos)), repeats=1
        )

        if len(pos) <= REFERENCE_MAX_N:
            results[f"pairs.reference.{label}"] = _best(cells._reference_pairs)
            results[f"csym.reference.{label}"] = _best(
                lambda: _reference_central_symmetry(pos, 6, CSYM_CUTOFF), repeats=1
            )
            speedups[f"pairs.{label}"] = (
                results[f"pairs.reference.{label}"]
                / results[f"pairs.vectorized.{label}"]
            )
            speedups[f"csym.{label}"] = (
                results[f"csym.reference.{label}"]
                / results[f"csym.vectorized.{label}"]
            )
            # Equivalence: identical pair sets, CSP within 1e-9.
            ref_pairs = cells._reference_pairs()
            assert {tuple(p) for p in pairs} == {tuple(p) for p in ref_pairs}
            KERNEL_CACHE.clear()
            csp = central_symmetry(pos, 6, CSYM_CUTOFF)
            ref_csp = _reference_central_symmetry(pos, 6, CSYM_CUTOFF)
            assert np.allclose(csp, ref_csp, rtol=0.0, atol=1e-9)

        if len(pos) <= MD_MAX_N:
            for mode in ("verlet", "interval"):
                seconds, rebuilds = _md_segment(pos, mode)
                results[f"md.step_{mode}.{label}"] = seconds
                counters[f"md.rebuilds_{mode}.{label}"] = rebuilds
    return results, counters, speedups


def emit_report(results, counters, speedups):
    perf = REGISTRY.snapshot()
    counters = {**counters, **perf["counters"]}
    doc = write_kernel_report(
        REPORT_PATH,
        results,
        counters=counters,
        meta={
            "bench": "bench_kernels",
            "smoke": SMOKE,
            "sizes": list(SIZES),
            "md_steps": MD_STEPS,
            "speedups_vs_seed": {k: round(v, 2) for k, v in sorted(speedups.items())},
        },
    )
    return doc


def _check_floors(speedups, counters):
    """The acceptance bars; skipped in smoke mode (noisy CI runners)."""
    if SMOKE:
        return
    for key in ("pairs.n4096", "csym.n4096"):
        assert speedups[key] >= SPEEDUP_FLOOR, (
            f"{key}: {speedups[key]:.1f}x < {SPEEDUP_FLOOR}x vs the seed kernel"
        )
    # Verlet-skin reuse must rebuild on well under a quarter of MD steps.
    assert counters["md.rebuilds_verlet.n4096"] < 0.25 * MD_STEPS
    assert counters["md.rebuilds_interval.n4096"] >= MD_STEPS / 10


def test_kernel_microbench(benchmark):
    from conftest import print_table

    results, counters, speedups = benchmark.pedantic(
        run_kernel_suite, rounds=1, iterations=1
    )
    doc = emit_report(results, counters, speedups)
    benchmark.extra_info.update(
        {
            "report": str(REPORT_PATH),
            "speedups_vs_seed": doc["meta"]["speedups_vs_seed"],
            "baseline_compared": len(doc["baseline_comparison"]),
        }
    )
    rows = [
        [name, f"{seconds * 1e3:.3f}"] for name, seconds in sorted(results.items())
    ]
    print_table("Kernel micro-bench", ["Kernel", "ms"], rows)
    print_table(
        "Speedup vs seed kernels",
        ["Kernel", "Speedup"],
        [[k, f"{v:.1f}x"] for k, v in sorted(speedups.items())],
    )
    _check_floors(speedups, counters)


def main():
    results, counters, speedups = run_kernel_suite()
    emit_report(results, counters, speedups)
    for name, seconds in sorted(results.items()):
        print(f"{name:32s} {seconds * 1e3:10.3f} ms")
    for name, value in sorted(speedups.items()):
        print(f"{name:32s} {value:9.1f}x vs seed")
    _check_floors(speedups, counters)
    print(f"wrote {REPORT_PATH}")


if __name__ == "__main__":
    main()
