"""Table II: experiment data sizes (node count -> atoms -> data size).

Regenerates the table from the workload generator and verifies the exact
published values.
"""

import pytest

from repro.lammps.workload import TABLE_II, WeakScalingWorkload, atoms_for_nodes

from conftest import print_table


def test_table2_data_sizes(benchmark):
    def build():
        rows = []
        for nodes in (256, 512, 1024):
            wl = WeakScalingWorkload(sim_nodes=nodes, staging_nodes=24)
            rows.append((nodes, wl.natoms, wl.bytes_per_step))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print_table(
        "Table II: Experiment Data Sizes",
        ["Node Count", "Atoms", "Data size"],
        [[n, f"{a:,}", f"{b / 2**20:.1f} MB"] for n, a, b in rows],
    )
    benchmark.extra_info["rows"] = [
        {"nodes": n, "atoms": a, "bytes": b} for n, a, b in rows
    ]
    # Exact paper values.
    assert rows[0][1] == 8_819_989
    assert rows[1][1] == 17_639_979
    assert rows[2][1] == 35_279_958
    assert rows[0][2] == pytest.approx(67 * 2**20, rel=0.005)
    assert rows[1][2] == pytest.approx(134.6 * 2**20, rel=0.005)
    assert rows[2][2] == pytest.approx(269.2 * 2**20, rel=0.005)


def test_table2_weak_scaling_is_linear(benchmark):
    """Atoms per node is constant across the sweep (weak scaling)."""

    def build():
        return [atoms_for_nodes(n) / n for n in (128, 256, 512, 1024, 2048)]

    ratios = benchmark.pedantic(build, rounds=1, iterations=1)
    assert max(ratios) - min(ratios) < 1.0
