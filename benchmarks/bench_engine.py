"""Engine bench: the optimized event loop vs the frozen pre-PR engine.

Measures both sides in the same interpreter on the same machine — the
optimized :class:`repro.simkernel.Environment` against
:class:`repro.simkernel._reference.ReferenceEnvironment`, the engine as it
stood before the fast path landed — so every speedup in
``BENCH_engine.json`` is a true within-run comparison, not a cross-machine
guess.

Micro benches (events retired per second, and µs per event):

* ``raw_ticker`` — one process yielding plain timeouts; the generator
  send/heap floor every other number sits on.
* ``timeout_drain`` — a heap of abandoned (cancelled) timers drained by
  ``run()``.  The pre-PR engine processes each as a dead no-op; the
  optimized engine tombstone-skips and bulk-compacts them.  This is the
  raw-timeout microbench the ≥10× acceptance floor applies to.
* ``timeout_churn`` — ``any_of([fast, slow])`` races in a loop, the
  request-timeout pattern: losers are cancelled organically by the
  condition pruning.
* ``messenger_send`` — control-plane sends over a real machine/NIC model:
  the ``_FastSend`` chain vs the pre-PR process-per-message path.

Pipeline benches: simulated seconds per wall second for Figure-7-shaped
runs at two sizes, both engines.

The report (``schema/meta/results/counters/baseline_comparison``, like
every other ``BENCH_*.json``) carries a regression gate: the within-run
``*_speedup_vs_reference`` ratios are machine-independent, so CI fails if
any drops below 80% of the committed baseline's ratio — i.e. if the fast
path loses more than 20% of its advantage.  ``BENCH_SMOKE=1`` shrinks the
workloads for CI.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_engine.py``.
"""

import os
import platform
import time
from contextlib import contextmanager
from pathlib import Path

from repro.simkernel import Environment
from repro.simkernel._reference import ReferenceEnvironment
from repro.cluster import Machine
from repro.evpath import Messenger
from repro.evpath import channel as _channel
from repro.evpath.messages import Message, MessageType, validate_message
from repro import PipelineBuilder, WeakScalingWorkload
from repro.perf.registry import REGISTRY
from repro.perf.report import load_kernel_report, write_kernel_report


def _pre_pr_send(self, src_node, to, message):
    """The messenger send as it was before the fast path: one process and
    one eagerly formatted f-string name per message."""
    validate_message(message)
    dest = self.lookup(to)
    return self.env.process(
        self._send(src_node, dest, message), name=f"send {message.mtype.value}"
    )


@contextmanager
def pre_pr_messenger():
    """Force the process-per-message send path, so the 'reference' side of
    every comparison is the whole pre-PR stack, not just the pre-PR loop."""
    orig = _channel.Messenger.send
    _channel.Messenger.send = _pre_pr_send
    try:
        yield
    finally:
        _channel.Messenger.send = orig


@contextmanager
def _noop():
    yield

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
REPEATS = 2 if SMOKE else 3
N_TICK = 20_000 if SMOKE else 200_000
N_DRAIN = 20_000 if SMOKE else 200_000
N_CHURN = 2_000 if SMOKE else 20_000
N_SEND = 1_000 if SMOKE else 8_000
PIPELINES = (
    ("fig7_small", dict(sim_nodes=128, staging_nodes=13, output_interval=15.0,
                        total_steps=6 if SMOKE else 12)),
    ("fig7_256", dict(sim_nodes=256, staging_nodes=13, output_interval=15.0,
                      total_steps=4 if SMOKE else 20)),
)
#: acceptance floor: timeout_drain must beat the pre-PR engine by this much
DRAIN_SPEEDUP_FLOOR = 10.0
#: CI gate: a speedup ratio may not fall below this fraction of the
#: committed baseline's ratio
GATE_FRACTION = 0.8
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

ENGINES = (("optimized", Environment), ("reference", ReferenceEnvironment))


def _best(fn, repeats=REPEATS):
    """Best wall-clock of ``repeats`` runs of ``fn() -> events`` as
    (seconds, events)."""
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, events)
    return best


# -- micro workloads --------------------------------------------------------


def _publish(env):
    """Mirror engine counters into the registry (optimized engine only)."""
    publish = getattr(env, "publish_perf", None)
    if publish is not None:
        publish()


def raw_ticker(env_cls):
    env = env_cls()

    def ticker(env):
        for _ in range(N_TICK):
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run()
    _publish(env)
    return N_TICK


def timeout_drain(env_cls):
    env = env_cls()
    timers = [env.timeout(float(i % 997) + 1.0) for i in range(N_DRAIN)]
    for t in timers:
        t.callbacks.clear()
        env.cancel(t)  # no-op on the reference engine: stays a dead no-op
    t0 = time.perf_counter()
    env.run()
    dt = time.perf_counter() - t0
    _publish(env)
    return N_DRAIN, dt


def timeout_churn(env_cls):
    env = env_cls()

    def racer(env):
        for _ in range(N_CHURN):
            fast = env.timeout(0.1)
            slow = env.timeout(100.0)  # the loser: lives ~1000 rounds
            yield env.any_of([fast, slow])

    env.process(racer(env))
    env.run()
    _publish(env)
    # 3 events per round (fast, slow, condition) plus process bookkeeping
    return 3 * N_CHURN


def messenger_send(env_cls):
    env = env_cls()
    machine = Machine(env, num_nodes=8, cores_per_node=2)
    messenger = Messenger(env, machine.network)
    eps = [messenger.endpoint(machine.nodes[i + 4], f"d{i}") for i in range(4)]

    def drainer(env, ep, n):
        for _ in range(n):
            yield ep.recv()

    def sender(env, src, to):
        for _ in range(N_SEND // 4):
            yield messenger.send(src, to, Message(MessageType.ACK, "bench"))

    for i in range(4):
        env.process(drainer(env, eps[i], N_SEND // 4))
        env.process(sender(env, machine.nodes[i], f"d{i}"))
    env.run()
    _publish(env)
    assert messenger.messages_sent == (N_SEND // 4) * 4
    return messenger.messages_sent


# -- suites ----------------------------------------------------------------


def run_micro_suite():
    results = {}
    for bench_name, workload in (
        ("raw_ticker", raw_ticker),
        ("timeout_churn", timeout_churn),
        ("messenger_send", messenger_send),
    ):
        for engine_name, env_cls in ENGINES:
            guard = pre_pr_messenger if engine_name == "reference" else _noop
            with guard():
                seconds, events = _best(lambda: workload(env_cls))
            results[f"{bench_name}_events_per_sec_{engine_name}"] = events / seconds
            results[f"{bench_name}_us_per_event_{engine_name}"] = 1e6 * seconds / events

    # timeout_drain times only the drain, not the heap construction
    for engine_name, env_cls in ENGINES:
        best = None
        for _ in range(REPEATS):
            events, seconds = timeout_drain(env_cls)
            if best is None or seconds < best[1]:
                best = (events, seconds)
        events, seconds = best
        results[f"timeout_drain_events_per_sec_{engine_name}"] = events / seconds
        results[f"timeout_drain_us_per_event_{engine_name}"] = 1e6 * seconds / events

    for bench_name in ("raw_ticker", "timeout_drain", "timeout_churn", "messenger_send"):
        results[f"{bench_name}_speedup_vs_reference"] = (
            results[f"{bench_name}_events_per_sec_optimized"]
            / results[f"{bench_name}_events_per_sec_reference"]
        )
    return results


def run_pipeline_suite():
    results = {}
    for label, cfg in PIPELINES:
        for engine_name, env_cls in ENGINES:
            def one_run():
                env = env_cls()
                wl = WeakScalingWorkload(**cfg)
                pipe = PipelineBuilder(env, wl, seed=1).build()
                assert pipe.run(settle=120)
                return env.now

            guard = pre_pr_messenger if engine_name == "reference" else _noop
            with guard():
                seconds, sim_seconds = _best(one_run)
            results[f"pipeline_{label}_simsec_per_wallsec_{engine_name}"] = (
                sim_seconds / seconds
            )
            results[f"pipeline_{label}_wall_seconds_{engine_name}"] = seconds
        results[f"pipeline_{label}_speedup_vs_reference"] = (
            results[f"pipeline_{label}_simsec_per_wallsec_optimized"]
            / results[f"pipeline_{label}_simsec_per_wallsec_reference"]
        )
    return results


def check_floors(results, baseline_doc):
    """The acceptance floor and the baseline-comparison regression gate."""
    problems = []
    drain = results["timeout_drain_speedup_vs_reference"]
    if drain < DRAIN_SPEEDUP_FLOOR:
        problems.append(
            f"timeout_drain speedup {drain:.1f}x below the {DRAIN_SPEEDUP_FLOOR}x floor"
        )
    base = (baseline_doc or {}).get("results", {})
    for name, current in results.items():
        if not name.endswith("_speedup_vs_reference"):
            continue
        previous = base.get(name)
        if isinstance(previous, (int, float)) and previous > 0:
            if current < GATE_FRACTION * previous:
                problems.append(
                    f"{name}: {current:.2f}x is below {GATE_FRACTION:.0%} of the "
                    f"committed baseline {previous:.2f}x"
                )
    return problems


def emit_report(results):
    counters = REGISTRY.snapshot()["counters"]
    engine_counters = {k: v for k, v in counters.items() if k.startswith("engine.")}
    meta = {
        "bench": "engine",
        "smoke": SMOKE,
        "python": platform.python_version(),
        "workloads": {
            "n_tick": N_TICK, "n_drain": N_DRAIN, "n_churn": N_CHURN,
            "n_send": N_SEND,
            "pipelines": {label: cfg for label, cfg in PIPELINES},
        },
    }
    return write_kernel_report(REPORT_PATH, results, counters=engine_counters, meta=meta)


def main():
    REGISTRY.reset()
    baseline_doc = load_kernel_report(REPORT_PATH)
    results = run_micro_suite()
    results.update(run_pipeline_suite())
    problems = check_floors(results, baseline_doc)
    doc = emit_report(results)
    for name in sorted(results):
        if name.endswith("_speedup_vs_reference"):
            print(f"{name}: {results[name]:.2f}x")
    print(f"wrote {REPORT_PATH}")
    if problems:
        raise SystemExit("engine bench regression:\n  " + "\n  ".join(problems))
    return doc


def test_engine_bench():
    """Pytest entry point (CI smoke runs this via pytest like bench_kernels)."""
    main()


if __name__ == "__main__":
    main()
